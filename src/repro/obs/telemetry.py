"""Per-join telemetry records and the JSON-lines run-log format.

Every pair job the :class:`~repro.engine.BatchEngine` resolves can emit
one :class:`JoinTelemetry` record: how the job was resolved (computed /
screened / cache hit), the pairing-event counts by type, the matched
size and similarity, and the per-stage wall times measured by the
:class:`~repro.obs.timers.StageClock` inside the join.

The run-log format is JSON lines: a ``{"kind": "run", ...}`` header,
one ``{"kind": "join", ...}`` line per record, and a ``{"kind":
"summary", ...}`` trailer carrying the aggregates plus the registry
snapshot.  ``repro-csj stats`` consumes this format offline; the
telemetry-accuracy tests check the aggregates against independent
ground truth (the ``JoinResult`` event counts and the cache's own
accounting).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping

__all__ = [
    "JoinTelemetry",
    "TelemetrySummary",
    "read_jsonl",
    "summarize_records",
    "write_jsonl",
]


@dataclass
class JoinTelemetry:
    """One resolved pair job, as the observability layer saw it."""

    first: int
    second: int
    method: str
    epsilon: int
    disposition: str  # "computed" | "screened" | "cached"
    similarity: float
    n_matched: int
    size_b: int
    size_a: int
    swapped: bool
    screened: bool
    cache_hit: bool
    events: dict[str, int] = field(default_factory=dict)
    pairs_examined: int = 0
    comparisons: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    engine: str = ""

    def to_dict(self) -> dict[str, object]:
        payload = asdict(self)
        payload["kind"] = "join"
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "JoinTelemetry":
        fields = {k: v for k, v in payload.items() if k != "kind"}
        return cls(**fields)  # type: ignore[arg-type]


@dataclass
class TelemetrySummary:
    """Aggregates over a set of join records."""

    n_joins: int = 0
    dispositions: dict[str, int] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    matched_pairs: int = 0

    def to_dict(self) -> dict[str, object]:
        payload = asdict(self)
        payload["kind"] = "summary"
        return payload

    def render(self) -> str:
        """Monospace rendering for the CLI."""
        lines = [f"joins: {self.n_joins}  (matched pairs: {self.matched_pairs})"]
        if self.dispositions:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(self.dispositions.items())
            )
            lines.append(f"dispositions: {rendered}")
        if self.events:
            lines.append("events:")
            for name, count in sorted(self.events.items()):
                lines.append(f"  {name:12s} {count:12d}")
        if self.stage_seconds:
            lines.append("stage wall time:")
            for stage, seconds in sorted(self.stage_seconds.items()):
                lines.append(f"  {stage:24s} {seconds:10.4f}s")
        lines.append(f"join wall time: {self.elapsed_seconds:.4f}s")
        return "\n".join(lines)


def summarize_records(records: Iterable[JoinTelemetry]) -> TelemetrySummary:
    """Fold join records into a :class:`TelemetrySummary`."""
    summary = TelemetrySummary()
    for record in records:
        summary.n_joins += 1
        summary.dispositions[record.disposition] = (
            summary.dispositions.get(record.disposition, 0) + 1
        )
        for name, count in record.events.items():
            summary.events[name] = summary.events.get(name, 0) + count
        for stage, seconds in record.stage_seconds.items():
            summary.stage_seconds[stage] = (
                summary.stage_seconds.get(stage, 0.0) + seconds
            )
        summary.elapsed_seconds += record.elapsed_seconds
        summary.matched_pairs += record.n_matched
    return summary


def write_jsonl(
    target: str | Path | IO[str],
    records: Iterable[JoinTelemetry],
    *,
    header: Mapping[str, object] | None = None,
    snapshot: Mapping[str, object] | None = None,
) -> TelemetrySummary:
    """Write a full run log (header, join lines, summary trailer).

    Returns the computed summary so callers can also print it.
    """
    records = list(records)
    summary = summarize_records(records)
    trailer = summary.to_dict()
    if snapshot is not None:
        trailer["metrics"] = dict(snapshot)

    def emit(stream: IO[str]) -> None:
        if header is not None:
            stream.write(json.dumps({"kind": "run", **header}) + "\n")
        for record in records:
            stream.write(json.dumps(record.to_dict()) + "\n")
        stream.write(json.dumps(trailer) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            emit(stream)
    else:
        emit(target)
    return summary


def read_jsonl(
    source: str | Path | IO[str],
) -> tuple[dict | None, list[JoinTelemetry], dict | None]:
    """Parse a run log back into ``(header, records, summary_payload)``.

    Lines of unknown kind are ignored, so the format can grow.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    header: dict | None = None
    summary: dict | None = None
    records: list[JoinTelemetry] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind == "run":
            header = payload
        elif kind == "join":
            records.append(JoinTelemetry.from_dict(payload))
        elif kind == "summary":
            summary = payload
    return header, records, summary
