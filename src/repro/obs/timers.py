"""Nestable wall-clock stage timers.

:func:`stage_timer` is the one-shot form: a context manager that
observes the stage's wall time into ``repro_obs_stage_seconds{stage=<name>}`` of
a registry.  When the registry is ``None`` (observability disabled) it
returns a shared no-op context manager, so the disabled cost is one
``is None`` test and an attribute load.

:class:`StageClock` is the stateful form used inside a single join: it
keeps a stack of open stages so nested timers record dotted paths
(``join`` > ``join.pairing`` > ``join.pairing.matching``), and it
accumulates a flat ``{path: seconds}`` dict that becomes the per-join
telemetry's ``stage_seconds``.  Because children are timed inside their
parent's interval, the children of any stage sum to at most the
parent's time — the invariant the telemetry-accuracy tests check.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from .registry import _NullTimer, null_timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import MetricsRegistry

__all__ = ["StageClock", "stage_timer"]

#: Metric name every stage timer observes into.
STAGE_METRIC = "repro_obs_stage_seconds"


class _StageTimer:
    """One running stage; records on exit."""

    __slots__ = ("clock", "name", "path", "started", "seconds")

    def __init__(self, clock: "StageClock", name: str) -> None:
        self.clock = clock
        self.name = name
        self.path = ""
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_StageTimer":
        stack = self.clock._stack
        self.path = f"{stack[-1]}.{self.name}" if stack else self.name
        stack.append(self.path)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.seconds = time.perf_counter() - self.started
        self.clock._stack.pop()
        self.clock._record(self.path, self.seconds)


class StageClock:
    """Per-join stage accounting bound to an optional registry.

    ``StageClock(None)`` is inert: :meth:`stage` returns the shared
    no-op timer and nothing is recorded.
    """

    __slots__ = ("metrics", "stage_seconds", "_stack")

    def __init__(self, metrics: "MetricsRegistry | None") -> None:
        self.metrics = metrics
        self.stage_seconds: dict[str, float] = {}
        self._stack: list[str] = []

    @property
    def enabled(self) -> bool:
        return self.metrics is not None

    def stage(self, name: str) -> "_StageTimer | _NullTimer":
        """Context manager timing one (possibly nested) stage."""
        if self.metrics is None:
            return null_timer()
        return _StageTimer(self, name)

    def _record(self, path: str, seconds: float) -> None:
        self.stage_seconds[path] = self.stage_seconds.get(path, 0.0) + seconds
        self.metrics.observe(STAGE_METRIC, seconds, stage=path)  # type: ignore[union-attr]


def stage_timer(
    metrics: "MetricsRegistry | None", name: str
) -> "_StageTimer | _NullTimer":
    """Time one top-level stage into ``metrics`` (no-op when ``None``).

    For nested per-join accounting use a :class:`StageClock`; this
    helper is for coarse phase timing at batch granularity, e.g.::

        with stage_timer(metrics, "batch.execute"):
            results = run(...)
    """
    if metrics is None:
        return null_timer()
    clock = StageClock(metrics)
    return clock.stage(name)
