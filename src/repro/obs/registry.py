"""Process-local metrics registry: counters, gauges, histograms.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Instrumented call sites take
   ``metrics: MetricsRegistry | None`` and guard with a single
   ``is not None`` test; no registry object ever exists on the disabled
   path.  ``DISABLED`` (``None``) names that convention.
2. **Mergeable across processes.**  Worker registries serialise to
   plain-dict snapshots; :meth:`MetricsRegistry.merge` folds a snapshot
   into the parent (counters and histograms add, gauges last-write).
   This is how ``n_jobs > 1`` engine runs aggregate correctly.
3. **Readable at the edges.**  :meth:`MetricsRegistry.snapshot` is
   JSON-ready for the run logs; :meth:`MetricsRegistry.to_prometheus`
   emits the text exposition format for scraping or eyeballing.

Metrics are keyed by ``(name, sorted labels)``.  The registry is not
thread-safe: the engine is single-threaded per process and each worker
owns its own registry.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from typing import Iterator, Mapping

__all__ = ["DISABLED", "Histogram", "MetricsRegistry", "null_timer"]

#: The disabled-observability sentinel: pass ``metrics=DISABLED`` (or
#: simply omit the argument) and every hook reduces to one ``is None``
#: test.
DISABLED = None

#: ``(name, ((label, value), ...))`` — the internal metric key.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram buckets, tuned for stage wall-times in seconds:
#: 10us .. ~100s in half-decade steps (+inf is implicit).
DEFAULT_BUCKETS = (
    1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3,
    1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 10.0, 31.6, 100.0,
)


def _key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max."""

    __slots__ = ("buckets", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +inf
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def merge(self, payload: Mapping[str, object]) -> None:
        """Fold a snapshot payload of a same-bucket histogram into this one."""
        counts = list(payload["bucket_counts"])  # type: ignore[arg-type]
        if len(counts) != len(self.bucket_counts):
            raise ValueError("cannot merge histograms with different buckets")
        for index, extra in enumerate(counts):
            self.bucket_counts[index] += int(extra)
        self.count += int(payload["count"])  # type: ignore[arg-type]
        self.total += float(payload["sum"])  # type: ignore[arg-type]
        self.minimum = min(self.minimum, float(payload["min"]))  # type: ignore[arg-type]
        self.maximum = max(self.maximum, float(payload["max"]))  # type: ignore[arg-type]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
        }


class _NullTimer(AbstractContextManager):
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __exit__(self, *_exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


def null_timer() -> _NullTimer:
    """The shared no-op timer (what ``stage_timer`` returns when off)."""
    return _NULL_TIMER


class MetricsRegistry:
    """Registry of named counters, gauges and histograms.

    All update methods accept keyword labels, so one logical metric can
    fan out over e.g. event types: ``inc("repro_core_events_total", 3,
    type="MATCH")``.
    """

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # -- updates -------------------------------------------------------
    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` to a counter (created at 0 on first use)."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to an instantaneous value."""
        self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into a histogram."""
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram()
            self._histograms[key] = histogram
        histogram.observe(value)

    # -- reads ---------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        return self._counters.get(_key(name, labels), 0)

    def gauge(self, name: str, **labels: object) -> float | None:
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Histogram | None:
        return self._histograms.get(_key(name, labels))

    def counters_by_label(self, name: str, label: str) -> dict[str, float]:
        """All values of a counter family, keyed by one label's value."""
        out: dict[str, float] = {}
        for (metric, labels), value in self._counters.items():
            if metric != name:
                continue
            for key, label_value in labels:
                if key == label:
                    out[label_value] = out.get(label_value, 0) + value
        return out

    def __iter__(self) -> Iterator[MetricKey]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    # -- aggregation ---------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """JSON-ready snapshot of everything recorded so far."""

        def encode(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{rendered}}}"

        return {
            "counters": {encode(k): v for k, v in sorted(self._counters.items())},
            "gauges": {encode(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                encode(k): h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry | Mapping[str, object]") -> None:
        """Fold another registry (or its snapshot) into this one.

        Counters and histograms add; gauges take the other side's value
        (last write wins).  This is the worker-to-parent aggregation
        path, so merging must be insensitive to arrival order for the
        additive kinds.
        """
        if isinstance(other, MetricsRegistry):
            for key, value in other._counters.items():
                self._counters[key] = self._counters.get(key, 0) + value
            self._gauges.update(other._gauges)
            for key, histogram in other._histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = Histogram(histogram.buckets)
                    self._histograms[key] = mine
                mine.merge(histogram.as_dict())
            return
        for encoded, value in other.get("counters", {}).items():  # type: ignore[union-attr]
            key = _decode(encoded)
            self._counters[key] = self._counters.get(key, 0) + value
        for encoded, value in other.get("gauges", {}).items():  # type: ignore[union-attr]
            self._gauges[_decode(encoded)] = value
        for encoded, payload in other.get("histograms", {}).items():  # type: ignore[union-attr]
            key = _decode(encoded)
            mine = self._histograms.get(key)
            if mine is None:
                mine = Histogram(tuple(payload["buckets"]))
                self._histograms[key] = mine
            mine.merge(payload)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- rendering -----------------------------------------------------
    def to_prometheus(self) -> str:
        """Text exposition format (one line per sample, sorted)."""

        def render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
            parts = [f'{k}="{v}"' for k, v in labels]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), value in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{name}{render_labels(labels)} {_num(value)}")
        for (name, labels), value in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{name}{render_labels(labels)} {_num(value)}")
        for (name, labels), histogram in sorted(self._histograms.items()):
            type_line(name, "histogram")
            cumulative = 0
            for edge, count in zip(histogram.buckets, histogram.bucket_counts):
                cumulative += count
                le = 'le="' + _num(edge) + '"'
                lines.append(
                    f"{name}_bucket{render_labels(labels, le)} {cumulative}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{render_labels(labels, inf)} {histogram.count}"
            )
            lines.append(f"{name}_sum{render_labels(labels)} {_num(histogram.total)}")
            lines.append(f"{name}_count{render_labels(labels)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def _num(value: float) -> str:
    """Render a number the way Prometheus expects (no trailing .0 noise)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _decode(encoded: str) -> MetricKey:
    """Inverse of the snapshot encoding: ``name{k=v,...}`` to a key."""
    if "{" not in encoded:
        return (encoded, ())
    name, _, rest = encoded.partition("{")
    body = rest.rstrip("}")
    labels = tuple(
        tuple(pair.split("=", 1)) for pair in body.split(",") if pair
    )
    return (name, labels)  # type: ignore[return-value]
