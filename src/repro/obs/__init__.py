"""Observability: metrics, stage timers and per-join telemetry.

The join pipeline answers questions like "what fraction of pairs did
the envelope screen discard, what did matching cost versus encoding,
did the cache actually help" through three cooperating pieces:

* :class:`MetricsRegistry` — a process-local registry of counters,
  gauges and histograms.  Every hot-path hook takes ``metrics=None``
  and reduces to a single ``is not None`` test when observability is
  off, so the disabled overhead is near zero.
* :func:`stage_timer` / :class:`StageClock` — nestable wall-clock
  stage timers.  Nested stages record dotted paths (``join.pairing``)
  so per-stage cost decomposes against the enclosing total.
* :class:`JoinTelemetry` — one record per resolved pair job (events by
  type, disposition, cache/screen flags, per-stage seconds), exported
  as JSON lines and summarised by ``repro-csj stats``.

Worker processes build their own registries and ship snapshots back to
the parent, which merges them (:meth:`MetricsRegistry.merge`) so
``n_jobs > 1`` runs aggregate exactly like serial ones.
"""

from .registry import (
    DISABLED,
    Histogram,
    MetricsRegistry,
    null_timer,
)
from .timers import StageClock, stage_timer
from .telemetry import (
    JoinTelemetry,
    TelemetrySummary,
    read_jsonl,
    summarize_records,
    write_jsonl,
)

__all__ = [
    "DISABLED",
    "Histogram",
    "MetricsRegistry",
    "null_timer",
    "StageClock",
    "stage_timer",
    "JoinTelemetry",
    "TelemetrySummary",
    "read_jsonl",
    "summarize_records",
    "write_jsonl",
]
