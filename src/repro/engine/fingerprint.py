"""Content fingerprints for communities and raw counter matrices.

The batch engine addresses join results by *content*, not by object
identity: two communities generated in different processes (or loaded
from disk twice) that hold the same counter matrix must map to the same
cache key.  A fingerprint is therefore a SHA-256 digest over the matrix
shape and its C-contiguous bytes — the exact recipe the dataset
manifests use, so an engine cache key and a manifest entry certify the
same thing.

Fingerprints are deterministic across processes and platforms for the
int64 matrices every :class:`~repro.core.types.Community` carries (the
byte order of a little-endian int64 buffer is part of the content; all
supported platforms are little-endian, matching the manifest format).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.types import Community

__all__ = ["matrix_fingerprint", "community_fingerprint", "pair_fingerprint"]


def matrix_fingerprint(matrix: np.ndarray) -> str:
    """SHA-256 digest of a counter matrix (shape + raw bytes)."""
    digest = hashlib.sha256()
    digest.update(str(matrix.shape).encode())
    digest.update(np.ascontiguousarray(matrix).tobytes())
    return digest.hexdigest()


def community_fingerprint(community: Community) -> str:
    """Content fingerprint of a community's user vectors.

    Deliberately ignores ``name``/``category``/``page_id``: a CSJ join
    depends only on the vectors, so renamed copies of the same matrix
    share cached results.
    """
    return matrix_fingerprint(community.vectors)


def pair_fingerprint(community_b: Community, community_a: Community) -> tuple[str, str]:
    """Fingerprints of an *oriented* ``(B, A)`` pair, in that order."""
    return community_fingerprint(community_b), community_fingerprint(community_a)
