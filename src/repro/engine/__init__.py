"""Batch execution engine: parallel joins, pre-screening and caching.

The substrate behind every batch workload (top-k pair ranking, the
table harness, parameter sweeps): a :class:`BatchEngine` fans
community-pair jobs out over worker processes backed by a shared-memory
vector store, skips pairs whose min/max envelopes prove a zero
similarity, and memoises results in a content-addressed LRU cache.
"""

from .batch import BatchEngine, Disposition, PairJob, PairOutcome
from .cache import JoinResultCache, canonical_options, join_key
from .envelope import Envelope, community_envelope, envelopes_separated
from .fingerprint import community_fingerprint, matrix_fingerprint, pair_fingerprint
from .shared import AttachedVectorStore, CommunitySpec, SharedVectorStore, StoreLayout

__all__ = [
    "BatchEngine",
    "Disposition",
    "PairJob",
    "PairOutcome",
    "JoinResultCache",
    "canonical_options",
    "join_key",
    "Envelope",
    "community_envelope",
    "envelopes_separated",
    "community_fingerprint",
    "matrix_fingerprint",
    "pair_fingerprint",
    "SharedVectorStore",
    "AttachedVectorStore",
    "CommunitySpec",
    "StoreLayout",
]
