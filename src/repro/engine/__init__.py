"""Batch execution engine: parallel joins, pre-screening and caching.

The substrate behind every batch workload (top-k pair ranking, the
table harness, parameter sweeps): a :class:`BatchEngine` fans
community-pair jobs out over worker processes backed by a shared-memory
vector store, skips pairs whose min/max envelopes prove a zero
similarity, and memoises results in a content-addressed LRU cache.
A :class:`JobSupervisor` (enabled via ``fault_policy``) adds per-job
timeouts, retries with backoff, poison-job quarantine and degraded-mode
fallback, while :class:`CheckpointLog` makes sweep completion durable
across crashes.
"""

from .batch import BatchEngine, Disposition, PairJob, PairOutcome
from .cache import JoinResultCache, canonical_options, decoded_options, join_key
from .checkpoint import CheckpointLog
from .envelope import Envelope, community_envelope, envelopes_separated
from .faults import (
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    JobSupervisor,
    QuarantineRecord,
)
from .fingerprint import community_fingerprint, matrix_fingerprint, pair_fingerprint
from .shared import AttachedVectorStore, CommunitySpec, SharedVectorStore, StoreLayout

__all__ = [
    "BatchEngine",
    "Disposition",
    "PairJob",
    "PairOutcome",
    "JoinResultCache",
    "canonical_options",
    "decoded_options",
    "join_key",
    "CheckpointLog",
    "FaultPolicy",
    "FaultSpec",
    "InjectedFault",
    "JobSupervisor",
    "QuarantineRecord",
    "Envelope",
    "community_envelope",
    "envelopes_separated",
    "community_fingerprint",
    "matrix_fingerprint",
    "pair_fingerprint",
    "SharedVectorStore",
    "AttachedVectorStore",
    "CommunitySpec",
    "StoreLayout",
]
