"""Parallel batch execution of community-pair joins.

:class:`BatchEngine` evaluates an arbitrary list of :class:`PairJob`
descriptions over a fixed community collection.  Each job passes three
gates, cheapest first:

1. **Envelope pre-screen** — if the pair's per-dimension envelopes are
   separated by more than the job's epsilon, the similarity is provably
   zero and the job resolves to a ``SCREENED`` outcome without running
   the join.
2. **Join-result cache** — a content-addressed LRU lookup keyed by the
   oriented pair's fingerprints plus ``(epsilon, method, options)``;
   hits resolve to ``CACHED`` outcomes.
3. **Execution** — survivors run the actual join: in-process when
   ``n_jobs == 1`` (the deterministic serial fallback), otherwise across
   a ``ProcessPoolExecutor`` whose workers read vectors from a
   shared-memory store instead of receiving pickled matrices.

Joins are deterministic, so serial and parallel execution produce
identical results; the tests assert this and the batch benchmarks rely
on it.  Algorithm instances are built once per ``(method, epsilon,
options)`` configuration — never per pair — both in the parent and in
each worker.
"""

from __future__ import annotations

import dataclasses
import enum
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..algorithms import get_algorithm
from ..algorithms.registry import ALGORITHMS
from ..core.errors import ConfigurationError, UnknownAlgorithmError
from ..core.types import Community, CSJResult, EventCounts
from ..core.validation import validate_pair
from ..obs import JoinTelemetry, MetricsRegistry
from ..obs.timers import stage_timer
from .cache import JoinKey, JoinResultCache, canonical_options, decoded_options, join_key
from .checkpoint import CheckpointLog
from .envelope import (
    Envelope,
    community_envelope,
    envelopes_separated,
    separation_matrix,
    stack_envelopes,
)
from .faults import (
    FaultPolicy,
    FaultSpec,
    JobSupervisor,
    SupervisedTask,
    maybe_inject,
)
from .fingerprint import community_fingerprint
from .shared import AttachedVectorStore, SharedVectorStore, StoreLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sketch.prefilter import SketchPrefilter

__all__ = ["Disposition", "PairJob", "PairOutcome", "BatchEngine"]

#: Label recorded in ``CSJResult.engine`` for screened-out pairs.
SCREEN_ENGINE = "envelope-screen"

#: Label recorded in ``CSJResult.engine`` for sketch-prefiltered pairs.
SKETCH_ENGINE = "sketch-screen"

#: Label recorded in ``CSJResult.engine`` for quarantined (failed) jobs.
QUARANTINE_ENGINE = "quarantined"

#: Job lists at least this long screen via one broadcast
#: :func:`~repro.engine.envelope.separation_matrix` call instead of
#: per-pair Python-level envelope tests.
VECTOR_SCREEN_MIN_JOBS = 16


class Disposition(enum.Enum):
    """How the engine resolved one job."""

    COMPUTED = "computed"  # the join actually ran
    SCREENED = "screened"  # envelopes proved similarity 0
    PREFILTERED = "prefiltered"  # the sketch tier dropped the pair
    CACHED = "cached"  # served from the join-result cache
    FAILED = "failed"  # quarantined after exhausting its attempts


@dataclass(frozen=True)
class PairJob:
    """One community-pair join request.

    ``first``/``second`` index into the engine's community collection
    (order is preserved — orientation to the paper's ``(B, A)``
    convention happens inside the join exactly as in a direct call).
    ``options`` is a canonical tuple as produced by
    :func:`~repro.engine.cache.canonical_options`.
    """

    first: int
    second: int
    method: str
    epsilon: int
    options: tuple = ()

    @classmethod
    def build(
        cls,
        first: int,
        second: int,
        method: str,
        epsilon: int,
        options: Mapping[str, object] | None = None,
    ) -> "PairJob":
        """Convenience constructor canonicalising an options mapping."""
        return cls(
            first=first,
            second=second,
            method=method,
            epsilon=epsilon,
            options=canonical_options(options or {}),
        )


@dataclass
class PairOutcome:
    """The engine's answer to one :class:`PairJob`.

    ``error`` is ``None`` except for :attr:`Disposition.FAILED`
    outcomes, where it carries the quarantined job's last error.
    """

    job: PairJob
    disposition: Disposition
    result: CSJResult
    error: str | None = None

    @property
    def similarity(self) -> float:
        return self.result.similarity


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_WORKER_STORE: AttachedVectorStore | None = None
_WORKER_ALGORITHMS: dict[tuple, object] = {}


def _init_worker(layout: StoreLayout) -> None:
    global _WORKER_STORE
    _WORKER_STORE = AttachedVectorStore(layout)
    _WORKER_ALGORITHMS.clear()


def _worker_algorithm(method: str, epsilon: int, options: tuple):
    key = (method, epsilon, options)
    algorithm = _WORKER_ALGORITHMS.get(key)
    if algorithm is None:
        algorithm = get_algorithm(method, epsilon, **decoded_options(options))
        _WORKER_ALGORITHMS[key] = algorithm
    return algorithm


def _run_chunk(
    chunk: list[tuple[int, int, int, str, int, tuple]],
    enforce_size_ratio: bool,
    collect_metrics: bool = False,
) -> tuple[list[tuple[int, dict]], dict | None]:
    """Execute a chunk of jobs against the attached store.

    Each entry is ``(position, first, second, method, epsilon, options)``;
    results travel back as ``CSJResult.to_dict`` payloads keyed by the
    caller's position so reassembly is order-independent.  With
    ``collect_metrics`` the chunk runs against a fresh worker-local
    :class:`MetricsRegistry` whose snapshot rides back alongside the
    results; the parent merges it, so parallel runs aggregate the same
    totals as serial ones.
    """
    assert _WORKER_STORE is not None, "worker initialised without a store"
    registry = MetricsRegistry() if collect_metrics else None
    out: list[tuple[int, dict]] = []
    for position, first, second, method, epsilon, options in chunk:
        algorithm = _worker_algorithm(method, epsilon, options)
        algorithm.metrics = registry
        result = algorithm.join(
            _WORKER_STORE.community(first),
            _WORKER_STORE.community(second),
            enforce_size_ratio=enforce_size_ratio,
        )
        out.append((position, result.to_dict()))
    return out, (registry.snapshot() if registry is not None else None)


def _run_supervised_job(
    position: int,
    first: int,
    second: int,
    method: str,
    epsilon: int,
    options: tuple,
    enforce_size_ratio: bool,
    collect_metrics: bool,
    attempt: int,
    fault: FaultSpec | None,
) -> tuple[dict, dict | None]:
    """Execute one supervised job against the attached store.

    Supervised execution ships jobs one per task (no chunking) so a
    crash, hang or timeout is attributable to exactly one job.  The
    worker-local metrics snapshot travels back *only* with a successful
    result, so retried attempts never double-count events.
    """
    assert _WORKER_STORE is not None, "worker initialised without a store"
    maybe_inject(fault, position, attempt, in_process=False)
    registry = MetricsRegistry() if collect_metrics else None
    algorithm = _worker_algorithm(method, epsilon, options)
    algorithm.metrics = registry
    result = algorithm.join(
        _WORKER_STORE.community(first),
        _WORKER_STORE.community(second),
        enforce_size_ratio=enforce_size_ratio,
    )
    return result.to_dict(), (registry.snapshot() if registry is not None else None)


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
class BatchEngine:
    """Batch executor over a fixed community collection.

    Parameters
    ----------
    communities:
        The collection jobs index into.  Envelopes and fingerprints are
        computed lazily, once per community, across all ``run`` calls.
    n_jobs:
        Worker processes.  ``1`` (default) runs everything in-process.
    screen:
        Enable the envelope pre-screen (sound: screened pairs have
        similarity exactly 0).
    cache:
        ``None`` disables caching; an ``int`` builds an LRU
        :class:`JoinResultCache` of that capacity; an existing cache
        instance is used as-is (and may be shared between engines).
    enforce_size_ratio:
        Forwarded to every join; jobs violating the CSJ size-ratio rule
        raise exactly as a direct ``join`` call would.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        given, the engine counts dispositions, times its phases, mirrors
        cache / envelope / event counters into the registry (merging
        worker-local registries after parallel fan-out) and emits one
        :class:`~repro.obs.JoinTelemetry` record per resolved job into
        :attr:`telemetry`.  ``None`` (default) keeps the whole pipeline
        on the uninstrumented fast path.
    fault_policy:
        Optional :class:`~repro.engine.faults.FaultPolicy`.  When given,
        execution runs under a :class:`~repro.engine.faults.JobSupervisor`:
        per-job timeouts, bounded retry with seeded backoff jitter,
        poison-job quarantine (``Disposition.FAILED`` outcomes instead
        of a crashed batch) and degradation to in-process serial
        execution when the worker pool keeps dying.  ``None`` (default)
        keeps the unsupervised fast paths byte-for-byte unchanged.
    checkpoint:
        Optional :class:`~repro.engine.checkpoint.CheckpointLog` (or a
        path to one).  Completed joins are durably appended; on
        construction the log is loaded into the join cache (created if
        necessary) so a resumed run recomputes no finished pair.
    prefilter:
        Optional :class:`~repro.sketch.SketchPrefilter`.  When given,
        every job first passes the sketch tier's band-bucket collision
        gate (ahead of the envelope screen); dropped pairs resolve to
        ``PREFILTERED`` similarity-0 outcomes, and the tier's measured
        recall is folded into the ``p`` of computed/cached results so
        approximate runs report honestly deflated similarities.
        ``None`` (default) keeps results byte-identical to the
        pre-sketch engine.
    fault_injector:
        Optional :class:`~repro.engine.faults.FaultSpec` — the
        deterministic test hook that kills / hangs / raises on the k-th
        executed job.  Production code never sets this.
    """

    def __init__(
        self,
        communities: Sequence[Community],
        *,
        n_jobs: int = 1,
        screen: bool = True,
        cache: JoinResultCache | int | None = None,
        enforce_size_ratio: bool = True,
        metrics: MetricsRegistry | None = None,
        fault_policy: FaultPolicy | None = None,
        checkpoint: CheckpointLog | str | Path | None = None,
        prefilter: "SketchPrefilter | None" = None,
        fault_injector: FaultSpec | None = None,
    ) -> None:
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        self.communities = list(communities)
        self.n_jobs = int(n_jobs)
        self.screen = bool(screen)
        if isinstance(cache, int):
            cache = JoinResultCache(max_entries=cache)
        self.cache = cache
        self.enforce_size_ratio = bool(enforce_size_ratio)
        self.metrics = metrics
        self.fault_policy = fault_policy
        self.fault_injector = fault_injector
        #: Per-job telemetry records, appended by every ``run`` call
        #: while a registry is attached (empty otherwise).
        self.telemetry: list[JoinTelemetry] = []
        self.screened_count = 0
        self.prefiltered_count = 0
        self.computed_count = 0
        self.cached_count = 0
        self.failed_count = 0
        self.prefilter = prefilter
        if prefilter is not None:
            prefilter.bind(self.communities, metrics=metrics)
        #: Joins restored from the checkpoint log at construction.
        self.resumed_count = 0
        #: Quarantine records of every ``run`` call, in arrival order.
        self.quarantined: list = []
        self._envelopes: dict[int, Envelope] = {}
        self._fingerprints: dict[int, str] = {}
        self._algorithms: dict[tuple, object] = {}
        self._store: SharedVectorStore | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._supervisor: JobSupervisor | None = None
        if checkpoint is not None and not isinstance(checkpoint, CheckpointLog):
            checkpoint = CheckpointLog(checkpoint)
        self._checkpoint = checkpoint
        if checkpoint is not None:
            entries = checkpoint.load()
            if self.cache is None:
                self.cache = JoinResultCache(
                    max_entries=max(256, 2 * len(entries) + 1)
                )
            for key, payload in entries.items():
                self.cache.put(key, CSJResult.from_dict(payload))
            self.resumed_count = len(entries)
        if metrics is not None and self.cache is not None and self.cache.metrics is None:
            self.cache.metrics = metrics

    # -- bookkeeping ---------------------------------------------------
    def envelope(self, index: int) -> Envelope:
        envelope = self._envelopes.get(index)
        if envelope is None:
            envelope = community_envelope(self.communities[index])
            self._envelopes[index] = envelope
        return envelope

    def fingerprint(self, index: int) -> str:
        fingerprint = self._fingerprints.get(index)
        if fingerprint is None:
            fingerprint = community_fingerprint(self.communities[index])
            self._fingerprints[index] = fingerprint
        return fingerprint

    def _algorithm(self, job: PairJob):
        key = (job.method, job.epsilon, job.options)
        algorithm = self._algorithms.get(key)
        if algorithm is None:
            algorithm = get_algorithm(
                job.method, job.epsilon, **decoded_options(job.options)
            )
            self._algorithms[key] = algorithm
        return algorithm

    def _cache_key(self, job: PairJob) -> tuple[JoinKey, bool]:
        """Content key of the *oriented* pair plus the job's swap flag."""
        first = self.communities[job.first]
        second = self.communities[job.second]
        if first.n_users > second.n_users:
            oriented = (job.second, job.first)
            swapped = True
        else:
            oriented = (job.first, job.second)
            swapped = False
        key = join_key(
            self.fingerprint(oriented[0]),
            self.fingerprint(oriented[1]),
            job.epsilon,
            job.method,
            job.options,
        )
        return key, swapped

    def _synthetic_result(
        self,
        job: PairJob,
        swapped: bool,
        engine_label: str,
        *,
        exact: bool | None = None,
    ) -> CSJResult:
        """An empty-matching result for a pair that never ran a join."""
        oriented = (job.second, job.first) if swapped else (job.first, job.second)
        community_b = self.communities[oriented[0]]
        community_a = self.communities[oriented[1]]
        algorithm_cls = ALGORITHMS[job.method.strip().lower()]
        return CSJResult(
            method=algorithm_cls.name,
            exact=algorithm_cls.exact if exact is None else exact,
            size_b=community_b.n_users,
            size_a=community_a.n_users,
            epsilon=job.epsilon,
            pairs=[],
            events=EventCounts(),
            elapsed_seconds=0.0,
            engine=engine_label,
            swapped=swapped,
        )

    def _screened_result(self, job: PairJob, swapped: bool) -> CSJResult:
        """A similarity-0 result for a pair the envelopes ruled out."""
        return self._synthetic_result(job, swapped, SCREEN_ENGINE)

    def _prefiltered_result(self, job: PairJob, swapped: bool) -> CSJResult:
        """A similarity-0 result for a pair the sketch tier dropped.

        Unlike the envelope screen, a sketch drop is only *probably*
        right (unless the tier is exact), so the result is marked
        approximate regardless of the requested method.
        """
        exact = self.prefilter.is_exact if self.prefilter is not None else False
        return self._synthetic_result(job, swapped, SKETCH_ENGINE, exact=exact)

    def _screen_verdicts(
        self, jobs: list[PairJob]
    ) -> dict[tuple[int, int, int], bool] | None:
        """Batch all-pairs envelope verdicts for long job lists.

        Groups jobs by epsilon, stacks the involved communities'
        envelopes into ``(C, d)`` matrices and evaluates the whole
        separation square in one broadcast op.  Returns ``None`` when
        the scalar per-pair path is cheaper (short lists) or the screen
        is off; verdicts are keyed ``(epsilon, first, second)`` and are
        bit-identical to :func:`envelopes_separated` (the tests assert
        parity), so the fast path never changes results — the per-job
        metric counters are incremented by the caller exactly as on the
        scalar path.
        """
        if not self.screen or len(jobs) < VECTOR_SCREEN_MIN_JOBS:
            return None
        by_epsilon: dict[int, set[tuple[int, int]]] = {}
        for job in jobs:
            by_epsilon.setdefault(job.epsilon, set()).add((job.first, job.second))
        verdicts: dict[tuple[int, int, int], bool] = {}
        for epsilon, pairs in by_epsilon.items():
            indices = sorted({index for pair in pairs for index in pair})
            mins, maxs = stack_envelopes([self.envelope(i) for i in indices])
            separated = separation_matrix(mins, maxs, epsilon)
            rows = {index: row for row, index in enumerate(indices)}
            for first, second in pairs:
                verdicts[(epsilon, first, second)] = bool(
                    separated[rows[first], rows[second]]
                )
        return verdicts

    # -- execution -----------------------------------------------------
    def run(self, jobs: Iterable[PairJob]) -> list[PairOutcome]:
        """Resolve every job, preserving input order in the output."""
        jobs = list(jobs)
        outcomes: list[PairOutcome | None] = [None] * len(jobs)
        pending: list[tuple[int, PairJob, JoinKey | None, bool]] = []
        with stage_timer(self.metrics, "batch.plan"):
            verdicts = self._screen_verdicts(jobs)
            for position, job in enumerate(jobs):
                first = self.communities[job.first]
                second = self.communities[job.second]
                # Raise dimension/size-ratio errors exactly like a direct join.
                _, _, swapped = validate_pair(
                    first, second, enforce_size_ratio=self.enforce_size_ratio
                )
                if job.method.strip().lower() not in ALGORITHMS:
                    raise UnknownAlgorithmError(job.method, tuple(ALGORITHMS))
                if self.prefilter is not None and not self.prefilter.admits(
                    job.epsilon, job.first, job.second
                ):
                    self.prefiltered_count += 1
                    outcomes[position] = PairOutcome(
                        job,
                        Disposition.PREFILTERED,
                        self._prefiltered_result(job, swapped),
                    )
                    continue
                if self.screen:
                    if verdicts is not None:
                        separated = verdicts[(job.epsilon, job.first, job.second)]
                        # Same counters the scalar path increments inside
                        # envelopes_separated — metric parity either way.
                        if self.metrics is not None:
                            self.metrics.inc("repro_engine_envelope_tests_total")
                            if separated:
                                self.metrics.inc(
                                    "repro_engine_envelope_separations_total"
                                )
                    else:
                        separated = envelopes_separated(
                            self.envelope(job.first),
                            self.envelope(job.second),
                            job.epsilon,
                            metrics=self.metrics,
                        )
                    if separated:
                        self.screened_count += 1
                        outcomes[position] = PairOutcome(
                            job,
                            Disposition.SCREENED,
                            self._screened_result(job, swapped),
                        )
                        continue
                key: JoinKey | None = None
                if self.cache is not None:
                    key, _ = self._cache_key(job)
                    cached = self.cache.get(key)
                    if cached is not None:
                        # The stored result is oriented; only the swap flag
                        # depends on the order this job named the pair in.
                        cached.swapped = swapped
                        self.cached_count += 1
                        outcomes[position] = PairOutcome(
                            job, Disposition.CACHED, cached
                        )
                        continue
                pending.append((position, job, key, swapped))

        if pending:
            with stage_timer(self.metrics, "batch.execute"):
                if self.fault_policy is not None:
                    computed = self._run_supervised(pending)
                elif self.n_jobs == 1 or len(pending) == 1:
                    computed = [(r, None) for r in self._run_serial(pending)]
                else:
                    computed = [(r, None) for r in self._run_parallel(pending)]
            for (position, job, key, swapped), (result, error) in zip(
                pending, computed
            ):
                if error is not None:
                    self.failed_count += 1
                    outcomes[position] = PairOutcome(
                        job,
                        Disposition.FAILED,
                        self._synthetic_result(job, swapped, QUARANTINE_ENGINE),
                        error=error,
                    )
                    continue
                self.computed_count += 1
                if self.cache is not None and key is not None:
                    self.cache.put(key, result)
                if self._checkpoint is not None and key is not None:
                    self._checkpoint.append(key, result)
                outcomes[position] = PairOutcome(job, Disposition.COMPUTED, result)
        if self.prefilter is not None and not self.prefilter.is_exact:
            self._fold_recall(outcomes)
        assert all(outcome is not None for outcome in outcomes)
        if self.metrics is not None:
            for outcome in outcomes:
                self._observe(outcome)  # type: ignore[arg-type]
        return outcomes  # type: ignore[return-value]

    def _fold_recall(self, outcomes: list[PairOutcome | None]) -> None:
        """Multiply the sketch tier's measured recall into reported ``p``.

        Runs only for lossy pre-filters, *after* cache and checkpoint
        writes: stored results stay pure join outputs (reusable by
        exact runs) while the outcomes handed back report
        ``similarity = p * recall * |M| / |B|`` — Eq. (1) with the
        candidate-generation error folded in.  Folded results are
        copies, so cached entries are never mutated, and they are
        marked approximate.
        """
        assert self.prefilter is not None
        for outcome in outcomes:
            if outcome is None or outcome.disposition not in (
                Disposition.COMPUTED,
                Disposition.CACHED,
            ):
                continue
            recall = self.prefilter.recall(outcome.job.epsilon)
            if recall >= 1.0:
                continue
            result = outcome.result
            outcome.result = dataclasses.replace(
                result,
                p=result.p * recall,
                exact=False,
                pairs=list(result.pairs),
                stage_seconds=dict(result.stage_seconds),
            )

    def _observe(self, outcome: PairOutcome) -> None:
        """Record one resolved job into the registry and telemetry log."""
        metrics = self.metrics
        assert metrics is not None
        job, result = outcome.job, outcome.result
        disposition = outcome.disposition.value
        metrics.inc("repro_engine_jobs_total", 1, disposition=disposition)
        self.telemetry.append(
            JoinTelemetry(
                first=job.first,
                second=job.second,
                method=job.method,
                epsilon=job.epsilon,
                disposition=disposition,
                similarity=result.similarity,
                n_matched=result.n_matched,
                size_b=result.size_b,
                size_a=result.size_a,
                swapped=result.swapped,
                screened=outcome.disposition is Disposition.SCREENED,
                cache_hit=outcome.disposition is Disposition.CACHED,
                events=result.events.as_dict(),
                pairs_examined=result.events.total,
                comparisons=result.events.comparisons,
                stage_seconds=dict(result.stage_seconds),
                elapsed_seconds=result.elapsed_seconds,
                engine=result.engine,
            )
        )

    def _run_serial(
        self, pending: list[tuple[int, PairJob, JoinKey | None, bool]]
    ) -> list[CSJResult]:
        results = []
        for _, job, _, _ in pending:
            algorithm = self._algorithm(job)
            algorithm.metrics = self.metrics
            results.append(
                algorithm.join(
                    self.communities[job.first],
                    self.communities[job.second],
                    enforce_size_ratio=self.enforce_size_ratio,
                )
            )
        return results

    def _run_parallel(
        self, pending: list[tuple[int, PairJob, JoinKey | None, bool]]
    ) -> list[CSJResult]:
        pool = self._ensure_pool()
        tasks = [
            (position, job.first, job.second, job.method, job.epsilon, job.options)
            for position, job, _, _ in pending
        ]
        workers = min(self.n_jobs, len(tasks))
        chunk_size = max(1, -(-len(tasks) // (workers * 4)))
        chunks = [
            tasks[start : start + chunk_size]
            for start in range(0, len(tasks), chunk_size)
        ]
        by_position: dict[int, CSJResult] = {}
        collect = self.metrics is not None
        futures = [
            pool.submit(_run_chunk, chunk, self.enforce_size_ratio, collect)
            for chunk in chunks
        ]
        for future in futures:
            entries, snapshot = future.result()
            for position, payload in entries:
                by_position[position] = CSJResult.from_dict(payload)
            if snapshot is not None:
                self.metrics.merge(snapshot)  # type: ignore[union-attr]
        return [by_position[position] for position, _, _, _ in pending]

    def _run_supervised(
        self, pending: list[tuple[int, PairJob, JoinKey | None, bool]]
    ) -> list[tuple[CSJResult | None, str | None]]:
        """Execute ``pending`` under the job supervisor.

        Returns one ``(result, error)`` per pending entry: quarantined
        jobs come back as ``(None, message)``.  The supervisor instance
        is engine-scoped, so retry/timeout/quarantine counters and the
        degraded flag accumulate across ``run`` calls.

        Event-counter parity with a clean run is guaranteed on both
        paths: pool workers only ship their metrics snapshot alongside a
        *successful* result, and in-process attempts run against a
        scratch registry merged only on success — a failed attempt's
        partial MATCH/NO_MATCH events are discarded with it.
        """
        if self._supervisor is None:
            self._supervisor = JobSupervisor(self.fault_policy, metrics=self.metrics)
        supervisor = self._supervisor
        injector = self.fault_injector
        collect = self.metrics is not None
        tasks = [
            SupervisedTask(position=index, payload=job)
            for index, (_, job, _, _) in enumerate(pending)
        ]

        def run_inline(task: SupervisedTask, attempt: int) -> CSJResult:
            job = task.payload
            maybe_inject(injector, task.position, attempt, in_process=True)
            algorithm = self._algorithm(job)
            scratch = MetricsRegistry() if collect else None
            algorithm.metrics = scratch
            result = algorithm.join(
                self.communities[job.first],
                self.communities[job.second],
                enforce_size_ratio=self.enforce_size_ratio,
            )
            if scratch is not None:
                self.metrics.merge(scratch)  # type: ignore[union-attr]
            return result

        def submit(task: SupervisedTask, attempt: int) -> Future:
            job = task.payload
            pool = self._ensure_pool()
            return pool.submit(
                _run_supervised_job,
                task.position,
                job.first,
                job.second,
                job.method,
                job.epsilon,
                job.options,
                self.enforce_size_ratio,
                collect,
                attempt,
                injector,
            )

        report = supervisor.run(
            tasks,
            workers=min(self.n_jobs, len(tasks)),
            submit=None if self.n_jobs == 1 else submit,
            run_inline=run_inline,
            reset_pool=self._kill_pool,
        )
        self.quarantined.extend(report.quarantined)
        errors = {record.position: record.error for record in report.quarantined}
        out: list[tuple[CSJResult | None, str | None]] = []
        for index in range(len(pending)):
            if index in errors:
                out.append((None, errors[index]))
                continue
            value = report.results[index]
            if isinstance(value, CSJResult):
                out.append((value, None))
                continue
            payload, snapshot = value
            if snapshot is not None and self.metrics is not None:
                self.metrics.merge(snapshot)
            out.append((CSJResult.from_dict(payload), None))
        return out

    def _kill_pool(self) -> None:
        """Tear down the worker pool, terminating live workers.

        Used by the supervisor after a crash or hang: a hung worker
        never returns, so ``shutdown(wait=True)`` would deadlock — the
        processes are terminated first.  The shared store stays alive
        for the replacement pool.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                pass  # already dead or mid-teardown; nothing to reclaim
        pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._store is None:
                self._store = SharedVectorStore(self.communities)
            methods = get_all_start_methods()
            context = get_context("fork" if "fork" in methods else "spawn")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._store.layout,),
            )
        return self._pool

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down and release the shared store."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None
        if self._checkpoint is not None:
            self._checkpoint.close()

    def stats(self) -> dict[str, object]:
        """Dispositions plus cache counters, for reports and logs."""
        stats: dict[str, object] = {
            "computed": self.computed_count,
            "screened": self.screened_count,
            "cached": self.cached_count,
            "failed": self.failed_count,
            "n_jobs": self.n_jobs,
        }
        if self.prefilter is not None:
            stats["prefiltered"] = self.prefiltered_count
            stats["sketch"] = self.prefilter.stats()
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        if self._checkpoint is not None:
            stats["resumed"] = self.resumed_count
        if self._supervisor is not None:
            stats["faults"] = {
                "retries": self._supervisor.retries_total,
                "timeouts": self._supervisor.timeouts_total,
                "quarantined": self._supervisor.quarantined_total,
                "pool_resets": self._supervisor.pool_resets,
                "degraded": self._supervisor.degraded,
            }
        return stats

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        # Interpreter-teardown safety net: pool/shm may be half-dead and
        # raising from __del__ only prints noise.
        except Exception:  # repro-lint: disable=RL005
            pass
