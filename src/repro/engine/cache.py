"""Content-addressed LRU cache of join results.

Sweeps and repeated top-k calls evaluate the same community pair under
the same configuration over and over; the join is deterministic, so the
second evaluation is pure waste.  :class:`JoinResultCache` memoises
results keyed by ``(fingerprint(B), fingerprint(A), epsilon, method,
options)`` — content fingerprints, not object identities, so hits
survive regeneration of identical data and cross process boundaries.

The cache stores the JSON-style payload of
:meth:`~repro.core.types.CSJResult.to_dict` rather than the live object:
payloads are cheap to copy, immutable from the caller's perspective, and
each hit is rehydrated into a fresh ``CSJResult`` so callers can never
corrupt a cached entry.  Entries are bounded by an LRU policy and the
cache keeps hit/miss/eviction counters for observability.

The cache is **thread-safe**: the similarity service shares one cache
between executor threads serving concurrent requests, so every entry
and counter access runs under an internal lock (``OrderedDict`` LRU
reordering is a structural mutation even on the read path).  Counter
and gauge mirroring into the attached metrics registry happens under
the same lock, serialising updates to those metric keys.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

from ..core.errors import ConfigurationError
from ..core.types import CSJResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["JoinKey", "JoinResultCache", "canonical_options", "decoded_options"]

#: ``(fingerprint_b, fingerprint_a, epsilon, method, options)``.
JoinKey = tuple[str, str, int, str, tuple]


def canonical_options(options: Mapping[str, object]) -> tuple:
    """Normalise a method-options mapping into a hashable cache-key part.

    Each value is tagged with its type name — ``("bool", True)``,
    ``("int", 1)`` — because ``bool`` is an ``int`` subclass and equal-
    hashing numerics (``True == 1 == 1.0``) would otherwise alias to the
    same cache key, letting a join configured with ``{"flag": 1}`` be
    served the cached result of ``{"flag": True}``.  Non-primitive
    values fall back to their ``repr`` (tag ``"repr"``) so arbitrary
    configurations stay hashable and deterministic.
    """
    canonical = []
    for key in sorted(options):
        value = options[key]
        if isinstance(value, (bool, int, float, str, bytes, type(None))):
            tagged = (type(value).__name__, value)
        else:
            tagged = ("repr", repr(value))
        canonical.append((key, tagged))
    return tuple(canonical)


def decoded_options(options: tuple) -> dict[str, object]:
    """Invert :func:`canonical_options` back into a keyword mapping.

    The type tags exist only to keep cache keys collision-free; the
    values themselves are stored unchanged, so decoding just strips the
    tags.  (``"repr"``-tagged values stay as their repr string — they
    were never recoverable, exactly as before tagging.)
    """
    return {key: tagged[1] for key, tagged in options}


def join_key(
    fingerprint_b: str,
    fingerprint_a: str,
    epsilon: int,
    method: str,
    options: Mapping[str, object] | tuple = (),
) -> JoinKey:
    """Build the content-addressed key of one configured join."""
    if isinstance(options, Mapping):
        options = canonical_options(options)
    return (fingerprint_b, fingerprint_a, int(epsilon), method, tuple(options))


class JoinResultCache:
    """Bounded LRU cache mapping :data:`JoinKey` to result payloads.

    ``metrics`` (assignable after construction too) mirrors the hit /
    miss / eviction counters into a
    :class:`~repro.obs.registry.MetricsRegistry` as
    ``repro_engine_cache_{hits,misses,evictions}_total`` plus the
    ``repro_engine_cache_entries`` gauge, so cache behaviour shows up in the
    same run logs as everything else.  The cache's own integer counters
    remain the source of truth (the telemetry-accuracy tests assert the
    two agree).

    All operations are safe to call from multiple threads; one instance
    may be shared between engines and between the serving layer's
    executor threads.
    """

    def __init__(
        self,
        max_entries: int = 256,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[JoinKey, dict] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: JoinKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: JoinKey) -> CSJResult | None:
        """Look up a join result, counting the hit or miss."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                if self.metrics is not None:
                    self.metrics.inc("repro_engine_cache_misses_total")
                return None
            self.hits += 1
            if self.metrics is not None:
                self.metrics.inc("repro_engine_cache_hits_total")
            self._entries.move_to_end(key)
            payload = copy.deepcopy(payload)
        return CSJResult.from_dict(payload)

    def put(self, key: JoinKey, result: CSJResult) -> None:
        """Insert (or refresh) a result, evicting the LRU entry if full."""
        payload = result.to_dict()
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self.metrics is not None:
                    self.metrics.inc("repro_engine_cache_evictions_total")
            if self.metrics is not None:
                self.metrics.set_gauge(
                    "repro_engine_cache_entries", len(self._entries)
                )

    def clear(self) -> None:
        """Drop all entries; counters are kept (they describe history).

        The occupancy gauge is *not* history — it reports the current
        entry count, so it must go to zero with the entries (it used to
        stay stale until the next ``put``).
        """
        with self._lock:
            self._entries.clear()
            if self.metrics is not None:
                self.metrics.set_gauge("repro_engine_cache_entries", 0)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, float | int]:
        """Counters snapshot for logs and benchmark reports."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"JoinResultCache(entries={len(self._entries)}"
                f"/{self.max_entries}, "
                f"hits={self.hits}, misses={self.misses})"
            )
