"""Fault tolerance for batch joins: timeouts, retries, quarantine.

Without supervision, one crashed or hung worker kills an entire
``BatchEngine.run`` fan-out: a dead process breaks the whole
``ProcessPoolExecutor`` and a hung one stalls it forever.  The
:class:`JobSupervisor` makes robustness a first-class join property:

* **per-job timeouts** — every in-flight job carries its own deadline;
  a job that exceeds it is charged a timeout and the (unreclaimable)
  pool is recycled, while jobs that were merely co-scheduled are
  re-queued without charge;
* **bounded retry** — failed attempts are retried up to
  ``FaultPolicy.retries`` times with exponential backoff plus seeded,
  deterministic jitter;
* **poison-job quarantine** — a job that exhausts its attempts is set
  aside as a :class:`QuarantineRecord` instead of failing the batch;
* **crash attribution** — a worker crash fails *every* in-flight future
  with ``BrokenProcessPool``, so the supervisor cannot tell culprit
  from bystander.  Jobs that crashed in company are re-queued uncharged
  but marked *suspect* and re-run in isolation; a solo crash is
  definitive and is charged;
* **graceful degradation** — after ``FaultPolicy.pool_resets`` pool
  losses the supervisor stops rebuilding pools and runs the remaining
  jobs in-process, serially (deadlines cannot be enforced in-process,
  but the batch still completes).

The supervisor is executor-agnostic: the engine hands it ``submit`` /
``run_inline`` / ``reset_pool`` callbacks and opaque task payloads, so
it can be unit-tested without a process pool.

:class:`FaultSpec` is the deterministic fault-injection hook used by the
tests and benchmarks: it fires on the k-th *executed* job of a batch
(kill / hang / raise) for a configured number of attempts, so transient
faults (retry succeeds) and poison jobs (quarantine) are both a one-line
setup.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..obs import MetricsRegistry

__all__ = [
    "FaultPolicy",
    "FaultSpec",
    "InjectedFault",
    "JobSupervisor",
    "QuarantineRecord",
    "SupervisedTask",
    "SupervisorRunReport",
    "maybe_inject",
]


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the supervised execution path.

    Parameters
    ----------
    timeout:
        Per-job wall-clock deadline in seconds (``None`` disables
        deadlines).  Only enforceable for pool execution; in-process
        jobs cannot be preempted.
    retries:
        Failed attempts re-run up to this many times (so a job gets
        ``retries + 1`` attempts before quarantine).
    backoff_base / backoff_cap:
        Exponential backoff between attempts: attempt ``n`` waits
        ``min(backoff_base * 2**(n-1), backoff_cap)`` seconds plus
        jitter.
    jitter:
        Uniform jitter added to each backoff, as a fraction of the
        computed delay, drawn from a Generator seeded with ``seed`` —
        deterministic, never global-state RNG.
    seed:
        Seed of the jitter Generator.
    pool_resets:
        Pool losses (crash or hang) tolerated before the supervisor
        degrades to in-process serial execution.
    """

    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    pool_resets: int = 8

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.pool_resets < 0:
            raise ConfigurationError(
                f"pool_resets must be >= 0, got {self.pool_resets}"
            )

    @property
    def max_attempts(self) -> int:
        """Attempts before a job is quarantined."""
        return self.retries + 1

    def backoff_seconds(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before retry number ``attempt`` (1-based), with jitter."""
        base = min(self.backoff_base * (2.0 ** max(0, attempt - 1)), self.backoff_cap)
        return base * (1.0 + self.jitter * float(rng.random()))


#: Injection modes: raise an exception, hang the worker, kill its process.
FAULT_MODES = ("raise", "hang", "kill")


class InjectedFault(RuntimeError):
    """Raised by :func:`maybe_inject` in ``"raise"`` mode (and for
    ``"hang"``/``"kill"`` when execution is in-process and cannot be
    preempted or sacrificed)."""


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection: fire on the k-th executed job.

    ``at`` indexes the jobs a ``run`` call actually executes (screened
    and cached jobs are resolved before execution and never see faults),
    0-based.  The fault fires while the job's attempt number is at most
    ``fail_attempts`` — so the default ``1`` models a transient fault
    that a single retry survives, and a large value models a poison job.

    The spec is a frozen dataclass of primitives so it pickles cleanly
    into pool workers.
    """

    mode: str
    at: int
    fail_attempts: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; available: {FAULT_MODES}"
            )


def maybe_inject(
    spec: FaultSpec | None, position: int, attempt: int, *, in_process: bool
) -> None:
    """Trigger the configured fault if ``spec`` targets this execution.

    In-process execution cannot be preempted (``hang``) or sacrificed
    (``kill``), so both degrade to :class:`InjectedFault` raises there —
    the supervisor still sees a failed attempt.
    """
    if spec is None or position != spec.at or attempt > spec.fail_attempts:
        return
    if spec.mode == "raise" or in_process:
        raise InjectedFault(
            f"injected {spec.mode} fault on job {position} (attempt {attempt})"
        )
    if spec.mode == "hang":
        time.sleep(spec.hang_seconds)
        raise InjectedFault(
            f"injected hang on job {position} outlived {spec.hang_seconds}s"
        )
    os._exit(13)  # "kill": die without cleanup, like a real crash


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work: the batch position plus an opaque
    payload the engine's callbacks know how to execute."""

    position: int
    payload: object


@dataclass(frozen=True)
class QuarantineRecord:
    """A poison job set aside after exhausting its attempts."""

    position: int
    attempts: int
    error: str


@dataclass
class SupervisorRunReport:
    """Outcome of one supervised batch."""

    results: dict[int, object]
    quarantined: list[QuarantineRecord] = field(default_factory=list)


@dataclass
class _TaskState:
    task: SupervisedTask
    charges: int = 0  # definitively-attributed failures so far
    not_before: float = 0.0  # monotonic time before which not to launch
    suspect: bool = False  # crashed in company; must re-run in isolation
    deadline: float = math.inf  # per-launch deadline while in flight

    @property
    def attempt(self) -> int:
        return self.charges + 1


class JobSupervisor:
    """Drives a batch of tasks to completion under a :class:`FaultPolicy`.

    One supervisor instance persists per engine: its counters
    (``retries_total`` / ``timeouts_total`` / ``quarantined_total`` /
    ``pool_resets``) accumulate across ``run`` calls and a degraded
    supervisor stays degraded.  Metric mirrors land in ``metrics`` as
    ``repro_engine_{retries,timeouts,quarantined,pool_resets}_total``
    plus the ``repro_engine_degraded`` gauge.
    """

    def __init__(
        self,
        policy: FaultPolicy,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy
        self.metrics = metrics
        self.retries_total = 0
        self.timeouts_total = 0
        self.quarantined_total = 0
        self.pool_resets = 0
        self.degraded = False
        self._rng = np.random.default_rng(policy.seed)
        if metrics is not None:
            metrics.set_gauge("repro_engine_degraded", 0.0)

    # -- public API ----------------------------------------------------
    def run(
        self,
        tasks: Sequence[SupervisedTask],
        *,
        workers: int,
        submit: Callable[[SupervisedTask, int], Future] | None,
        run_inline: Callable[[SupervisedTask, int], object],
        reset_pool: Callable[[], None],
    ) -> SupervisorRunReport:
        """Execute every task; return results keyed by position.

        ``submit(task, attempt)`` dispatches one task to the pool;
        ``None`` (or ``workers <= 1`` or a degraded supervisor) selects
        the in-process path.  ``run_inline(task, attempt)`` executes one
        task in-process and must raise on failure.  ``reset_pool`` kills
        and forgets the broken/hung pool; the next ``submit`` is
        expected to rebuild it.
        """
        report = SupervisorRunReport(results={})
        queue: deque[_TaskState] = deque(_TaskState(task) for task in tasks)
        if submit is None or workers <= 1 or self.degraded:
            self._drain_inline(queue, run_inline, report)
            return report
        inflight: dict[Future, _TaskState] = {}
        while queue or inflight:
            if self.degraded:
                # Pool kept dying: no inflight work remains (cleared on
                # the reset that tripped degradation), finish serially.
                self._drain_inline(queue, run_inline, report)
                break
            if not self._launch(queue, inflight, workers, submit):
                self._reset_pool(reset_pool)
                continue
            if not inflight:
                self._sleep_until_ready(queue)
                continue
            earliest = min(state.deadline for state in inflight.values())
            timeout = (
                None
                if math.isinf(earliest)
                else max(0.0, earliest - time.monotonic())
            )
            done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                self._handle_stall(inflight, queue, report)
                self._reset_pool(reset_pool)
                continue
            if self._harvest(done, inflight, queue, report):
                continue
            # Pool broke: salvage nothing further — every remaining
            # future belongs to the dead executor and is already failed
            # or doomed; re-queue those jobs uncharged as suspects.
            for state in inflight.values():
                self._requeue_uncharged(state, queue, suspect=True)
            inflight.clear()
            self._reset_pool(reset_pool)
        return report

    # -- scheduling ----------------------------------------------------
    def _launch(
        self,
        queue: deque[_TaskState],
        inflight: dict[Future, _TaskState],
        workers: int,
        submit: Callable[[SupervisedTask, int], Future],
    ) -> bool:
        """Submit ready tasks.  Returns False when the pool broke on
        submission (caller must reset)."""
        now = time.monotonic()
        if any(state.suspect for state in queue):
            # Isolation mode: suspects run one at a time with nothing
            # alongside, so the next crash is definitively attributed.
            if inflight:
                return True
            for index, state in enumerate(queue):
                if state.suspect and state.not_before <= now:
                    del queue[index]
                    return self._submit_one(state, inflight, submit, queue)
            return True
        launched_ok = True
        index = 0
        scanned = len(queue)
        while index < scanned and len(inflight) < workers and launched_ok:
            state = queue[0]
            queue.popleft()
            if state.not_before > now:
                queue.append(state)
                index += 1
                continue
            launched_ok = self._submit_one(state, inflight, submit, queue)
            index += 1
        return launched_ok

    def _submit_one(
        self,
        state: _TaskState,
        inflight: dict[Future, _TaskState],
        submit: Callable[[SupervisedTask, int], Future],
        queue: deque[_TaskState],
    ) -> bool:
        try:
            future = submit(state.task, state.attempt)
        except BrokenExecutor:
            # The pool died under a previous task's crash before this
            # submission; nobody new gets charged for that.
            self._requeue_uncharged(state, queue, suspect=state.suspect)
            return False
        state.deadline = (
            time.monotonic() + self.policy.timeout
            if self.policy.timeout is not None
            else math.inf
        )
        inflight[future] = state
        return True

    def _sleep_until_ready(self, queue: deque[_TaskState]) -> None:
        if not queue:
            return
        delay = min(state.not_before for state in queue) - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    # -- completion handling -------------------------------------------
    def _harvest(
        self,
        done: set[Future],
        inflight: dict[Future, _TaskState],
        queue: deque[_TaskState],
        report: SupervisorRunReport,
    ) -> bool:
        """Collect finished futures.  Returns False when the pool broke."""
        pool_alive = True
        for future in done:
            state = inflight.pop(future)
            try:
                report.results[state.task.position] = future.result()
            except BrokenExecutor as error:
                pool_alive = False
                if len(done) == 1 and not inflight:
                    # Solo execution: the crash is definitively this job.
                    self._charge(state, error, queue, report)
                else:
                    # Crashed in company — culprit unknown.  Re-queue
                    # uncharged but suspect, to re-run in isolation.
                    self._requeue_uncharged(state, queue, suspect=True)
            except Exception as error:  # worker raised: definitive failure
                self._charge(state, error, queue, report)
        return pool_alive

    def _handle_stall(
        self,
        inflight: dict[Future, _TaskState],
        queue: deque[_TaskState],
        report: SupervisorRunReport,
    ) -> None:
        """No future finished before the earliest deadline: at least one
        job hung.  Deadlines are per-future, so attribution is exact —
        overdue jobs are charged a timeout, the rest re-queued free."""
        now = time.monotonic()
        for future, state in inflight.items():
            if future.cancel():
                # Never started: the queue slot is free to re-run, and
                # the job cannot be the hang — no charge.
                self._requeue_uncharged(state, queue, suspect=False)
            elif state.deadline <= now:
                self.timeouts_total += 1
                if self.metrics is not None:
                    self.metrics.inc("repro_engine_timeouts_total")
                self._charge(state, TimeoutError("job deadline exceeded"), queue, report)
            else:
                self._requeue_uncharged(state, queue, suspect=False)
        inflight.clear()

    def _charge(
        self,
        state: _TaskState,
        error: BaseException,
        queue: deque[_TaskState],
        report: SupervisorRunReport,
    ) -> None:
        state.charges += 1
        state.suspect = False
        if state.charges >= self.policy.max_attempts:
            record = QuarantineRecord(
                position=state.task.position,
                attempts=state.charges,
                error=f"{type(error).__name__}: {error}",
            )
            report.quarantined.append(record)
            self.quarantined_total += 1
            if self.metrics is not None:
                self.metrics.inc("repro_engine_quarantined_total")
            return
        self.retries_total += 1
        if self.metrics is not None:
            self.metrics.inc("repro_engine_retries_total")
        state.not_before = time.monotonic() + self.policy.backoff_seconds(
            state.charges, self._rng
        )
        queue.append(state)

    def _requeue_uncharged(
        self, state: _TaskState, queue: deque[_TaskState], *, suspect: bool
    ) -> None:
        state.suspect = suspect or state.suspect
        state.not_before = 0.0
        queue.appendleft(state)

    def _reset_pool(self, reset_pool: Callable[[], None]) -> None:
        reset_pool()
        self.pool_resets += 1
        if self.metrics is not None:
            self.metrics.inc("repro_engine_pool_resets_total")
        if self.pool_resets > self.policy.pool_resets and not self.degraded:
            self.degraded = True
            if self.metrics is not None:
                self.metrics.set_gauge("repro_engine_degraded", 1.0)

    # -- in-process fallback -------------------------------------------
    def _drain_inline(
        self,
        queue: deque[_TaskState],
        run_inline: Callable[[SupervisedTask, int], object],
        report: SupervisorRunReport,
    ) -> None:
        while queue:
            state = queue.popleft()
            delay = state.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                report.results[state.task.position] = run_inline(
                    state.task, state.attempt
                )
            except Exception as error:
                self._charge(state, error, queue, report)
