"""Per-dimension min/max envelopes and the pair-level pre-screen.

LSF-Join-style distributed similarity joins hinge on cheap per-pair
filters that discard work before the expensive join runs.  CSJ admits a
particularly strong one: the join condition requires *every* dimension
of a matched pair to differ by at most epsilon, so if the value ranges
of two communities are separated by more than epsilon in even a single
dimension, **no** user pair can match and the CSJ similarity is exactly
zero.  The envelope (per-dimension min and max over a community's
users) is computed once per community in O(n·d) and each pair test is
O(d) — negligible next to a join.

Soundness: for a dimension ``t`` with ``min_A[t] - max_B[t] > eps`` (or
symmetrically ``min_B[t] - max_A[t] > eps``), every ``b in B`` and
``a in A`` satisfy ``|b[t] - a[t]| >= min_A[t] - max_B[t] > eps``, so
the candidate graph is empty, every method returns an empty matching,
and Eq. (1) evaluates to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.types import Community

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "Envelope",
    "community_envelope",
    "envelopes_separated",
    "stack_envelopes",
    "separation_matrix",
]

#: Instance-level memo attribute of :func:`community_envelope`.
_ENVELOPE_CACHE_ATTR = "_envelope_cache"


@dataclass(frozen=True)
class Envelope:
    """Per-dimension value bounds of one community's user vectors."""

    mins: np.ndarray  # shape (d,), int64
    maxs: np.ndarray  # shape (d,), int64

    @property
    def n_dims(self) -> int:
        return int(self.mins.shape[0])


def community_envelope(community: Community) -> Envelope:
    """The per-dimension min/max envelope of a community (memoised).

    Envelopes are epsilon-independent and a community's vectors are
    frozen read-only at construction, so the envelope is computed once
    and stashed on the instance — sweeps touching the same community at
    many epsilons (or many engines sharing a catalog) pay the O(n*d)
    scan a single time.  ``dataclasses.replace`` builds fresh instances,
    so a mutated copy never inherits a stale envelope.
    """
    cached = community.__dict__.get(_ENVELOPE_CACHE_ATTR)
    if cached is not None:
        return cached
    vectors = community.vectors
    envelope = Envelope(
        mins=vectors.min(axis=0).astype(np.int64, copy=False),
        maxs=vectors.max(axis=0).astype(np.int64, copy=False),
    )
    # Community is a frozen dataclass; the memo is not a field, so
    # object.__setattr__ is the sanctioned back door.
    object.__setattr__(community, _ENVELOPE_CACHE_ATTR, envelope)
    return envelope


def stack_envelopes(
    envelopes: Sequence[Envelope],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-community bounds into ``(C, d)`` min/max matrices."""
    mins = np.stack([envelope.mins for envelope in envelopes])
    maxs = np.stack([envelope.maxs for envelope in envelopes])
    return mins, maxs


def separation_matrix(
    mins: np.ndarray, maxs: np.ndarray, epsilon: int
) -> np.ndarray:
    """All-pairs envelope separation in one broadcast op.

    ``mins``/``maxs`` are the stacked ``(C, d)`` matrices of
    :func:`stack_envelopes`; the result is a symmetric ``(C, C)``
    boolean matrix whose ``[i, j]`` entry equals
    ``envelopes_separated(envelopes[i], envelopes[j], epsilon)`` — the
    batch engine uses it to screen a whole job list without the
    per-pair Python loop.
    """
    # gap[i, j, t] = mins[j, t] - maxs[i, t]: community j strictly above i.
    gap = mins[None, :, :] - maxs[:, None, :]
    one_way = (gap > epsilon).any(axis=2)
    return one_way | one_way.T


def envelopes_separated(
    first: Envelope,
    second: Envelope,
    epsilon: int,
    *,
    metrics: "MetricsRegistry | None" = None,
) -> bool:
    """True when some dimension separates the envelopes by more than epsilon.

    A ``True`` verdict is a proof that the CSJ similarity of the two
    communities is zero at this epsilon; ``False`` says nothing (the
    envelopes may overlap while no individual pair matches).  With
    ``metrics`` attached, every test is counted into
    ``repro_engine_envelope_tests_total`` and positive verdicts additionally into
    ``repro_engine_envelope_separations_total``.
    """
    gap_low = second.mins - first.maxs  # second strictly above first
    gap_high = first.mins - second.maxs  # first strictly above second
    separated = bool((gap_low > epsilon).any() or (gap_high > epsilon).any())
    if metrics is not None:
        metrics.inc("repro_engine_envelope_tests_total")
        if separated:
            metrics.inc("repro_engine_envelope_separations_total")
    return separated
