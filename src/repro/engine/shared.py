"""Shared-memory vector store for multi-process batch joins.

Shipping a community to a worker by pickling its matrix costs a copy
per *task*; with all-pairs workloads every community is needed by many
tasks, so the engine instead publishes every matrix once into a single
``multiprocessing.shared_memory`` block.  Workers attach to the block
in their initializer and rebuild zero-copy :class:`Community` views on
demand, so a task only ever pickles a handful of integers.

Layout: all matrices are C-contiguous int64 (guaranteed by
``Community``) and are packed back to back; :class:`StoreLayout` is the
tiny picklable description (block name plus per-community name/offset/
shape metadata) that travels to the workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ..core.types import Community

__all__ = ["CommunitySpec", "StoreLayout", "SharedVectorStore", "AttachedVectorStore"]

_ITEMSIZE = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class CommunitySpec:
    """Picklable metadata locating one community inside the block."""

    name: str
    category: str
    page_id: int
    offset: int
    n_users: int
    n_dims: int


@dataclass(frozen=True)
class StoreLayout:
    """Everything a worker needs to attach: block name + specs."""

    shm_name: str
    specs: tuple[CommunitySpec, ...]


def _view(buffer, spec: CommunitySpec) -> np.ndarray:
    return np.ndarray(
        (spec.n_users, spec.n_dims),
        dtype=np.int64,
        buffer=buffer,
        offset=spec.offset,
    )


class SharedVectorStore:
    """Owner side: packs communities into one shared-memory block.

    The creating process is responsible for :meth:`close` (which also
    unlinks the block); the engine does this from ``BatchEngine.close``.
    """

    def __init__(self, communities: Sequence[Community]) -> None:
        specs: list[CommunitySpec] = []
        offset = 0
        for community in communities:
            specs.append(
                CommunitySpec(
                    name=community.name,
                    category=community.category,
                    page_id=community.page_id,
                    offset=offset,
                    n_users=community.n_users,
                    n_dims=community.n_dims,
                )
            )
            offset += community.n_users * community.n_dims * _ITEMSIZE
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for community, spec in zip(communities, specs):
            _view(self._shm.buf, spec)[:] = community.vectors
        self.layout = StoreLayout(shm_name=self._shm.name, specs=tuple(specs))
        self._closed = False

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        # Interpreter-teardown safety net: the shm block may already be
        # unlinked and raising from __del__ only prints noise.
        except Exception:  # repro-lint: disable=RL005
            pass


class AttachedVectorStore:
    """Worker side: attaches to the block and serves zero-copy communities."""

    def __init__(self, layout: StoreLayout) -> None:
        self.layout = layout
        self._shm = shared_memory.SharedMemory(name=layout.shm_name)
        self._communities: dict[int, Community] = {}

    def community(self, index: int) -> Community:
        """Rebuild (and memoise) the community at ``index``."""
        community = self._communities.get(index)
        if community is None:
            spec = self.layout.specs[index]
            community = Community(
                name=spec.name,
                vectors=_view(self._shm.buf, spec),
                category=spec.category,
                page_id=spec.page_id,
            )
            self._communities[index] = community
        return community

    def close(self) -> None:
        """Detach from the block (the owner unlinks it)."""
        self._communities.clear()
        self._shm.close()
