"""Crash-safe sweep checkpointing: a JSON-lines log of finished joins.

A long sweep that dies (power loss, OOM kill, Ctrl-C) used to restart
from zero.  :class:`CheckpointLog` makes completion durable: every
computed join appends one line — the content-addressed
:data:`~repro.engine.cache.JoinKey` plus the result payload — flushed
immediately, so the log survives a kill mid-run with at worst one
truncated trailing line (which :meth:`CheckpointLog.load` skips).

On resume the engine pre-warms its :class:`~repro.engine.cache.
JoinResultCache` from the log; finished pairs are then served as
``CACHED`` dispositions and recomputed exactly never.  Keys are content
fingerprints, not object identities, so a resumed run may regenerate
its datasets from scratch and still hit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from ..core.types import CSJResult
from .cache import JoinKey

__all__ = ["CheckpointLog"]

_KIND = "join-checkpoint"


def _encode_value(tagged: tuple) -> list:
    """JSON-encode one ``(type_tag, value)`` canonical-option value."""
    tag, value = tagged
    if tag == "bytes":
        return [tag, value.decode("latin1")]
    return [tag, value]


def _decode_value(encoded: list) -> tuple:
    tag, value = encoded
    if tag == "bytes":
        return (tag, value.encode("latin1"))
    return (tag, value)


def encode_join_key(key: JoinKey) -> list:
    """JSON-ready form of a :data:`JoinKey` (tuples become lists)."""
    fingerprint_b, fingerprint_a, epsilon, method, options = key
    return [
        fingerprint_b,
        fingerprint_a,
        epsilon,
        method,
        [[name, _encode_value(tagged)] for name, tagged in options],
    ]


def decode_join_key(encoded: list) -> JoinKey:
    """Inverse of :func:`encode_join_key`."""
    fingerprint_b, fingerprint_a, epsilon, method, options = encoded
    return (
        str(fingerprint_b),
        str(fingerprint_a),
        int(epsilon),
        str(method),
        tuple((name, _decode_value(tagged)) for name, tagged in options),
    )


class CheckpointLog:
    """Append-only JSON-lines log of completed ``(JoinKey, result)``.

    ``append`` opens the file lazily (append mode, so resuming onto an
    existing log extends it) and flushes every line; ``load`` tolerates
    a truncated final line, the signature of a crash mid-write.  The
    same path can therefore be passed to every run of a sweep: first
    run creates it, a killed run leaves a valid prefix, the resumed run
    loads that prefix and extends it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None

    def load(self) -> dict[JoinKey, dict]:
        """All completed joins recorded so far (last write wins per key)."""
        if not self.path.exists():
            return {}
        entries: dict[JoinKey, dict] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a crash mid-append; the
                    # join it described simply re-runs.
                    continue
                if payload.get("kind") != _KIND:
                    continue
                entries[decode_join_key(payload["key"])] = payload["result"]
        return entries

    def append(self, key: JoinKey, result: CSJResult) -> None:
        """Durably record one completed join (one flushed JSON line)."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
        self._file.write(
            json.dumps(
                {
                    "kind": _KIND,
                    "key": encode_join_key(key),
                    "result": result.to_dict(),
                },
                sort_keys=True,
            )
            + "\n"
        )
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointLog({str(self.path)!r})"
