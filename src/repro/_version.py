"""Single source of the package version (import-cycle free)."""

__version__ = "1.0.0"
