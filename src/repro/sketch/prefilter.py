"""Engine-facing facade of the sketch tier.

A :class:`SketchPrefilter` is what callers hand to
:class:`~repro.engine.BatchEngine` (or to ``epsilon_sweep`` /
``top_k_pairs`` / the runner / the CLI / the serve layer, which all
forward it).  It owns one lazily-built :class:`SketchIndex` plus one
measured :class:`RecallReport` per distinct epsilon seen, bound to the
engine's community collection:

* ``admits(epsilon, i, j)`` — the per-job gate the engine consults
  *before* the envelope screen;
* ``recall(epsilon)`` — the measured candidate-pair recall the engine
  folds into computed results' ``p`` (1.0 in ``coverage`` mode, which
  never drops an envelope-admitted pair).

The default configuration (``target_recall=1.0``) is exact; asking for
``target_recall < 1.0`` switches to lossy ``values``-mode signatures
whose achieved recall is measured on a seeded sample, surfaced in the
``repro_sketch_estimated_recall`` gauge, and multiplied into ``p``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.errors import ConfigurationError
from ..core.types import Community
from .index import SketchIndex
from .recall import RecallEstimator, RecallReport
from .signature import DEFAULT_BAND_ROWS, SketchConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["SketchPrefilter", "init_sketch_metrics"]

#: Every counter of the ``repro_sketch_*`` family, for zero-value
#: initialisation (dashboards shouldn't show gaps before the first
#: approximate query).
SKETCH_COUNTERS = (
    "repro_sketch_signatures_built_total",
    "repro_sketch_indexes_built_total",
    "repro_sketch_bucket_collisions_total",
    "repro_sketch_pairs_checked_total",
    "repro_sketch_pairs_skipped_total",
)


def init_sketch_metrics(metrics: "MetricsRegistry") -> None:
    """Create the ``repro_sketch_*`` family at zero in ``metrics``.

    Counters start at 0 and the recall gauge at 1.0 (no pre-filter ran,
    so nothing has been dropped) under the reserved ``epsilon="none"``
    label value.  Prometheus endpoints call this up front so scrapes
    see the family immediately rather than after the first approximate
    query.
    """
    for name in SKETCH_COUNTERS:
        metrics.inc(name, 0)
    metrics.set_gauge("repro_sketch_estimated_recall", 1.0, epsilon="none")


class SketchPrefilter:
    """Per-epsilon sketch indexes + recall reports over one collection.

    Parameters mirror :meth:`SketchConfig.for_target_recall`;
    ``sample_pairs`` sizes the recall estimator's seeded sample.  The
    pre-filter binds to a community collection on first engine use
    (:meth:`bind`) and rebuilds its tiers if bound to a different
    collection, so one CLI/server configuration object can serve
    successive engines.
    """

    def __init__(
        self,
        *,
        target_recall: float = 1.0,
        seed: int = 7,
        n_bands: int | None = None,
        band_rows: int = DEFAULT_BAND_ROWS,
        sample_pairs: int = 24,
    ) -> None:
        if not 0.0 < target_recall <= 1.0:
            raise ConfigurationError(
                f"target_recall must be in (0, 1], got {target_recall}"
            )
        self.target_recall = float(target_recall)
        self.seed = int(seed)
        self.n_bands = n_bands
        self.band_rows = int(band_rows)
        self.sample_pairs = int(sample_pairs)
        self.metrics: "MetricsRegistry | None" = None
        self._communities: list[Community] | None = None
        self._indexes: dict[int, SketchIndex] = {}
        self._reports: dict[int, RecallReport | None] = {}

    @property
    def is_exact(self) -> bool:
        """True when this pre-filter can never drop a true candidate."""
        return self.target_recall >= 1.0

    # -- binding -------------------------------------------------------
    def bind(
        self,
        communities: Sequence[Community],
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        """Attach to an engine's community collection (idempotent).

        Rebinding to a *different* collection drops the per-epsilon
        tiers (signatures describe specific matrices); rebinding to the
        same list object keeps them warm across ``run`` calls.
        """
        if metrics is not None:
            self.metrics = metrics
        incoming = list(communities)
        if self._communities is not None and len(incoming) == len(
            self._communities
        ) and all(
            mine is theirs for mine, theirs in zip(self._communities, incoming)
        ):
            return
        self._communities = incoming
        self._indexes.clear()
        self._reports.clear()

    def _config(self, epsilon: int) -> SketchConfig:
        assert self._communities is not None
        n_dims = self._communities[0].n_dims if self._communities else 1
        return SketchConfig.for_target_recall(
            epsilon,
            target_recall=self.target_recall,
            n_dims=n_dims,
            seed=self.seed,
            band_rows=self.band_rows,
            n_bands=self.n_bands,
        )

    def index(self, epsilon: int) -> SketchIndex:
        """The (lazily built) index for one epsilon."""
        if self._communities is None:
            raise ConfigurationError(
                "SketchPrefilter.bind must run before the first query"
            )
        index = self._indexes.get(epsilon)
        if index is None:
            index = SketchIndex(
                self._communities, self._config(epsilon), metrics=self.metrics
            )
            self._indexes[epsilon] = index
            if self.metrics is not None:
                self.metrics.inc("repro_sketch_indexes_built_total")
        return index

    # -- queries -------------------------------------------------------
    def admits(self, epsilon: int, first: int, second: int) -> bool:
        """Whether the pair survives the sketch gate at this epsilon."""
        return self.index(epsilon).admits(first, second)

    def candidate_pairs(self, epsilon: int) -> set[tuple[int, int]]:
        """All unordered pairs the sketch admits at this epsilon."""
        return self.index(epsilon).candidate_pairs()

    def recall(self, epsilon: int) -> float:
        """Measured recall at this epsilon (memoised; 1.0 when exact)."""
        return self.report(epsilon).recall if not self.is_exact else 1.0

    def report(self, epsilon: int) -> RecallReport:
        """The full recall report (runs the estimator on first call)."""
        report = self._reports.get(epsilon)
        if report is None:
            index = self.index(epsilon)
            assert self._communities is not None
            if self.is_exact:
                report = RecallReport(
                    epsilon=epsilon,
                    sampled_pairs=0,
                    true_pairs=0,
                    admitted_true=0,
                    false_positives=0,
                    recall=1.0,
                )
            else:
                estimator = RecallEstimator(
                    self._communities,
                    seed=self.seed,
                    sample_pairs=self.sample_pairs,
                )
                report = estimator.measure(index)
            self._reports[epsilon] = report
            if self.metrics is not None:
                self.metrics.set_gauge(
                    "repro_sketch_estimated_recall",
                    report.recall,
                    epsilon=str(epsilon),
                )
        return report

    def stats(self) -> dict[str, object]:
        """Per-epsilon tier stats for engine reports and logs."""
        return {
            "target_recall": self.target_recall,
            "exact": self.is_exact,
            "tiers": {
                str(epsilon): {
                    **index.stats(),
                    "measured_recall": (
                        self._reports[epsilon].recall
                        if self._reports.get(epsilon) is not None
                        else None
                    ),
                }
                for epsilon, index in sorted(self._indexes.items())
            },
        }
