"""In-memory sketch index: sublinear candidate generation over communities.

The index answers "which community pairs *might* have non-zero CSJ
similarity at this epsilon" from band-bucket collisions instead of
testing all ``O(C^2)`` envelope pairs one by one:

* :meth:`SketchIndex.admits` — pair-level membership test against the
  two stored signatures (what the engine's pre-filter gate calls);
* :meth:`SketchIndex.candidate_pairs` — enumerate every admitted pair.
  ``coverage`` mode runs an interval sweep over one seed cell and
  verifies survivors against the remaining cells; ``values`` mode
  seeds from the most selective dimension's posting lists.  Both are
  output-sensitive: wall time scales with collisions found, not with
  the full pair square.

Metrics (all under the ``repro_sketch_*`` family, emitted when a
registry is attached): signatures built, bucket collisions inspected,
pairs checked and pairs skipped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.errors import ConfigurationError
from ..core.types import Community
from .signature import CommunitySignature, SketchConfig, build_signature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["SketchIndex"]


class SketchIndex:
    """Banded-signature index over a fixed community collection.

    Signatures are built eagerly at construction (one pass over each
    community's matrix); every later membership test touches only the
    compact signatures.  The index is immutable once built and safe to
    share across engines with the same community list.
    """

    def __init__(
        self,
        communities: Sequence[Community],
        config: SketchConfig,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config
        self.metrics = metrics
        self.signatures: list[CommunitySignature] = [
            build_signature(community, config) for community in communities
        ]
        self.pairs_checked = 0
        self.pairs_skipped = 0
        self.collisions = 0
        if metrics is not None:
            metrics.inc(
                "repro_sketch_signatures_built_total", len(self.signatures)
            )

    @property
    def n_communities(self) -> int:
        return len(self.signatures)

    # -- pair-level test ----------------------------------------------
    def collides(self, first: int, second: int) -> bool:
        """Uncounted collision test (what the recall estimator probes).

        ``coverage`` mode requires intersecting bucket intervals in
        every ``(band, dimension)`` cell; ``values`` mode requires a
        shared bucket in some band for every dimension.
        """
        sig_a = self.signatures[first]
        sig_b = self.signatures[second]
        if sig_a.n_dims != sig_b.n_dims:
            raise ConfigurationError(
                "sketch signatures disagree on dimensionality "
                f"({sig_a.n_dims} vs {sig_b.n_dims})"
            )
        return self._collide(sig_a, sig_b)

    def admits(self, first: int, second: int) -> bool:
        """Counted pair test: :meth:`collides` plus metric bookkeeping."""
        admitted = self.collides(first, second)
        self.pairs_checked += 1
        if admitted:
            self.collisions += 1
        else:
            self.pairs_skipped += 1
        if self.metrics is not None:
            self.metrics.inc("repro_sketch_pairs_checked_total")
            if admitted:
                self.metrics.inc("repro_sketch_bucket_collisions_total")
            else:
                self.metrics.inc("repro_sketch_pairs_skipped_total")
        return admitted

    def _collide(
        self, sig_a: CommunitySignature, sig_b: CommunitySignature
    ) -> bool:
        if self.config.mode == "coverage":
            assert sig_a.interval_lo is not None and sig_b.interval_lo is not None
            assert sig_a.interval_hi is not None and sig_b.interval_hi is not None
            overlap = (sig_a.interval_lo <= sig_b.interval_hi) & (
                sig_b.interval_lo <= sig_a.interval_hi
            )
            return bool(overlap.all())
        assert sig_a.cells is not None and sig_b.cells is not None
        n_bands = self.config.n_bands
        for dim in range(sig_a.n_dims):
            if not any(
                not sig_a.cells[band][dim].isdisjoint(sig_b.cells[band][dim])
                for band in range(n_bands)
            ):
                return False
        return True

    # -- bulk enumeration ---------------------------------------------
    def candidate_pairs(self) -> set[tuple[int, int]]:
        """Every admitted unordered pair, as ``(i, j)`` with ``i < j``.

        Seeds candidates from one cell (interval sweep in ``coverage``
        mode, posting lists of the most selective dimension in
        ``values`` mode) and verifies each seed against the full
        signature, so generation cost tracks collisions, not ``C^2``.
        """
        if self.config.mode == "coverage":
            seeds = self._coverage_seeds()
        else:
            seeds = self._values_seeds()
        out: set[tuple[int, int]] = set()
        for first, second in seeds:
            if self._collide(self.signatures[first], self.signatures[second]):
                out.add((first, second))
        self.pairs_checked += len(seeds)
        self.collisions += len(out)
        self.pairs_skipped += len(seeds) - len(out)
        if self.metrics is not None:
            self.metrics.inc("repro_sketch_pairs_checked_total", len(seeds))
            self.metrics.inc("repro_sketch_bucket_collisions_total", len(out))
            self.metrics.inc(
                "repro_sketch_pairs_skipped_total", len(seeds) - len(out)
            )
        return out

    def _coverage_seeds(self) -> set[tuple[int, int]]:
        """Interval sweep on cell (band 0, dim 0): pairs overlapping there."""
        spans = [
            (int(sig.interval_lo[0, 0]), int(sig.interval_hi[0, 0]), index)
            for index, sig in enumerate(self.signatures)
            if sig.interval_lo is not None and sig.interval_hi is not None
        ]
        spans.sort()
        seeds: set[tuple[int, int]] = set()
        active: list[tuple[int, int]] = []  # (hi, index) still open
        for lo, hi, index in spans:
            active = [(a_hi, a_idx) for a_hi, a_idx in active if a_hi >= lo]
            for _, a_idx in active:
                seeds.add((min(a_idx, index), max(a_idx, index)))
            active.append((hi, index))
        return seeds

    def _values_seeds(self) -> set[tuple[int, int]]:
        """Posting-list seeds from the most selective dimension.

        For the chosen dimension a pair must share a bucket in some
        band, so the union of per-bucket pair lists over that
        dimension's bands is a superset of all admitted pairs.
        """
        if not self.signatures:
            return set()
        n_dims = self.signatures[0].n_dims
        n_bands = self.config.n_bands
        postings: list[dict[tuple[int, int], list[int]]] = []
        mass: list[int] = []
        for dim in range(n_dims):
            lists: dict[tuple[int, int], list[int]] = {}
            for index, sig in enumerate(self.signatures):
                assert sig.cells is not None
                for band in range(n_bands):
                    for bucket in sig.cells[band][dim]:
                        lists.setdefault((band, bucket), []).append(index)
            postings.append(lists)
            mass.append(
                sum(len(members) * (len(members) - 1) // 2 for members in lists.values())
            )
        dim = mass.index(min(mass))
        seeds: set[tuple[int, int]] = set()
        for members in postings[dim].values():
            for position, first in enumerate(members):
                for second in members[position + 1 :]:
                    seeds.add((min(first, second), max(first, second)))
        return seeds

    def stats(self) -> dict[str, object]:
        """Counters for reports and the engine's ``stats()`` payload."""
        return {
            "mode": self.config.mode,
            "epsilon": self.config.epsilon,
            "n_bands": self.config.n_bands,
            "band_rows": self.config.band_rows,
            "signatures": self.n_communities,
            "pairs_checked": self.pairs_checked,
            "pairs_skipped": self.pairs_skipped,
            "collisions": self.collisions,
        }
