"""Honest recall accounting for the sketch pre-filter tier.

An approximate candidate generator is only usable if its error is
*measured*, not assumed: analytic recall bounds ignore bottom-k
truncation and data skew, both of which move the achieved recall.  The
:class:`RecallEstimator` samples community pairs with a seeded
generator, computes the ground-truth candidate verdict by brute force
(:func:`repro.testing.brute_force_candidate_pairs` — a pair is a true
candidate when at least one user pair matches at epsilon), and reports
the fraction of true candidates the sketch admits.

That measured recall is what the engine folds into the paper's ``p``
factor: a sketch-prefiltered run reports ``similarity = p_measured *
|M| / |B|``, so downstream consumers see results that carry their own
error bar instead of silently optimistic numbers.  ``coverage``-mode
sketches are supersets of the envelope screen by construction, so
their recall is exactly 1.0 and no sampling runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.types import Community
from ..testing import brute_force_candidate_pairs
from .index import SketchIndex

__all__ = ["RecallReport", "RecallEstimator"]

#: Communities larger than this get a seeded row subsample for the
#: brute-force ground truth (the estimate stays seeded-deterministic).
DEFAULT_USER_CAP = 256


@dataclass(frozen=True)
class RecallReport:
    """Measured pre-filter quality on one seeded sample."""

    epsilon: int
    sampled_pairs: int
    true_pairs: int
    admitted_true: int
    false_positives: int
    recall: float

    def as_dict(self) -> dict[str, object]:
        return {
            "epsilon": self.epsilon,
            "sampled_pairs": self.sampled_pairs,
            "true_pairs": self.true_pairs,
            "admitted_true": self.admitted_true,
            "false_positives": self.false_positives,
            "recall": self.recall,
        }


class RecallEstimator:
    """Seeded sampler measuring achieved candidate-pair recall.

    ``sample_pairs`` community pairs are drawn without replacement from
    all unordered pairs; per pair the ground truth is the brute-force
    epsilon join (non-empty candidate set = true candidate) on at most
    ``user_cap`` seeded-sampled rows per community.  Everything is
    driven by ``seed``, so repeated measurements are bit-identical.
    """

    def __init__(
        self,
        communities: Sequence[Community],
        *,
        seed: int = 7,
        sample_pairs: int = 24,
        user_cap: int = DEFAULT_USER_CAP,
    ) -> None:
        self.communities = list(communities)
        self.seed = int(seed)
        self.sample_pairs = int(sample_pairs)
        self.user_cap = int(user_cap)

    def _sampled_vectors(
        self, community: Community, rng: np.random.Generator
    ) -> np.ndarray:
        vectors = community.vectors
        if len(vectors) <= self.user_cap:
            return vectors
        rows = rng.choice(len(vectors), size=self.user_cap, replace=False)
        return vectors[np.sort(rows)]

    def measure(self, index: SketchIndex) -> RecallReport:
        """Measured recall of ``index`` over this estimator's sample."""
        epsilon = index.config.epsilon
        n = len(self.communities)
        all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng = np.random.default_rng(self.seed)
        if len(all_pairs) > self.sample_pairs:
            chosen = rng.choice(
                len(all_pairs), size=self.sample_pairs, replace=False
            )
            sample = [all_pairs[position] for position in np.sort(chosen)]
        else:
            sample = all_pairs
        true_pairs = 0
        admitted_true = 0
        false_positives = 0
        for first, second in sample:
            vectors_b = self._sampled_vectors(self.communities[first], rng)
            vectors_a = self._sampled_vectors(self.communities[second], rng)
            truth = bool(
                brute_force_candidate_pairs(vectors_b, vectors_a, epsilon)
            )
            admitted = index.collides(first, second)
            if truth:
                true_pairs += 1
                if admitted:
                    admitted_true += 1
            elif admitted:
                false_positives += 1
        recall = admitted_true / true_pairs if true_pairs else 1.0
        return RecallReport(
            epsilon=epsilon,
            sampled_pairs=len(sample),
            true_pairs=true_pairs,
            admitted_true=admitted_true,
            false_positives=false_positives,
            recall=recall,
        )
