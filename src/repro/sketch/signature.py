"""Seeded, deterministic community signatures over epsilon-bucketed values.

The CSJ join condition is per-dimension: a user pair matches only when
every dimension differs by at most epsilon.  CPSJoin-style banded
sketching adapts cleanly to that condition once values are quantised
into buckets of width ``2 * epsilon + 1``: two values within epsilon of
each other land in the same bucket or in adjacent buckets, and a
*shifted* grid (a per-band random offset in ``[0, w)``) puts them in
the **same** bucket with probability at least ``(epsilon + 1) /
(2 * epsilon + 1) > 1/2``.  Repeating the grid over ``n_bands``
independently-offset bands drives the per-dimension miss probability
towards ``2^-n_bands``.

Two signature modes cover the exact/approximate split:

``coverage``
    The signature of a community is, per band and dimension, the
    *bucket interval* spanned by its envelope (min..max) plus one
    neighbouring bucket at the max end.  Soundness: if two communities'
    envelopes are **not** separated by more than epsilon in a
    dimension, their closest per-dimension values differ by at most
    epsilon < w, so their bucket intervals are equal-or-adjacent and
    the extended intervals intersect — in *every* band, for *any*
    offset.  Candidates are pairs whose intervals intersect in all
    ``(band, dimension)`` cells, which is therefore a deterministic
    superset of the envelope screen's admits: recall is exactly 1.0.

``values``
    The signature keeps, per band and dimension, the set of buckets
    actually occupied by the community's users, truncated bottom-k
    style (the ``band_rows`` buckets with the smallest mixed hashes —
    a min-hash over occupied buckets).  Candidates must collide in
    *some* band for *every* dimension.  Recall is below 1.0 and must
    be measured (:mod:`repro.sketch.recall`), never assumed.

All hashing is :func:`mix64` (a splitmix64 finaliser) over plain
integers — never Python's per-process salted ``hash`` — so signatures
are bit-identical across runs, processes and machines for a fixed
``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from ..core.types import Community

__all__ = [
    "SketchConfig",
    "CommunitySignature",
    "build_signature",
    "mix64",
    "band_offset",
]

_MASK64 = (1 << 64) - 1

#: Default bottom-k truncation width of ``values``-mode cells.
DEFAULT_BAND_ROWS = 32

#: Bands used by ``coverage`` mode.  Every coverage band is individually
#: a superset of the envelope admits, so requiring *all* bands keeps
#: recall at exactly 1.0 while the shifted offsets prune borderline
#: false positives.
COVERAGE_BANDS = 4


def mix64(value: int) -> int:
    """splitmix64 finaliser: a high-quality, deterministic 64-bit mix."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def _chain(*parts: int) -> int:
    """Mix several integers into one 64-bit value, order-sensitively."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = mix64(acc ^ (part & _MASK64))
    return acc


def band_offset(seed: int, band: int, width: int) -> int:
    """The band's deterministic grid shift in ``[0, width)``."""
    return _chain(seed, 0x0FF5E7, band) % width


@dataclass(frozen=True)
class SketchConfig:
    """Parameters of one sketch tier (fixed epsilon, fixed seed).

    ``mode`` selects the signature family: ``"coverage"`` (recall
    exactly 1.0, a strict superset of the envelope screen) or
    ``"values"`` (tunable sublinear filtering with measured recall).
    """

    epsilon: int
    mode: str = "coverage"
    n_bands: int = COVERAGE_BANDS
    band_rows: int = DEFAULT_BAND_ROWS
    seed: int = 7

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.mode not in ("coverage", "values"):
            raise ConfigurationError(
                f"mode must be 'coverage' or 'values', got {self.mode!r}"
            )
        if self.n_bands < 1:
            raise ConfigurationError(f"n_bands must be >= 1, got {self.n_bands}")
        if self.band_rows < 1:
            raise ConfigurationError(
                f"band_rows must be >= 1, got {self.band_rows}"
            )

    @property
    def bucket_width(self) -> int:
        """Grid pitch: values within epsilon span at most two buckets."""
        return 2 * self.epsilon + 1

    @property
    def is_exact(self) -> bool:
        """True when this configuration can never drop a true candidate."""
        return self.mode == "coverage"

    @classmethod
    def for_target_recall(
        cls,
        epsilon: int,
        *,
        target_recall: float = 0.95,
        n_dims: int = 8,
        seed: int = 7,
        band_rows: int = DEFAULT_BAND_ROWS,
        n_bands: int | None = None,
    ) -> "SketchConfig":
        """Size a configuration for a requested candidate-pair recall.

        ``target_recall >= 1.0`` selects ``coverage`` mode (exact by
        construction).  Below 1.0, the band count is solved from the
        per-band same-bucket probability ``(epsilon + 1) / (2 * epsilon
        + 1)`` so that the *analytic* recall ``(1 - miss^bands)^dims``
        reaches the target; the achieved recall still gets measured at
        run time (truncation and data skew both move it) and folded
        into the reported ``p``.
        """
        if not 0.0 < target_recall:
            raise ConfigurationError(
                f"target_recall must be positive, got {target_recall}"
            )
        if target_recall >= 1.0:
            return cls(
                epsilon=epsilon,
                mode="coverage",
                n_bands=COVERAGE_BANDS if n_bands is None else n_bands,
                band_rows=band_rows,
                seed=seed,
            )
        if n_bands is None:
            width = 2 * epsilon + 1
            miss = epsilon / width  # 1 - (epsilon + 1) / width
            if miss <= 0.0:
                bands = 1  # epsilon 0: equal values share a bucket always
            else:
                per_dim = target_recall ** (1.0 / max(1, n_dims))
                bands = max(1, math.ceil(math.log(1.0 - per_dim) / math.log(miss)))
            n_bands = min(bands, 16)
        return cls(
            epsilon=epsilon,
            mode="values",
            n_bands=n_bands,
            band_rows=band_rows,
            seed=seed,
        )


@dataclass(frozen=True)
class CommunitySignature:
    """One community's banded signature under a fixed config.

    ``coverage`` mode fills ``interval_lo`` / ``interval_hi`` with the
    (inclusive) extended bucket intervals, shaped ``(n_bands, d)``.
    ``values`` mode fills ``cells`` with one frozenset of surviving
    bucket ids per ``(band, dimension)`` cell.
    """

    n_users: int
    n_dims: int
    interval_lo: np.ndarray | None = None
    interval_hi: np.ndarray | None = None
    cells: tuple[tuple[frozenset[int], ...], ...] | None = None


def build_signature(
    community: Community, config: SketchConfig
) -> CommunitySignature:
    """Summarise one community's profile matrix into a signature."""
    vectors = community.vectors
    n_users, n_dims = vectors.shape
    width = config.bucket_width
    offsets = np.array(
        [band_offset(config.seed, band, width) for band in range(config.n_bands)],
        dtype=np.int64,
    )
    if config.mode == "coverage":
        mins = vectors.min(axis=0).astype(np.int64, copy=False)
        maxs = vectors.max(axis=0).astype(np.int64, copy=False)
        # (n_bands, d): per-band shifted grids over the envelope interval,
        # extended by one bucket at the max end (adjacency slack).
        lo = (mins[None, :] + offsets[:, None]) // width
        hi = (maxs[None, :] + offsets[:, None]) // width + 1
        return CommunitySignature(
            n_users=n_users, n_dims=n_dims, interval_lo=lo, interval_hi=hi
        )
    # One broadcast quantises every (band, user, dim) at once; the
    # per-cell work below is pure set construction over small lists.
    bucketed = (
        vectors[None, :, :].astype(np.int64, copy=False)
        + offsets[:, None, None]
    ) // width
    cells: list[tuple[frozenset[int], ...]] = []
    for band in range(config.n_bands):
        per_dim = bucketed[band].T.tolist()
        row: list[frozenset[int]] = []
        for dim in range(n_dims):
            occupied: frozenset[int] | set[int] = set(per_dim[dim])
            if len(occupied) > config.band_rows:
                # Bottom-k min-hash truncation: keep the band_rows
                # buckets with the smallest mixed hashes so both sides
                # of a comparison discard buckets consistently.
                occupied = frozenset(
                    sorted(
                        occupied,
                        key=lambda bucket: _chain(config.seed, band, dim, bucket),
                    )[: config.band_rows]
                )
            row.append(frozenset(occupied))
        cells.append(tuple(row))
    return CommunitySignature(
        n_users=n_users, n_dims=n_dims, cells=tuple(cells)
    )
