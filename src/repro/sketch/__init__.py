"""Sketch-based approximate pre-filter tier.

Sublinear candidate generation for catalog-scale CSJ workloads:
communities are summarised into seeded, deterministic banded
signatures over epsilon-bucketed values (CPSJoin-style), an in-memory
:class:`SketchIndex` answers "which pairs might have non-zero
similarity" from band-bucket collisions instead of ``O(C^2)`` envelope
tests, and a :class:`RecallEstimator` measures the achieved pair
recall so the engine can fold it into the reported ``p`` — approximate
results carry their own error bar.

:class:`SketchPrefilter` is the engine-facing entry point; see
``docs/approx.md`` for when results stop being exact.
"""

from .index import SketchIndex
from .prefilter import SketchPrefilter, init_sketch_metrics
from .recall import RecallEstimator, RecallReport
from .signature import CommunitySignature, SketchConfig, build_signature

__all__ = [
    "SketchConfig",
    "CommunitySignature",
    "build_signature",
    "SketchIndex",
    "RecallEstimator",
    "RecallReport",
    "SketchPrefilter",
    "init_sketch_metrics",
]
