"""Command-line interface: regenerate any table of the paper.

Examples::

    repro-csj table1 --users 20000
    repro-csj table2
    repro-csj table4 --scale 0.01 --seed 7
    repro-csj table11 --scale 0.005 --categories Sport Medicine
    repro-csj couple --cid 13 --dataset vk --method ex-minmax

(Equivalently ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys

from ._version import __version__
from .algorithms import ALGORITHMS
from .analysis.runner import (
    METHOD_TABLES,
    run_couple,
    run_method_table,
    run_scalability,
    run_table1,
    make_generator,
    epsilon_for_dataset,
)
from .analysis.tables import (
    render_method_table,
    render_method_table_with_reference,
    render_scalability_table,
    render_table1,
    render_table2,
)
from .datasets.couples import DEFAULT_SCALE, PAPER_COUPLES
from .datasets.categories import CATEGORIES

__all__ = ["main", "build_parser"]


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Batch-engine knobs shared by the batch subcommands."""
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes for the batch engine (1 = in-process)",
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=0,
        metavar="ENTRIES",
        help="join-result cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-join deadline; enables supervised (fault-tolerant) execution",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed join before quarantine (enables supervision)",
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="PATH",
        help=(
            "JSON-lines checkpoint log: completed joins are loaded from it "
            "and new ones appended, so a killed run resumes for free"
        ),
    )
    parser.add_argument(
        "--prefilter",
        choices=("none", "sketch"),
        default="none",
        help=(
            "candidate pre-filter tier ahead of the envelope screen; "
            "'sketch' gates pairs through banded signatures (see "
            "docs/approx.md)"
        ),
    )
    parser.add_argument(
        "--target-recall",
        type=float,
        default=1.0,
        metavar="R",
        help=(
            "sketch pre-filter candidate-pair recall target in (0, 1]; "
            "1.0 (default) is exact, below 1.0 the measured recall is "
            "folded into the reported p"
        ),
    )


def _engine_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {
        "n_jobs": args.n_jobs,
        "cache": args.cache if args.cache > 0 else None,
    }
    if args.timeout is not None or args.retries is not None:
        from .engine import FaultPolicy

        kwargs["fault_policy"] = FaultPolicy(
            timeout=args.timeout,
            retries=args.retries if args.retries is not None else 2,
        )
    if args.resume_from is not None:
        kwargs["checkpoint"] = args.resume_from
    if getattr(args, "prefilter", "none") == "sketch":
        from .sketch import SketchPrefilter

        kwargs["prefilter"] = SketchPrefilter(
            target_recall=args.target_recall, seed=getattr(args, "seed", 7)
        )
    return kwargs


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability knobs shared by the batch subcommands."""
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-join telemetry and print the run summary",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write the JSON-lines telemetry log here (implies --telemetry)",
    )


def _telemetry_registry(args: argparse.Namespace):
    """A fresh registry when telemetry was requested, else ``None``."""
    if getattr(args, "telemetry", False) or getattr(args, "telemetry_out", None):
        from .obs import MetricsRegistry

        return MetricsRegistry()
    return None


def _emit_telemetry(args, records, metrics, **header: object) -> None:
    """Write the run log and/or print the summary (no-op when disabled)."""
    if metrics is None:
        return
    from .obs import summarize_records, write_jsonl

    header = {"command": args.command, **header}
    if args.telemetry_out:
        summary = write_jsonl(
            args.telemetry_out, records, header=header, snapshot=metrics.snapshot()
        )
        print(f"telemetry log written to {args.telemetry_out}")
    else:
        summary = summarize_records(records)
    print("-- telemetry --")
    print(summary.render())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-csj",
        description=(
            "Reproduce the tables of 'Community Similarity based on User "
            "Profile Joins' (EDBT 2024)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="category rankings (Table 1)")
    table1.add_argument("--users", type=int, default=20_000)
    table1.add_argument("--seed", type=int, default=7)

    subparsers.add_parser("table2", help="the compared couples (Table 2)")

    for table in METHOD_TABLES:
        sub = subparsers.add_parser(
            f"table{table}", help=f"method comparison (Table {table})"
        )
        sub.add_argument("--scale", type=float, default=DEFAULT_SCALE)
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--engine", choices=("python", "numpy"), default="numpy")
        sub.add_argument(
            "--reference",
            action="store_true",
            help="print paper-vs-measured instead of the runtime layout",
        )
        _add_engine_arguments(sub)
        _add_telemetry_arguments(sub)

    table11 = subparsers.add_parser("table11", help="scalability (Table 11)")
    table11.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    table11.add_argument("--seed", type=int, default=7)
    table11.add_argument("--method", choices=tuple(ALGORITHMS), default="ex-minmax")
    table11.add_argument(
        "--categories", nargs="*", choices=CATEGORIES, default=None
    )
    table11.add_argument("--steps", type=int, nargs="*", default=[1, 2, 3, 4])

    sweep = subparsers.add_parser(
        "sweep", help="epsilon selectivity curve on one couple"
    )
    sweep.add_argument("--cid", type=int, default=1, choices=range(1, 21))
    sweep.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    sweep.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument(
        "--epsilons", type=int, nargs="+", default=[0, 1, 2, 4, 8, 16]
    )
    sweep.add_argument("--method", choices=tuple(ALGORITHMS), default="ex-minmax")
    _add_engine_arguments(sweep)
    _add_telemetry_arguments(sweep)

    topk = subparsers.add_parser(
        "topk", help="rank the most similar community pairs (batch engine)"
    )
    topk.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    topk.add_argument("--scale", type=float, default=DEFAULT_SCALE / 4)
    topk.add_argument("--seed", type=int, default=7)
    topk.add_argument("--k", type=int, default=5)
    topk.add_argument(
        "--couples",
        type=int,
        default=10,
        choices=range(1, 21),
        help="how many paper couples feed the community fleet (2 each)",
    )
    topk.add_argument(
        "--epsilon", type=int, default=None, help="defaults to the dataset's epsilon"
    )
    topk.add_argument(
        "--no-screen",
        action="store_true",
        help="disable the envelope pre-screen",
    )
    _add_engine_arguments(topk)
    _add_telemetry_arguments(topk)

    stats = subparsers.add_parser(
        "stats", help="summarize a JSON-lines telemetry log"
    )
    stats.add_argument("log", help="path to a --telemetry-out run log")
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="also dump the stored metrics snapshot in Prometheus text format",
    )

    events = subparsers.add_parser(
        "events", help="pruning-event breakdown on one couple (python engines)"
    )
    events.add_argument("--cid", type=int, default=1, choices=range(1, 21))
    events.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    events.add_argument("--scale", type=float, default=DEFAULT_SCALE / 8)
    events.add_argument("--seed", type=int, default=7)

    experiments = subparsers.add_parser(
        "experiments", help="run everything and write EXPERIMENTS.md"
    )
    experiments.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    experiments.add_argument("--seed", type=int, default=7)
    experiments.add_argument("--users", type=int, default=20_000)
    experiments.add_argument("--output", default="EXPERIMENTS.md")

    run_config = subparsers.add_parser(
        "run-config", help="run a declarative experiment from a JSON config"
    )
    run_config.add_argument("config", help="path to the JSON experiment config")
    run_config.add_argument(
        "--save", default=None, help="also save the results to this JSON path"
    )

    manifest = subparsers.add_parser(
        "manifest", help="build or verify a dataset fingerprint manifest"
    )
    manifest.add_argument("action", choices=("build", "verify"))
    manifest.add_argument("path", help="manifest JSON path")
    manifest.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    manifest.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    manifest.add_argument("--seed", type=int, default=7)
    manifest.add_argument("--couples", type=int, nargs="*", default=None)

    doctor = subparsers.add_parser(
        "doctor", help="run the cross-method invariant self-check"
    )
    doctor.add_argument("--cid", type=int, default=1, choices=range(1, 21))
    doctor.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    doctor.add_argument("--scale", type=float, default=DEFAULT_SCALE / 8)
    doctor.add_argument("--seed", type=int, default=7)

    couple = subparsers.add_parser("couple", help="join one couple by cID")
    couple.add_argument("--cid", type=int, required=True, choices=range(1, 21))
    couple.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    couple.add_argument("--method", choices=tuple(ALGORITHMS), default="ex-minmax")
    couple.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    couple.add_argument("--seed", type=int, default=7)
    couple.add_argument("--engine", choices=("python", "numpy"), default="numpy")

    serve = subparsers.add_parser(
        "serve", help="run the asyncio CSJ similarity service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7411, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admitted-but-unfinished request bound (excess is shed)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="sustained requests/second (token bucket); unlimited when omitted",
    )
    serve.add_argument(
        "--burst", type=int, default=16, help="token-bucket burst capacity"
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="implicit deadline for requests that carry none",
    )
    serve.add_argument(
        "--threads", type=int, default=4, help="executor threads for join work"
    )
    serve.add_argument(
        "--cache",
        type=int,
        default=1024,
        metavar="ENTRIES",
        help="shared join-result cache capacity (0 disables)",
    )
    serve.add_argument(
        "--preload",
        type=int,
        default=0,
        metavar="COUPLES",
        choices=range(0, 21),
        help="register this many paper couples (2 communities each) at startup",
    )
    serve.add_argument(
        "--delta",
        action="store_true",
        help="maintain per-couple delta joins for the update endpoint "
        "(falls back to full recompute per update when off)",
    )
    serve.add_argument(
        "--delta-couples",
        type=int,
        default=64,
        metavar="COUPLES",
        help="LRU bound on concurrently maintained couples",
    )
    serve.add_argument("--dataset", choices=("vk", "synthetic"), default="vk")
    serve.add_argument("--scale", type=float, default=DEFAULT_SCALE / 4)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--catalog",
        default=None,
        metavar="DB",
        help=(
            "back the store with a persistent catalog database; communities "
            "fault in lazily on first request (see docs/catalog.md)"
        ),
    )

    catalog = subparsers.add_parser(
        "catalog", help="manage a persistent community catalog database"
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    cat_import = catalog_sub.add_parser(
        "import", help="import a directory-based community catalog"
    )
    cat_import.add_argument("db", help="catalog database path (created if missing)")
    cat_import.add_argument("directory", help="CommunityCatalog root to import")

    cat_export = catalog_sub.add_parser(
        "export", help="export communities to a directory-based catalog"
    )
    cat_export.add_argument("db", help="catalog database path")
    cat_export.add_argument("directory", help="destination CommunityCatalog root")
    cat_export.add_argument(
        "--keys", nargs="*", default=None, help="export only these keys"
    )

    cat_ls = catalog_sub.add_parser("ls", help="list catalogued communities")
    cat_ls.add_argument("db", help="catalog database path")

    cat_query = catalog_sub.add_parser(
        "query", help="indexed candidate-window query around one community"
    )
    cat_query.add_argument("db", help="catalog database path")
    cat_query.add_argument("key", help="probe community key")
    cat_query.add_argument(
        "--epsilon", type=int, default=1, help="per-dimension join threshold"
    )

    shard = subparsers.add_parser(
        "shard",
        help="shard a catalog and run distributed queries (docs/sharding.md)",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_partition = shard_sub.add_parser(
        "partition", help="split a catalog into per-shard catalogs"
    )
    shard_partition.add_argument("db", help="source catalog database path")
    shard_partition.add_argument(
        "out_dir", help="partition directory (plan.json + shard_NNN.db)"
    )
    shard_partition.add_argument(
        "--shards", type=int, default=4, help="number of shards"
    )
    shard_partition.add_argument(
        "--epsilon",
        type=int,
        default=1,
        help="plan epsilon: candidate pairs at or below it stay co-located",
    )
    shard_partition.add_argument(
        "--hot-fraction",
        type=float,
        default=1.0,
        help="components costing more than this fraction of the per-shard "
        "budget are split pair-wise with replicated endpoints",
    )
    shard_partition.add_argument(
        "--no-replicate",
        action="store_true",
        help="plain LPT bin-packing, never split a hot component",
    )
    shard_partition.add_argument(
        "--sample-pairs",
        type=int,
        default=0,
        metavar="N",
        help="calibrate the cost model by timing N sampled candidate joins",
    )
    shard_partition.add_argument("--seed", type=int, default=7)

    shard_serve = shard_sub.add_parser(
        "serve", help="serve every shard of a partition directory"
    )
    shard_serve.add_argument("plan_dir", help="partition directory")

    shard_topk = shard_sub.add_parser(
        "topk", help="distributed all-pairs top-k across the shards"
    )
    shard_topk.add_argument("plan_dir", help="partition directory")
    shard_topk.add_argument(
        "--epsilon", type=int, default=1, help="per-dimension join threshold"
    )
    shard_topk.add_argument("--k", type=int, default=10)
    shard_topk.add_argument(
        "--screen-method", choices=tuple(ALGORITHMS), default="ap-minmax"
    )
    shard_topk.add_argument(
        "--refine-method", choices=tuple(ALGORITHMS), default="ex-minmax"
    )
    shard_topk.add_argument("--screen-margin", type=float, default=0.8)
    shard_topk.add_argument(
        "--addresses",
        nargs="+",
        default=None,
        metavar="HOST:PORT",
        help="running shard servers, one per shard in plan order "
        "(default: self-host an in-process fleet)",
    )
    shard_topk.add_argument(
        "--allow-partial",
        action="store_true",
        help="return a degraded ranking instead of failing when shards are down",
    )

    shard_sweep = shard_sub.add_parser(
        "sweep", help="distributed epsilon sweep over selected couples"
    )
    shard_sweep.add_argument("plan_dir", help="partition directory")
    shard_sweep.add_argument(
        "--pair",
        nargs=2,
        action="append",
        required=True,
        metavar=("FIRST", "SECOND"),
        dest="pairs",
        help="a couple of catalog keys (repeatable)",
    )
    shard_sweep.add_argument(
        "--epsilons", type=int, nargs="+", required=True,
        help="ascending per-dimension thresholds",
    )
    shard_sweep.add_argument(
        "--method", choices=tuple(ALGORITHMS), default="ex-minmax"
    )
    shard_sweep.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="JSONL checkpoint: completed cells are skipped on re-run",
    )
    shard_sweep.add_argument(
        "--addresses", nargs="+", default=None, metavar="HOST:PORT",
        help="running shard servers (default: self-host)",
    )
    shard_sweep.add_argument("--allow-partial", action="store_true")

    lint = subparsers.add_parser(
        "lint", help="run the repro.lint invariant checker"
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument("--select", default=None, metavar="IDS")
    lint.add_argument("--ignore", default=None, metavar="IDS")
    lint.add_argument("--show-suppressed", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--changed-only", default=None, metavar="GIT_REF")
    lint.add_argument("--baseline", default=None, metavar="FILE")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--baseline-update", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command: str = args.command

    if command == "lint":
        from .lint import cli as lint_cli

        if args.list_rules:
            print(lint_cli.list_rules())
            return 0
        return lint_cli.run_lint(
            list(args.paths) if args.paths else lint_cli.default_paths(),
            report_format=args.format,
            select=args.select,
            ignore=args.ignore,
            show_suppressed=args.show_suppressed,
            changed_only=args.changed_only,
            baseline_path=args.baseline,
            no_baseline=args.no_baseline,
            baseline_update=args.baseline_update,
        )

    if command == "catalog":
        from .catalog import PersistentCatalog

        with PersistentCatalog(args.db) as catalog:
            if args.catalog_command == "import":
                imported = catalog.import_directory(args.directory)
                print(
                    f"imported {len(imported)} communities from "
                    f"{args.directory} into {args.db}"
                )
                return 0

            if args.catalog_command == "export":
                exported = catalog.export_directory(
                    args.directory, keys=args.keys
                )
                print(
                    f"exported {len(exported)} communities from "
                    f"{args.db} to {args.directory}"
                )
                return 0

            if args.catalog_command == "ls":
                keys = catalog.keys()
                for key in keys:
                    record = catalog.metadata(key)
                    print(
                        f"{record.key}  users={record.n_users} "
                        f"dims={record.n_dims} category={record.category} "
                        f"fingerprint={record.fingerprint[:12]}"
                    )
                storage = catalog.storage_stats()
                print(
                    f"{storage['communities']} communities, "
                    f"{storage['vector_bytes']} vector bytes, "
                    f"{storage['cache_entries']} cached joins"
                )
                return 0

            # query
            survivors = catalog.candidate_keys(args.key, args.epsilon)
            for key in survivors:
                print(key)
            stats = catalog.io_stats()
            print(
                f"{len(survivors)} candidates for {args.key!r} at "
                f"epsilon={args.epsilon} "
                f"(rows scanned: {stats['repro_catalog_rows_scanned_total']}, "
                f"vector loads: {stats['repro_catalog_vector_loads_total']})"
            )
            return 0

    if command == "shard":
        from pathlib import Path

        from .shard import (
            PLAN_FILENAME,
            PartitionPlan,
            ShardCoordinator,
            ShardFleet,
            partition_catalog,
        )

        def _parse_addresses(raw: list[str]) -> list[tuple[str, int]]:
            addresses = []
            for item in raw:
                host, _, port = item.rpartition(":")
                addresses.append((host or "127.0.0.1", int(port)))
            return addresses

        def _render_topk(result) -> None:
            for rank, score in enumerate(result.scores, start=1):
                print(
                    f"{rank:3d}. {score.label}  "
                    f"similarity={score.similarity:.6f} "
                    f"matched={score.result.n_matched}"
                )
            if result.degraded:
                print(
                    f"DEGRADED: missing shards {list(result.missing)}, "
                    f"{len(result.dropped_keys)} dropped communities, "
                    f"{len(result.lost_pairs)} lost pairs"
                )

        if args.shard_command == "partition":
            from .catalog import PersistentCatalog

            with PersistentCatalog(args.db) as catalog:
                plan = partition_catalog(
                    catalog,
                    args.out_dir,
                    args.shards,
                    epsilon=args.epsilon,
                    hot_fraction=args.hot_fraction,
                    replicate=not args.no_replicate,
                    sample_pairs=args.sample_pairs,
                    seed=args.seed,
                )
            stats = plan.stats
            print(
                f"partitioned {stats['communities']} communities into "
                f"{plan.n_shards} shards at epsilon={plan.epsilon} "
                f"({args.out_dir})"
            )
            for spec in plan.shards:
                print(
                    f"  shard {spec.shard}: {len(spec.keys)} communities, "
                    f"cost {spec.cost} ({spec.db})"
                )
            print(
                f"  components={stats['components']} "
                f"split={stats['split_components']} "
                f"replicated_keys={len(plan.replicated)} "
                f"imbalance={stats['imbalance']:.3f}"
            )
            return 0

        if args.shard_command == "serve":
            import time as _time

            with ShardFleet(args.plan_dir) as fleet:
                for shard, (host, port) in enumerate(fleet.addresses):
                    print(f"shard {shard}: {host}:{port}")
                print(
                    f"serving {fleet.plan.n_shards} shards from "
                    f"{args.plan_dir} (Ctrl+C to stop)"
                )
                try:
                    while True:
                        _time.sleep(3600)
                except KeyboardInterrupt:
                    print("shutting down fleet")
            return 0

        if args.shard_command == "topk":
            if args.addresses:
                plan = PartitionPlan.load(
                    Path(args.plan_dir) / PLAN_FILENAME
                )
                with ShardCoordinator(
                    plan, _parse_addresses(args.addresses)
                ) as coordinator:
                    result = coordinator.top_k(
                        epsilon=args.epsilon,
                        k=args.k,
                        screen_method=args.screen_method,
                        refine_method=args.refine_method,
                        screen_margin=args.screen_margin,
                        allow_partial=args.allow_partial,
                    )
            else:
                with ShardFleet(args.plan_dir) as fleet:
                    with fleet.coordinator() as coordinator:
                        result = coordinator.top_k(
                            epsilon=args.epsilon,
                            k=args.k,
                            screen_method=args.screen_method,
                            refine_method=args.refine_method,
                            screen_margin=args.screen_margin,
                            allow_partial=args.allow_partial,
                        )
            _render_topk(result)
            return 0

        # sweep
        pairs = [tuple(pair) for pair in args.pairs]
        if args.addresses:
            plan = PartitionPlan.load(Path(args.plan_dir) / PLAN_FILENAME)
            with ShardCoordinator(
                plan, _parse_addresses(args.addresses)
            ) as coordinator:
                sweep_result = coordinator.sweep(
                    pairs,
                    args.epsilons,
                    method=args.method,
                    checkpoint=args.checkpoint,
                    allow_partial=args.allow_partial,
                )
        else:
            with ShardFleet(args.plan_dir) as fleet:
                with fleet.coordinator() as coordinator:
                    sweep_result = coordinator.sweep(
                        pairs,
                        args.epsilons,
                        method=args.method,
                        checkpoint=args.checkpoint,
                        allow_partial=args.allow_partial,
                    )
        for (first, second), points in sweep_result.curves.items():
            print(f"{first} | {second}")
            for point in points:
                print(
                    f"  epsilon={point.parameter:g} "
                    f"similarity={point.similarity_percent:.2f}% "
                    f"matched={point.n_matched}"
                )
        if sweep_result.resumed_cells:
            print(f"resumed {sweep_result.resumed_cells} checkpointed cells")
        if sweep_result.degraded:
            print(
                f"DEGRADED: missing shards {list(sweep_result.missing)}, "
                f"{len(sweep_result.lost_cells)} lost cells"
            )
        return 0

    if command == "serve":
        import asyncio

        from .serve import AdmissionPolicy, CommunityStore, CSJServer, ServeConfig

        if args.catalog is not None:
            from .catalog import PersistentCatalog
            from .serve import CatalogBackedStore

            store: CommunityStore = CatalogBackedStore(
                PersistentCatalog(args.catalog)
            )
        else:
            store = CommunityStore()
        if args.preload:
            import dataclasses

            from .datasets.couples import build_couple

            generator = make_generator(args.dataset, seed=args.seed)
            for spec in PAPER_COUPLES[: args.preload]:
                couple = build_couple(spec, generator, scale=args.scale)
                for side, community in zip("BA", couple):
                    # Same disambiguation as `topk`: paper couple names
                    # repeat across cIDs, the store needs unique names.
                    store.register_community(
                        dataclasses.replace(
                            community, name=f"c{spec.c_id}{side}:{community.name}"
                        )
                    )
        server = CSJServer(
            ServeConfig(
                host=args.host,
                port=args.port,
                admission=AdmissionPolicy(
                    max_pending=args.max_pending,
                    rate=args.rate,
                    burst=args.burst,
                    default_deadline_ms=args.default_deadline_ms,
                ),
                executor_threads=args.threads,
                cache_entries=args.cache,
                delta_maintenance=args.delta,
                delta_couples=args.delta_couples,
            ),
            store=store,
        )

        async def _serve() -> None:
            host, port = await server.start()
            print(
                f"repro-csj serve {__version__} listening on {host}:{port} "
                f"({len(store)} communities registered)"
            )
            try:
                await server.serve_forever()
            finally:
                await server.stop()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("shutting down")
        return 0

    if command == "table1":
        print(render_table1(run_table1(n_users=args.users, seed=args.seed)))
        return 0

    if command == "table2":
        print(render_table2())
        return 0

    if command == "table11":
        cells = run_scalability(
            scale=args.scale,
            seed=args.seed,
            method=args.method,
            categories=tuple(args.categories) if args.categories else None,
            steps=tuple(args.steps),
        )
        print(render_scalability_table(cells, scale=args.scale))
        return 0

    if command == "sweep":
        from .analysis.sweeps import epsilon_sweep, render_sweep
        from .datasets.couples import build_couple

        spec = next(s for s in PAPER_COUPLES if s.c_id == args.cid)
        generator = make_generator(args.dataset, seed=args.seed)
        community_b, community_a = build_couple(spec, generator, scale=args.scale)
        metrics = _telemetry_registry(args)
        records: list = []
        points = epsilon_sweep(
            community_b,
            community_a,
            epsilons=sorted(args.epsilons),
            method=args.method,
            metrics=metrics,
            telemetry=records,
            **_engine_kwargs(args),
        )
        print(
            f"cID {spec.c_id} on {args.dataset}: |B|={len(community_b)}, "
            f"|A|={len(community_a)}, method={args.method}"
        )
        print(render_sweep(points, parameter_name="epsilon"))
        _emit_telemetry(
            args, records, metrics,
            cid=spec.c_id, dataset=args.dataset, method=args.method,
        )
        return 0

    if command == "stats":
        from .obs import MetricsRegistry, read_jsonl, summarize_records

        header, records, trailer = read_jsonl(args.log)
        if header:
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in header.items()
                if key != "kind"
            )
            print(f"run: {rendered}")
        print(summarize_records(records).render())
        if args.prometheus:
            snapshot = (trailer or {}).get("metrics")
            if snapshot:
                from .catalog import init_catalog_metrics
                from .serve.store import init_delta_metrics
                from .shard.metrics import init_shard_metrics
                from .sketch import init_sketch_metrics

                registry = MetricsRegistry()
                # Zero-initialise every metric family before merging so
                # dashboards see all repro_* samples even for runs that
                # never touched a subsystem (counters add on merge, so
                # recorded values pass through unchanged).
                init_sketch_metrics(registry)
                init_delta_metrics(registry)
                init_catalog_metrics(registry)
                init_shard_metrics(registry)
                registry.merge(snapshot)
                print()
                print(registry.to_prometheus(), end="")
            else:
                print("(no metrics snapshot in log)")
        return 0

    if command == "events":
        from .analysis.events_report import profile_events, render_event_report
        from .datasets.couples import build_couple

        spec = next(s for s in PAPER_COUPLES if s.c_id == args.cid)
        generator = make_generator(args.dataset, seed=args.seed)
        community_b, community_a = build_couple(spec, generator, scale=args.scale)
        profiles = profile_events(
            community_b,
            community_a,
            epsilon=epsilon_for_dataset(args.dataset),
        )
        print(
            f"cID {spec.c_id} on {args.dataset}: |B|={len(community_b)}, "
            f"|A|={len(community_a)} (faithful python engines)"
        )
        print(render_event_report(profiles))
        return 0

    if command == "experiments":
        from .analysis.experiments import write_experiments_md

        path = write_experiments_md(
            args.output, scale=args.scale, seed=args.seed, n_users=args.users
        )
        print(f"wrote {path}")
        return 0

    if command == "run-config":
        from .analysis.config import ExperimentConfig, run_experiment
        from .analysis.results_io import save_table_run

        config = ExperimentConfig.from_json(args.config)
        run = run_experiment(config)
        print(f"experiment {config.name!r} on {config.dataset}, "
              f"epsilon {config.resolved_epsilon}, scale {config.scale:g}")
        print(render_method_table(run))
        if args.save:
            path = save_table_run(args.save, run)
            print(f"results saved to {path}")
        return 0

    if command == "manifest":
        from .datasets.manifest import (
            build_manifest,
            load_manifest,
            save_manifest,
            verify_manifest,
        )

        if args.action == "build":
            manifest = build_manifest(
                dataset=args.dataset,
                seed=args.seed,
                scale=args.scale,
                couples=tuple(args.couples) if args.couples else None,
            )
            path = save_manifest(args.path, manifest)
            print(f"manifest with {len(manifest['couples'])} couples "
                  f"written to {path}")
            return 0
        mismatches = verify_manifest(load_manifest(args.path))
        if mismatches:
            for line in mismatches:
                print(f"MISMATCH: {line}")
            return 1
        print("manifest verified: all fingerprints match")
        return 0

    if command == "doctor":
        from .analysis.selfcheck import run_selfcheck
        from .datasets.couples import build_couple

        spec = next(s for s in PAPER_COUPLES if s.c_id == args.cid)
        generator = make_generator(args.dataset, seed=args.seed)
        community_b, community_a = build_couple(spec, generator, scale=args.scale)
        report = run_selfcheck(
            community_b, community_a, epsilon=epsilon_for_dataset(args.dataset)
        )
        print(
            f"self-check on cID {spec.c_id} ({args.dataset}): "
            f"|B|={len(community_b)}, |A|={len(community_a)}"
        )
        print(report.render())
        return 0 if report.passed else 1

    if command == "topk":
        import dataclasses

        from .apps import top_k_pairs
        from .datasets.couples import build_couple

        generator = make_generator(args.dataset, seed=args.seed)
        communities = []
        for spec in PAPER_COUPLES[: args.couples]:
            couple = build_couple(spec, generator, scale=args.scale)
            for side, community in zip("BA", couple):
                # Paper couple names repeat across cIDs; rankings need
                # unique community names.
                communities.append(
                    dataclasses.replace(
                        community, name=f"c{spec.c_id}{side}:{community.name}"
                    )
                )
        epsilon = (
            args.epsilon
            if args.epsilon is not None
            else epsilon_for_dataset(args.dataset)
        )
        metrics = _telemetry_registry(args)
        records: list = []
        scores = top_k_pairs(
            communities,
            epsilon=epsilon,
            k=args.k,
            envelope_screen=not args.no_screen,
            metrics=metrics,
            telemetry=records,
            **_engine_kwargs(args),
        )
        print(
            f"top-{args.k} of {len(communities)} {args.dataset} communities "
            f"(epsilon={epsilon}, n_jobs={args.n_jobs})"
        )
        for rank, score in enumerate(scores, start=1):
            print(
                f"{rank:3d}. {score.label}  "
                f"{100 * score.similarity:6.2f}%  "
                f"matched={score.result.n_matched}"
            )
        if not scores:
            print("(no joinable pairs)")
        _emit_telemetry(
            args, records, metrics,
            dataset=args.dataset, k=args.k, epsilon=epsilon,
        )
        return 0

    if command == "couple":
        spec = next(s for s in PAPER_COUPLES if s.c_id == args.cid)
        generator = make_generator(args.dataset, seed=args.seed)
        run = run_couple(
            spec,
            generator,
            (args.method,),
            epsilon=epsilon_for_dataset(args.dataset),
            scale=args.scale,
            engine=args.engine,
        )
        result = run.results[args.method]
        print(f"cID {spec.c_id}: {spec.name_b!r} vs {spec.name_a!r}")
        print(result.summary())
        return 0

    table = int(command.removeprefix("table"))
    metrics = _telemetry_registry(args)
    run = run_method_table(
        table,
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        metrics=metrics,
        **_engine_kwargs(args),
    )
    if args.reference:
        print(render_method_table_with_reference(run))
    else:
        print(render_method_table(run))
    _emit_telemetry(
        args, run.telemetry, metrics,
        table=table, dataset=run.dataset, epsilon=run.epsilon,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
