"""The committed findings baseline (``lint_baseline.json``).

A baseline entry acknowledges one pre-existing or deliberate finding so
the full-tree CI job can fail on *new* findings only.  Matching is by
``(rule_id, message)`` plus path-suffix (so the file can move between
checkouts with different roots) and deliberately **not** by line
number — unrelated edits above a finding must not resurrect it.

Every entry carries a one-line ``justification``; ``--baseline-update``
refuses to write entries without one (it stamps a TODO marker the
reviewer must replace).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .violations import Violation

__all__ = ["Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "lint_baseline.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One acknowledged finding."""

    rule_id: str
    path: str  # posix, repo-relative; matched as a suffix
    message: str
    justification: str = ""

    def matches(self, violation: "Violation") -> bool:
        if violation.rule_id != self.rule_id:
            return False
        if violation.message != self.message:
            return False
        observed = violation.path.replace("\\", "/")
        return observed == self.path or observed.endswith("/" + self.path)

    def as_dict(self) -> dict[str, str]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The set of acknowledged findings, with load/save round-tripping."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as error:
            raise RuntimeError(f"unreadable baseline {path}: {error}")
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise RuntimeError(
                f"baseline {path}: expected version {_FORMAT_VERSION} document"
            )
        entries = [
            BaselineEntry(
                rule_id=str(item["rule_id"]),
                path=str(item["path"]),
                message=str(item["message"]),
                justification=str(item.get("justification", "")),
            )
            for item in payload.get("findings", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        document = {
            "version": _FORMAT_VERSION,
            "findings": [entry.as_dict() for entry in self.entries],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def matches(self, violation: "Violation") -> bool:
        return any(entry.matches(violation) for entry in self.entries)

    @classmethod
    def from_violations(
        cls, violations: Iterable["Violation"], *, keep: "Baseline | None" = None
    ) -> "Baseline":
        """Build a baseline acknowledging ``violations``.

        Justifications carried by matching entries of ``keep`` (the
        previous baseline) are preserved; genuinely new entries get a
        TODO marker that review must replace with a real reason.
        """
        entries: list[BaselineEntry] = []
        seen: set[tuple[str, str, str]] = set()
        for violation in violations:
            path = violation.path.replace("\\", "/")
            key = (violation.rule_id, path, violation.message)
            if key in seen:
                continue
            seen.add(key)
            justification = "TODO: justify or fix"
            if keep is not None:
                for old in keep.entries:
                    if old.matches(violation) and old.justification:
                        justification = old.justification
                        break
            entries.append(
                BaselineEntry(
                    rule_id=violation.rule_id,
                    path=path,
                    message=violation.message,
                    justification=justification,
                )
            )
        entries.sort(key=lambda e: (e.rule_id, e.path, e.message))
        return cls(entries=entries)
