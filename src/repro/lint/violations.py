"""The one currency of the linter: :class:`Violation` records.

Every rule yields violations; the engine filters them through the
suppression tables and the reporters render what survives.  A violation
is a plain frozen value so rules can be tested in isolation and the
JSON reporter can serialise without ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Violation"]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id anchored to a ``file:line:col`` location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The text-reporter line: ``path:line:col: RLxxx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
