"""``python -m repro.lint`` / ``repro-lint`` / ``repro-csj lint``.

Exit status: ``0`` when the tree is clean, ``1`` when violations were
found (or a file failed to parse), ``2`` on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .engine import lint_paths
from .report import json_report, text_report
from .rules import all_rules

__all__ = ["build_parser", "default_paths", "main", "run_lint"]

DEFAULT_PATH = "src/repro"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: seeded-RNG "
            "discipline, process-pool worker safety, event/metric hygiene, "
            "error handling and API/doc parity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its title and rationale, then exit",
    )
    return parser


def _split(ids: str | None) -> list[str] | None:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


def run_lint(
    paths: Sequence[str],
    *,
    report_format: str = "text",
    select: str | None = None,
    ignore: str | None = None,
    show_suppressed: bool = False,
) -> int:
    """Lint ``paths`` and print the report; returns the exit status."""
    report = lint_paths(
        paths, select=_split(select), ignore=_split(ignore)
    )
    if report_format == "json":
        print(json_report(report))
    else:
        print(text_report(report, show_suppressed=show_suppressed))
    return 0 if report.ok else 1


def default_paths() -> list[str]:
    if Path(DEFAULT_PATH).is_dir():
        return [DEFAULT_PATH]
    return ["."]


def list_rules() -> str:
    """The ``--list-rules`` text: id, title and rationale per rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    paths = list(args.paths) if args.paths else default_paths()
    return run_lint(
        paths,
        report_format=args.format,
        select=args.select,
        ignore=args.ignore,
        show_suppressed=args.show_suppressed,
    )


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
