"""``python -m repro.lint`` / ``repro-lint`` / ``repro-csj lint``.

Exit status: ``0`` when the tree is clean, ``1`` when violations were
found (or a file failed to parse), ``2`` on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .diff import git_changed_lines
from .engine import lint_paths
from .report import json_report, sarif_report, text_report
from .rules import all_rules

__all__ = ["build_parser", "default_paths", "main", "run_lint"]

DEFAULT_PATH = "src/repro"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: seeded-RNG "
            "discipline, process-pool worker safety, event/metric hygiene, "
            "error handling and API/doc parity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed-only",
        default=None,
        metavar="GIT_REF",
        help=(
            "diff mode: only report findings on lines changed relative "
            "to GIT_REF (the whole tree is still analysed)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "move findings acknowledged in FILE out of the failure set "
            f"(default: {DEFAULT_BASELINE_NAME} next to the first path, "
            "when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help=(
            "rewrite the baseline to acknowledge all current findings "
            "(keeps existing justifications; new entries get a TODO "
            "marker that review must replace) and exit 0"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its title and rationale, then exit",
    )
    return parser


def _split(ids: str | None) -> list[str] | None:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


def _find_baseline(paths: Sequence[str]) -> Path | None:
    """The nearest committed baseline: cwd, then up from the first path."""
    candidates = [Path.cwd()]
    if paths:
        first = Path(paths[0]).resolve()
        candidates.extend([first] if first.is_dir() else [])
        candidates.extend(first.parents)
    for root in candidates:
        candidate = root / DEFAULT_BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def run_lint(
    paths: Sequence[str],
    *,
    report_format: str = "text",
    select: str | None = None,
    ignore: str | None = None,
    show_suppressed: bool = False,
    changed_only: str | None = None,
    baseline_path: str | None = None,
    no_baseline: bool = False,
    baseline_update: bool = False,
) -> int:
    """Lint ``paths`` and print the report; returns the exit status."""
    changed = None
    if changed_only is not None:
        try:
            changed = git_changed_lines(changed_only)
        except RuntimeError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
    resolved_baseline: Path | None = None
    if not no_baseline:
        if baseline_path is not None:
            resolved_baseline = Path(baseline_path)
        else:
            resolved_baseline = _find_baseline(paths)
    baseline = None
    if resolved_baseline is not None and not baseline_update:
        try:
            baseline = Baseline.load(resolved_baseline)
        except RuntimeError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
    report = lint_paths(
        paths,
        select=_split(select),
        ignore=_split(ignore),
        changed_lines=changed,
        baseline=baseline,
    )
    if baseline_update:
        target = resolved_baseline or Path(DEFAULT_BASELINE_NAME)
        previous = Baseline.load(target) if target.is_file() else None
        Baseline.from_violations(report.violations, keep=previous).save(target)
        print(
            f"baseline: wrote {len(report.violations)} finding(s) to {target}"
        )
        return 0
    if report_format == "json":
        print(json_report(report))
    elif report_format == "sarif":
        print(sarif_report(report))
    else:
        print(text_report(report, show_suppressed=show_suppressed))
    return 0 if report.ok else 1


def default_paths() -> list[str]:
    if Path(DEFAULT_PATH).is_dir():
        return [DEFAULT_PATH]
    return ["."]


def list_rules() -> str:
    """The ``--list-rules`` text: id, title and rationale per rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    paths = list(args.paths) if args.paths else default_paths()
    return run_lint(
        paths,
        report_format=args.format,
        select=args.select,
        ignore=args.ignore,
        show_suppressed=args.show_suppressed,
        changed_only=args.changed_only,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        baseline_update=args.baseline_update,
    )


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
