"""RL011 — seeds must thread through call boundaries, not vanish at them.

RL001 catches the syntactic sin (an argless ``default_rng()``); this
rule catches the dataflow one: the caller *has* a generator or seed in
scope but calls a project function that accepts one — as a defaulted
``rng``/``seed``-like parameter — without passing it.  The callee then
falls back to its own entropy and the byte-identical reproduction
contract breaks one stack frame away from where the seed lives, which
is exactly the distance at which review misses it.

Also flagged: a literal constant seed baked into a function body
(``default_rng(42)`` outside tests) — determinism yes, but callers can
never vary it, so experiment configs silently collide.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext

#: Parameter / variable names that carry randomness.
_SEED_NAMES = frozenset({"rng", "generator", "seed", "random_state"})


def _positional_index(params, name: str) -> int | None:
    index = 0
    for param in params:
        if param.kind == "positional":
            if param.name == name:
                return index
            index += 1
        elif param.name == name:
            return None  # keyword-only: positional count can't cover it
    return None


@register
class SeedThreadingRule(Rule):
    rule_id = "RL011"
    title = "seed-threading"
    rationale = (
        "a caller holding an rng/seed must pass it to callees that "
        "accept one; a dropped seed breaks reproducibility one frame "
        "away from its source"
    )

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:  # pragma: no cover - engine always provides one
            return
        for context in project.modules:
            module = context.analysis
            if module is None:
                continue
            for func in module.functions.values():
                carried = self._carried_seeds(func)
                if not carried:
                    continue
                for call in func.calls:
                    yield from self._check_call(
                        analysis, context, module, func, call, carried
                    )

    def _carried_seeds(self, func) -> set[str]:
        """Seed-ish names this function demonstrably has in scope."""
        carried = {
            param.name for param in func.params if param.name in _SEED_NAMES
        }
        carried |= {
            access.attr
            for access in func.accesses
            if access.stem == "self" and access.attr.lstrip("_") in _SEED_NAMES
        }
        return carried

    def _check_call(self, analysis, context, module, func, call, carried):
        resolved = analysis.resolve_call(module, func, call)
        if resolved is None or resolved not in analysis.functions:
            return
        if call.has_star_args:
            return  # *args/**kwargs may forward the seed; unknowable
        _, callee = analysis.functions[resolved]
        if callee.cls is not None and callee.name == "__init__":
            return  # constructor resolution is ambiguous; RL001 covers ctors
        for param in callee.params:
            if param.name not in _SEED_NAMES or not param.has_default:
                continue
            if param.name in call.keywords:
                continue
            index = _positional_index(callee.params, param.name)
            offset = 1 if callee.cls is not None else 0
            if index is not None and call.n_positional + offset > index:
                continue  # covered positionally
            yield Violation(
                rule_id=self.rule_id,
                path=context.display_path,
                line=call.lineno,
                col=call.col + 1,
                message=(
                    f"'{func.qualname}' holds a seed source "
                    f"({', '.join(sorted(carried))}) but calls "
                    f"'{callee.qualname}' without its {param.name!r} "
                    "parameter; the seed is dropped at this boundary"
                ),
            )
            return  # one finding per call site is enough

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        """Constant literal seeds baked into function bodies."""
        import ast

        rng_aliases = self._rng_aliases(module)
        if not rng_aliases:
            return
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(outer):
                if not (
                    isinstance(node, ast.Call)
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, int)
                ):
                    continue
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name in rng_aliases:
                    yield module.violation(
                        self.rule_id,
                        node,
                        f"hardcoded seed {node.args[0].value} in "
                        f"'{outer.name}'; accept it as a parameter so "
                        "callers control determinism",
                    )

    @staticmethod
    def _rng_aliases(module: "ModuleContext") -> frozenset[str]:
        """Local names that refer to ``numpy.random.default_rng``."""
        if module.analysis is None:
            return frozenset()
        aliases = {
            local
            for local, target in module.analysis.imports.items()
            if target.endswith("default_rng")
        }
        if any(
            target in ("numpy", "numpy.random")
            for target in module.analysis.imports.values()
        ):
            aliases.add("default_rng")
        return frozenset(aliases)
