"""RL007 — blocking call reachable from an ``async def``.

The serve layer's latency story assumes the event loop never blocks: a
single sync ``time.sleep``, file read, socket call, lock acquisition or
serial ``BatchEngine`` run inside a coroutine stalls *every* in-flight
request.  The convention is to plan on the loop and hop heavy work onto
the thread executor — and because executor targets are passed **by
reference** (``run_in_executor(execute_join, ...)``), they never appear
as call edges, so the hop exempts them from this rule automatically.

The check walks the project call graph from every ``async def`` through
synchronous project callees (awaited coroutines are their own roots)
and reports each blocking sink it can reach, with the call path that
reaches it.  Unresolvable calls are treated as unknown, not blocking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis import FunctionInfo, ModuleAnalysis, ProjectAnalysis
    from ..engine import ProjectContext

#: Fully-qualified callables that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
    }
)

#: Any resolved call under these module prefixes blocks (socket IO).
_BLOCKING_PREFIXES = ("socket.socket.",)

#: Constructing the serial join engine inside a coroutine runs the whole
#: join on the loop; it belongs on the executor.
_ENGINE_CLASS = "BatchEngine"

_MAX_DEPTH = 12


def _is_lockish(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered or "sem" in lowered or "cond" in lowered


def _direct_sinks(
    analysis: "ProjectAnalysis",
    module: "ModuleAnalysis",
    func: "FunctionInfo",
) -> list[tuple[int, int, str]]:
    """Blocking operations performed directly by ``func``'s own body."""
    sinks: list[tuple[int, int, str]] = []
    for region in func.lock_regions:
        sinks.append(
            (
                region.lineno,
                1,
                f"acquires lock '{region.stem}.{region.lock_attr}'"
                if region.stem != region.lock_attr
                else f"acquires lock '{region.stem}'",
            )
        )
    for call in func.calls:
        resolved = analysis.resolve_call(module, func, call) or call.callee
        if resolved is None:
            continue
        tail = resolved.rsplit(".", 1)[-1]
        if resolved in _BLOCKING_CALLS or resolved.startswith(_BLOCKING_PREFIXES):
            sinks.append((call.lineno, call.col + 1, f"calls blocking '{resolved}'"))
        elif tail == "acquire" and "." in resolved:
            owner = resolved.rsplit(".", 2)[-2]
            if _is_lockish(owner):
                sinks.append(
                    (call.lineno, call.col + 1, f"calls '{resolved}' (sync lock)")
                )
        elif tail == _ENGINE_CLASS:
            sinks.append(
                (
                    call.lineno,
                    call.col + 1,
                    f"constructs '{_ENGINE_CLASS}' (serial join on this thread)",
                )
            )
    return sinks


@register
class AsyncBlockingRule(Rule):
    rule_id = "RL007"
    title = "async-blocking"
    rationale = (
        "sync sleep/file/socket/lock/BatchEngine work reachable from an "
        "async def blocks the event loop; hop it through the executor"
    )

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:  # pragma: no cover - engine always provides one
            return
        module_of = {
            context.analysis.module_name: context
            for context in project.modules
            if context.analysis is not None
        }
        for context in project.modules:
            if context.analysis is None:
                continue
            for func in context.analysis.functions.values():
                if not func.is_async:
                    continue
                yield from self._check_async(
                    analysis, module_of, context, func
                )

    def _check_async(self, analysis, module_of, context, root):
        root_module = context.analysis
        root_fq = f"{root_module.module_name}.{root.qualname}"
        # Direct sinks anchor on the offending line itself.
        for lineno, col, what in _direct_sinks(analysis, root_module, root):
            yield Violation(
                rule_id=self.rule_id,
                path=context.display_path,
                line=lineno,
                col=col,
                message=(
                    f"async '{root.qualname}' {what} on the event loop; "
                    "run it via the executor"
                ),
            )
        # Reachable sinks anchor on the first call edge out of the async
        # function, with the path in the message; one finding per
        # (async def, sink-owning function).
        queue: list[tuple[str, tuple[str, ...], int, int]] = []
        for call in root.calls:
            callee = analysis.resolve_call(root_module, root, call)
            if callee is None or callee not in analysis.functions:
                continue
            _, info = analysis.functions[callee]
            if info.is_async:
                continue
            queue.append((callee, (root.qualname,), call.lineno, call.col + 1))
        seen_functions: set[str] = {root_fq}
        reported: set[str] = set()
        while queue:
            fq, path_names, anchor_line, anchor_col = queue.pop(0)
            if fq in seen_functions or len(path_names) > _MAX_DEPTH:
                continue
            seen_functions.add(fq)
            callee_module, callee_info = analysis.functions[fq]
            sinks = _direct_sinks(analysis, callee_module, callee_info)
            if sinks and fq not in reported:
                reported.add(fq)
                _, _, what = sinks[0]
                via = " -> ".join(path_names + (callee_info.qualname,))
                yield Violation(
                    rule_id=self.rule_id,
                    path=context.display_path,
                    line=anchor_line,
                    col=anchor_col,
                    message=(
                        f"async '{root.qualname}' reaches blocking work: "
                        f"'{callee_info.qualname}' {what} (via {via}); "
                        "hop through the executor or restructure"
                    ),
                )
            for call in callee_info.calls:
                nested = analysis.resolve_call(callee_module, callee_info, call)
                if nested is None or nested not in analysis.functions:
                    continue
                _, nested_info = analysis.functions[nested]
                if nested_info.is_async:
                    continue
                queue.append(
                    (
                        nested,
                        path_names + (callee_info.qualname,),
                        anchor_line,
                        anchor_col,
                    )
                )
