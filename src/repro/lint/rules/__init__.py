"""Rule registry.

A rule is a class with a unique ``rule_id`` registered via
:func:`register`.  The engine instantiates a fresh object per run, calls
:meth:`Rule.check` once per parsed module, then :meth:`Rule.finalize`
once with the whole project — so rules may accumulate cross-file state
on ``self`` without leaking between runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext
    from ..violations import Violation

__all__ = ["Rule", "all_rules", "get_rule", "register", "rule_ids"]


class Rule:
    """Base class: a rule id, one-line title, and two check passes."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, module: "ModuleContext") -> Iterator["Violation"]:
        """Per-module pass; yield findings anchored in ``module``."""
        return iter(())

    def finalize(self, project: "ProjectContext") -> Iterator["Violation"]:
        """Project-wide pass, after every module has been checked."""
        return iter(())


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """One fresh rule instance by id (raises ``KeyError`` if unknown)."""
    return _REGISTRY[rule_id.upper()]()


def rule_ids() -> Iterable[str]:
    return sorted(_REGISTRY)


# Importing the rule modules populates the registry as a side effect.
from . import (  # noqa: E402  (registry must exist before rule modules)
    rl001_unseeded_rng,
    rl002_worker_picklable,
    rl003_event_sink,
    rl004_metric_naming,
    rl005_error_handling,
    rl006_api_docs,
    rl007_async_blocking,
    rl008_lock_discipline,
    rl009_serve_parity,
    rl010_metric_parity,
    rl011_seed_threading,
)

_ = (
    rl001_unseeded_rng,
    rl002_worker_picklable,
    rl003_event_sink,
    rl004_metric_naming,
    rl005_error_handling,
    rl006_api_docs,
    rl007_async_blocking,
    rl008_lock_discipline,
    rl009_serve_parity,
    rl010_metric_parity,
    rl011_seed_threading,
)
