"""RL006 — public API drift between ``repro/__init__.py`` and the docs.

``docs/api.md`` promises "import surface by subpackage"; anything
exported from the package root's ``__all__`` that the document never
mentions is an undocumented public symbol — usually a sign that an
export was added in a hurry.  The rule parses the root ``__all__`` and
requires every non-dunder entry to appear (as a whole word) somewhere
in ``docs/api.md``, which is located by walking up from the package
toward the repository root.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext

DOC_RELATIVE = Path("docs") / "api.md"


def _find_doc(start: Path) -> Path | None:
    for parent in start.resolve().parents:
        candidate = parent / DOC_RELATIVE
        if candidate.is_file():
            return candidate
    return None


@register
class ApiDocsDriftRule(Rule):
    rule_id = "RL006"
    title = "public-api-drift"
    rationale = (
        "every symbol exported from repro/__init__.py's __all__ must be "
        "documented in docs/api.md"
    )

    def __init__(self) -> None:
        # (module path, display path) -> [(symbol, line, col)]
        self.exports: list[
            tuple[Path, str, list[tuple[str, int, int]]]
        ] = []

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        if not (
            module.path.name == "__init__.py"
            and module.path.parent.name == "repro"
        ):
            return iter(())
        for node in module.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                continue
            symbols = [
                (element.value, element.lineno, element.col_offset + 1)
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            self.exports.append((module.path, module.display_path, symbols))
        return iter(())

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        for path, display, symbols in self.exports:
            doc = _find_doc(path)
            if doc is None:
                line = symbols[0][1] if symbols else 1
                yield Violation(
                    rule_id=self.rule_id,
                    path=display,
                    line=line,
                    col=1,
                    message=(
                        "docs/api.md not found above the package; the public "
                        "API must be documented"
                    ),
                )
                continue
            text = doc.read_text(encoding="utf-8")
            for symbol, line, col in symbols:
                if symbol.startswith("__") and symbol.endswith("__"):
                    continue
                if re.search(rf"\b{re.escape(symbol)}\b", text):
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    path=display,
                    line=line,
                    col=col,
                    message=(
                        f"public symbol {symbol!r} is exported from __all__ "
                        f"but never mentioned in {DOC_RELATIVE.as_posix()}"
                    ),
                )
