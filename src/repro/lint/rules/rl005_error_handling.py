"""RL005 — bare ``except`` and silently-swallowed broad exceptions.

Library code must not eat errors: a bare ``except:`` also catches
``KeyboardInterrupt``/``SystemExit``, and a broad ``except Exception``
whose body is only ``pass`` hides real failures (a worker crash, a
corrupt cache entry) behind silently-wrong results.  Handlers should
catch the narrowest type that models the expected failure and either
handle it meaningfully, re-raise, or translate into the
``repro.core.errors`` hierarchy.

Where swallowing is genuinely correct — ``__del__`` safety nets during
interpreter teardown — add a justified suppression::

    except Exception:  # repro-lint: disable=RL005 — teardown safety net
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext
from . import Rule, register

BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _caught_names(node: ast.expr | None) -> set[str]:
    if node is None:
        return set()
    names: set[str] = set()
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return names


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler neither acts on nor re-raises the error."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring / ellipsis
        if isinstance(statement, ast.Return) and (
            statement.value is None
            or isinstance(statement.value, ast.Constant)
        ):
            continue
        return False
    return True


@register
class ErrorHandlingRule(Rule):
    rule_id = "RL005"
    title = "bare-except"
    rationale = (
        "never use bare except:, and never silently swallow "
        "Exception/BaseException — catch the narrowest type and handle, "
        "re-raise, or translate via repro.core.errors"
    )

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.violation(
                    self.rule_id,
                    node,
                    "bare except: also traps KeyboardInterrupt/SystemExit; "
                    "catch an explicit exception type",
                )
            elif _caught_names(node.type) & BROAD_TYPES and _is_silent(
                node.body
            ):
                yield module.violation(
                    self.rule_id,
                    node,
                    "broad exception silently swallowed; catch the narrowest "
                    "type and handle, re-raise, or translate via "
                    "repro.core.errors",
                )
