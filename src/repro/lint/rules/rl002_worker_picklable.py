"""RL002 — unpicklable callables handed to a process pool.

Work shipped to a ``ProcessPoolExecutor`` (or ``multiprocessing.Pool``)
is pickled by reference: the callable must be importable at module
level in the worker.  Lambdas, nested functions (closures — which in
this codebase tend to capture ``SharedMemory`` handles or registry
objects that must never cross the process boundary) and bound methods
of stateful engine objects all fail, some of them only at runtime on
spawn-based platforms.

The rule tracks which local names hold process pools — direct
constructor calls, and calls to same-module helpers whose return
annotation names ``ProcessPoolExecutor`` — and then validates the
callable argument of every ``submit``/``map``-style dispatch plus the
``initializer=`` of the constructor itself.  Thread pools are exempt:
they share an address space and pickle nothing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext
from . import Rule, register

#: Dispatch methods whose first positional argument is pickled.
DISPATCH_METHODS = frozenset(
    {
        "submit",
        "map",
        "starmap",
        "apply",
        "apply_async",
        "map_async",
        "starmap_async",
        "imap",
        "imap_unordered",
    }
)

_POOL_TYPE_MARKERS = ("ProcessPoolExecutor",)


def _callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_pool_constructor(call: ast.Call) -> bool:
    name = _callee_name(call.func)
    if name in _POOL_TYPE_MARKERS:
        return True
    # multiprocessing.Pool / get_context(...).Pool(...)
    return name == "Pool"


def _annotation_names_pool(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return any(marker in annotation.value for marker in _POOL_TYPE_MARKERS)
    try:
        rendered = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - malformed annotation node
        return False
    return any(marker in rendered for marker in _POOL_TYPE_MARKERS)


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _ModuleShape:
    """Module-level vs nested callables, and which names hold pools.

    Plain ``name = <pool>`` bindings are local names, so they are
    resolved per enclosing function scope (a thread pool named ``pool``
    in one function must not taint a process pool named ``pool`` in
    another).  ``self.<attr>`` bindings are instance state and tracked
    module-wide, matching how the engine stores its executor.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.module_level: set[str] = set()
        self.nested: set[str] = set()
        self.pool_factories: set[str] = set()
        self.pool_attrs: set[str] = set()

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_level.add(node.name)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.nested.add(child.name)
                if _annotation_names_pool(node.returns):
                    self.pool_factories.add(node.name)

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_pool_value(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.pool_attrs.add(target.attr)

    def _is_pool_value(self, value: ast.expr) -> bool:
        return isinstance(value, ast.Call) and (
            _is_pool_constructor(value)
            or _callee_name(value.func) in self.pool_factories
        )

    def scope_pool_names(self, body: list[ast.stmt]) -> set[str]:
        """Local names bound to a process pool within one scope."""
        names: set[str] = set()
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign) and self._is_pool_value(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if self._is_pool_value(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
        return names

    def is_pool_receiver(
        self, node: ast.expr, local_pool_names: set[str]
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in local_pool_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.pool_attrs
        if isinstance(node, ast.Call):
            return self._is_pool_value(node)
        return False


@register
class WorkerPicklableRule(Rule):
    rule_id = "RL002"
    title = "worker-unpicklable"
    rationale = (
        "callables dispatched to a process pool must be module-level "
        "functions; lambdas, closures and bound methods either fail to "
        "pickle or drag SharedMemory/registry state across the fork"
    )

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        shape = _ModuleShape(module.tree)
        scopes: list[list[ast.stmt]] = [module.tree.body]
        scopes.extend(
            node.body
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for body in scopes:
            local_pools = shape.scope_pool_names(body)
            for node in _walk_scope(body):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) and (
                    node.func.attr in DISPATCH_METHODS
                    and shape.is_pool_receiver(node.func.value, local_pools)
                    and node.args
                ):
                    yield from self._validate(module, shape, node.args[0])
                if _is_pool_constructor(node):
                    for keyword in node.keywords:
                        if keyword.arg == "initializer":
                            yield from self._validate(
                                module, shape, keyword.value
                            )

    def _validate(
        self, module: "ModuleContext", shape: _ModuleShape, callable_arg: ast.expr
    ) -> Iterator[Violation]:
        if isinstance(callable_arg, ast.Lambda):
            yield module.violation(
                self.rule_id,
                callable_arg,
                "lambda passed to a process pool cannot be pickled; hoist it "
                "to a module-level function",
            )
        elif isinstance(callable_arg, ast.Name):
            if callable_arg.id in shape.nested:
                yield module.violation(
                    self.rule_id,
                    callable_arg,
                    f"nested function {callable_arg.id!r} passed to a process "
                    "pool closes over local state and cannot be pickled; "
                    "hoist it to module level",
                )
        elif isinstance(callable_arg, ast.Attribute):
            root = callable_arg.value
            if isinstance(root, ast.Name) and root.id == "self":
                yield module.violation(
                    self.rule_id,
                    callable_arg,
                    f"bound method self.{callable_arg.attr} passed to a "
                    "process pool pickles the whole instance (pools, shared "
                    "memory and all); use a module-level function",
                )
        elif isinstance(callable_arg, ast.Call):
            # functools.partial(f, ...): validate the wrapped callable.
            if _callee_name(callable_arg.func) == "partial" and callable_arg.args:
                yield from self._validate(module, shape, callable_arg.args[0])
