"""RL003 — pairing-event emission bypassing the sink API.

Every pairing event must flow through ``EventTrace.emit`` /
``emit_bulk`` / ``absorb`` in ``core/events.py``: the sink keeps the
``EventCounts`` dataclass and the ``repro_core_events_total`` metric
family in lockstep.  Code that pokes ``trace.counts`` directly (or
increments the metric family itself) updates one side only — exactly
the serial/parallel event-parity drift the ApBaseline NO_MATCH fix in
PR 1 repaired after the fact.

Flagged outside ``core/events.py`` / ``core/types.py``:

* assignments to a ``.counts`` attribute (including merge-by-``+``);
* assignments or ``setattr`` on individual counter fields reached
  through ``.counts``;
* ``.inc(...)`` calls on the events metric family.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext
from . import Rule, register

#: The five counter fields of ``EventCounts``.
EVENT_FIELDS = frozenset(
    {"min_prune", "max_prune", "no_overlap", "no_match", "match"}
)

#: Metric family the sink mirrors into; direct ``.inc`` is a bypass.
EVENTS_METRIC_NAME = "repro_core_events_total"

#: Files allowed to touch the counters directly: the sink itself and
#: the dataclass definition.
SINK_FILES = ("core/events.py", "core/types.py")


def _touches_counts(node: ast.expr) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "counts"
        for child in ast.walk(node)
    )


@register
class EventSinkBypassRule(Rule):
    rule_id = "RL003"
    title = "event-sink-bypass"
    rationale = (
        "pairing events must go through EventTrace.emit/emit_bulk/absorb "
        "so EventCounts and the metrics mirror never drift apart"
    )

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        if module.posix_path.endswith(SINK_FILES):
            return
        constants = module.string_constants()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr == "counts":
                        yield module.violation(
                            self.rule_id,
                            target,
                            "direct assignment to .counts bypasses the event "
                            "sink (the metrics mirror is skipped); use "
                            "EventTrace.absorb()",
                        )
                    elif target.attr in EVENT_FIELDS and _touches_counts(
                        target.value
                    ):
                        yield module.violation(
                            self.rule_id,
                            target,
                            f"direct mutation of .counts.{target.attr} "
                            "bypasses the event sink; use EventTrace.emit()",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "setattr"
                    and node.args
                    and _touches_counts(node.args[0])
                ):
                    yield module.violation(
                        self.rule_id,
                        node,
                        "setattr on an EventCounts object bypasses the event "
                        "sink; use EventTrace.emit()",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "inc"
                    and node.args
                    and self._metric_name(node.args[0], constants)
                    == EVENTS_METRIC_NAME
                ):
                    yield module.violation(
                        self.rule_id,
                        node,
                        f"direct .inc({EVENTS_METRIC_NAME!r}) outside the "
                        "sink; emit the event through EventTrace instead",
                    )

    @staticmethod
    def _metric_name(
        node: ast.expr, constants: dict[str, str]
    ) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in constants:
                return constants[node.id]
            if node.id.endswith("EVENTS_METRIC"):
                return EVENTS_METRIC_NAME
        return None
