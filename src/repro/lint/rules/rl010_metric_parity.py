"""RL010 — metrics dataflow parity: used == registered == documented.

RL004 checks what a metric is *called*; this rule checks where it
*flows*.  Four invariants, all cross-file:

* **registered** — a counter whose name belongs to a zero-init family
  (a module-level ``*_COUNTERS`` tuple) must be listed in that tuple,
  or scrapes before the first event miss the series entirely;
* **initialised everywhere** — a module that calls one
  ``init_*_metrics`` zero-init hook must call all of them (the CLI's
  ``stats --prometheus`` rendering and the server must expose the same
  families);
* **documented** — every metric name updated or registered anywhere
  must appear in the docs corpus (``docs/*.md``, ``README.md``,
  ``DESIGN.md`` at the nearest root with a ``docs/`` directory);
  brace shorthand like ``repro_engine_cache_{hits,misses}_total`` in
  prose is expanded before matching;
* **live** — a ``*_COUNTERS`` entry no code ever increments is a stale
  registration advertising a series that will stay zero forever.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register
from .rl004_metric_naming import _UPDATE_METHODS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext

_COUNTERS_SUFFIX = "_COUNTERS"
_INIT_RE = re.compile(r"^init_[a-z0-9_]+_metrics$")
_FAMILY_RE = re.compile(r"^repro_[a-z0-9]+_$")
_METRIC_TOKEN_RE = re.compile(r"repro_[a-z0-9_{},]+")
_DOC_FILES = ("README.md", "DESIGN.md")


def _expand_braces(token: str) -> set[str]:
    """``a_{x,y}_b`` -> ``{a_x_b, a_y_b}``; unmatched braces truncate."""
    match = re.match(r"^([^{}]*)\{([^{}]+)\}([^{}]*)$", token)
    if match is None:
        if "{" in token:
            head = token.split("{", 1)[0]
            return {head} if head else set()
        return {token}
    prefix, alternatives, suffix = match.groups()
    names: set[str] = set()
    for alternative in alternatives.split(","):
        names.update(_expand_braces(prefix + alternative + suffix))
    return names


def _family_prefix(names: tuple[str, ...]) -> str | None:
    """``repro_delta_`` from a tuple of ``repro_delta_*`` names."""
    if not names:
        return None
    first_two = {"_".join(name.split("_", 2)[:2]) + "_" for name in names}
    if len(first_two) != 1:
        return None
    prefix = first_two.pop()
    return prefix if _FAMILY_RE.match(prefix) else None


@register
class MetricParityRule(Rule):
    rule_id = "RL010"
    title = "metric-parity"
    rationale = (
        "every metric updated anywhere must be zero-registered in its "
        "family tuple, initialised at every init site, and documented"
    )

    def __init__(self) -> None:
        # name -> [(path, line, col, is_counter)]
        self.update_sites: dict[str, list[tuple[str, int, int, bool]]] = {}
        # (tuple_name, names, path, line, col, module_path)
        self.counter_tuples: list[
            tuple[str, tuple[str, ...], str, int, int, Path]
        ] = []
        #: modules defining an init hook (exempt from the all-inits check)
        self.init_defs: dict[str, str] = {}  # fn name -> display path
        # display path -> (init fn names called, anchor line, fs path)
        self.init_calls: dict[str, tuple[set[str], int, Path]] = {}
        # display path -> fs path (for locating the docs corpus)
        self._paths: dict[str, Path] = {}
        self._doc_cache: dict[Path, frozenset[str] | None] = {}

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        self._paths[module.display_path] = module.path
        constants = module.string_constants()
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.endswith(_COUNTERS_SUFFIX)
                and isinstance(node.value, (ast.Tuple, ast.List))
                and node.value.elts
                and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in node.value.elts
                )
            ):
                self.counter_tuples.append(
                    (
                        node.targets[0].id,
                        tuple(e.value for e in node.value.elts),
                        module.display_path,
                        node.lineno,
                        node.col_offset + 1,
                        module.path,
                    )
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _INIT_RE.match(node.name):
                    self.init_defs[node.name] = module.display_path
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and _INIT_RE.match(node.func.id)
            ) or (
                isinstance(node.func, ast.Attribute)
                and _INIT_RE.match(node.func.attr)
            ):
                name = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                called, line, path = self.init_calls.get(
                    module.display_path, (set(), node.lineno, module.path)
                )
                called.add(name)
                self.init_calls[module.display_path] = (called, line, path)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _UPDATE_METHODS
                and node.args
            ):
                metric = self._resolve(node.args[0], constants)
                if metric is None or not metric.startswith("repro_"):
                    continue
                self.update_sites.setdefault(metric, []).append(
                    (
                        module.display_path,
                        node.lineno,
                        node.col_offset + 1,
                        _UPDATE_METHODS[node.func.attr],
                    )
                )
        return iter(())

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        yield from self._check_registration()
        yield from self._check_init_sites()
        yield from self._check_documented()

    # -- registered + live -------------------------------------------------
    def _check_registration(self) -> Iterator[Violation]:
        updated = set(self.update_sites)
        for tuple_name, names, path, line, col, _ in self.counter_tuples:
            prefix = _family_prefix(names)
            if prefix is None:
                continue
            registered = set(names)
            for metric, sites in sorted(self.update_sites.items()):
                if not (
                    metric.startswith(prefix)
                    and metric.endswith("_total")
                    and metric not in registered
                ):
                    continue
                for site_path, site_line, site_col, is_counter in sites:
                    if not is_counter:
                        continue
                    yield Violation(
                        rule_id=self.rule_id,
                        path=site_path,
                        line=site_line,
                        col=site_col,
                        message=(
                            f"counter {metric!r} is incremented here but "
                            f"missing from {tuple_name}; scrapes before the "
                            "first event will not see the series"
                        ),
                    )
            for metric in names:
                if metric.endswith("_total") and metric not in updated:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"counter {metric!r} is registered in "
                            f"{tuple_name} but never incremented anywhere; "
                            "remove it or wire the increment"
                        ),
                    )

    def _check_init_sites(self) -> Iterator[Violation]:
        hooks = set(self.init_defs)
        if len(hooks) < 2:
            return
        defining = set(self.init_defs.values())
        for path, (called, line, _) in sorted(self.init_calls.items()):
            if path in defining:
                continue  # a family's own module may self-initialise
            missing = sorted(hooks - called)
            if not missing:
                continue
            listed = ", ".join(missing)
            yield Violation(
                rule_id=self.rule_id,
                path=path,
                line=line,
                col=1,
                message=(
                    f"this module zero-initialises some metric families "
                    f"but not: {listed}; init sites must cover every family"
                ),
            )

    # -- documented --------------------------------------------------------
    def _check_documented(self) -> Iterator[Violation]:
        for metric, sites in sorted(self.update_sites.items()):
            path, line, col, _ = sites[0]
            fs_path = self._paths.get(path)
            if fs_path is None:
                continue
            documented = self._documented_names(fs_path)
            if documented is None or metric in documented:
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=path,
                line=line,
                col=col,
                message=(
                    f"metric {metric!r} is not documented (docs/*.md, "
                    "README.md or DESIGN.md)"
                ),
            )
        for tuple_name, names, path, line, col, fs_path in self.counter_tuples:
            documented = self._documented_names(fs_path)
            if documented is None:
                continue
            for metric in names:
                if metric not in documented and metric not in self.update_sites:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"metric {metric!r} ({tuple_name}) is not "
                            "documented (docs/*.md, README.md or DESIGN.md)"
                        ),
                    )

    def _documented_names(self, start: Path) -> frozenset[str] | None:
        """Metric names mentioned in the nearest docs corpus.

        ``None`` (check skipped) when no ``docs/`` directory exists
        above ``start``, or when the module is not under the docs
        root's ``src/`` tree — a stray file next to somebody else's
        docs is not bound by their doc contract (this is what keeps
        single-file lint fixtures from being judged against the real
        repository docs).
        """
        resolved = start.resolve()
        for parent in resolved.parents:
            if not (parent / "docs").is_dir():
                continue
            if not resolved.is_relative_to(parent / "src"):
                return None
            cached = self._doc_cache.get(parent)
            if cached is None and parent not in self._doc_cache:
                names: set[str] = set()
                corpus = sorted((parent / "docs").rglob("*.md"))
                corpus += [
                    parent / name
                    for name in _DOC_FILES
                    if (parent / name).is_file()
                ]
                for doc in corpus:
                    try:
                        text = doc.read_text(encoding="utf-8")
                    except OSError:
                        continue
                    for token in _METRIC_TOKEN_RE.finditer(text):
                        names.update(_expand_braces(token.group(0)))
                cached = frozenset(names)
                self._doc_cache[parent] = cached
            return cached
        return None

    @staticmethod
    def _resolve(node: ast.expr, constants: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None
