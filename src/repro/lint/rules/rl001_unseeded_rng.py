"""RL001 — unseeded or global-state RNG.

The paper's tables are regenerable only because every synthetic
community is derived from an explicit, seeded
``numpy.random.Generator``.  Two call shapes break that contract:

* the legacy global-state API (``np.random.seed``, ``np.random.randint``,
  ``np.random.shuffle``, ... and stdlib ``random.*``), whose hidden
  state makes results depend on call order across the whole process —
  fatal under the batch engine's worker fan-out;
* ``default_rng()`` with no seed argument, which draws fresh OS entropy
  on every call.

The fix is always the same: accept a ``numpy.random.Generator`` (or a
seed that is fed to ``default_rng``) as an explicit parameter, the way
the ``datasets`` generators thread ``[seed, digest]`` spawn keys.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext
from . import Rule, register

#: ``numpy.random`` attributes that are part of the explicit-Generator
#: API and therefore fine to reference.
SEEDABLE_API = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` functions that mutate or read the hidden module
#: state (``random.Random(seed)`` instances are fine).
STDLIB_GLOBAL_FNS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


class _Imports:
    """Alias tables for numpy / numpy.random / stdlib random."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()
        self.np_random: set[str] = set()
        self.stdlib_random: set[str] = set()
        #: local name -> original ``numpy.random`` symbol
        self.from_np_random: dict[str, str] = {}
        #: local name -> original stdlib ``random`` symbol
        self.from_stdlib: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.np_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
                    elif alias.name == "random":
                        self.stdlib_random.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.from_np_random[alias.asname or alias.name] = (
                            alias.name
                        )
                elif node.module == "random":
                    for alias in node.names:
                        self.from_stdlib[alias.asname or alias.name] = alias.name

    def is_np_random(self, node: ast.expr) -> bool:
        """Does ``node`` evaluate to the ``numpy.random`` module?"""
        if isinstance(node, ast.Name):
            return node.id in self.np_random
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy
        )


def _argless(call: ast.Call) -> bool:
    return not call.args and not call.keywords


@register
class UnseededRngRule(Rule):
    rule_id = "RL001"
    title = "unseeded-rng"
    rationale = (
        "joins and dataset builds must be reproducible: use an explicit "
        "seeded numpy.random.Generator, never the global-state RNG APIs "
        "or an argless default_rng()"
    )

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        imports = _Imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if imports.is_np_random(func.value):
                    if func.attr == "default_rng":
                        if _argless(node):
                            yield module.violation(
                                self.rule_id,
                                node,
                                "default_rng() without a seed draws fresh OS "
                                "entropy; thread an explicit seed or Generator",
                            )
                    elif func.attr not in SEEDABLE_API:
                        yield module.violation(
                            self.rule_id,
                            node,
                            f"global-state RNG call np.random.{func.attr}(); "
                            "use an explicit numpy.random.Generator instead",
                        )
                elif (
                    isinstance(func.value, ast.Name)
                    and func.value.id in imports.stdlib_random
                    and func.attr in STDLIB_GLOBAL_FNS
                ):
                    yield module.violation(
                        self.rule_id,
                        node,
                        f"stdlib random.{func.attr}() uses hidden global "
                        "state; use a seeded numpy Generator",
                    )
            elif isinstance(func, ast.Name):
                origin = imports.from_np_random.get(func.id)
                if origin == "default_rng" and _argless(node):
                    yield module.violation(
                        self.rule_id,
                        node,
                        "default_rng() without a seed draws fresh OS entropy; "
                        "thread an explicit seed or Generator",
                    )
                elif origin is not None and origin not in SEEDABLE_API:
                    yield module.violation(
                        self.rule_id,
                        node,
                        f"global-state RNG call {origin}() imported from "
                        "numpy.random; use an explicit Generator",
                    )
                stdlib_origin = imports.from_stdlib.get(func.id)
                if stdlib_origin in STDLIB_GLOBAL_FNS:
                    yield module.violation(
                        self.rule_id,
                        node,
                        f"stdlib random.{stdlib_origin}() uses hidden global "
                        "state; use a seeded numpy Generator",
                    )
