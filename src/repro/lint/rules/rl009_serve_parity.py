"""RL009 — serve-surface parity: protocol ops vs handlers/clients/docs.

``serve/protocol.py``'s ``OPS`` frozenset is the wire contract.  Every
op in it must be (a) dispatched by the server, (b) callable from both
the blocking and the async client, and (c) documented in
``docs/serving.md`` — otherwise the surface silently drifts: an op the
server answers but no client can issue, or a documented endpoint that
returns ``unknown_op``.  The reverse direction is checked too: a client
method issuing ``self.request("<op>")`` for an op the protocol does not
declare is dead on arrival.

All findings anchor in the module that is out of step, so diff mode
attributes the drift to the edit that caused it.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext

_CLIENT_CLASSES = ("ServeClient", "AsyncServeClient")
_DOC_NAME = "serving.md"


def _ops_assignment(module: "ModuleContext") -> tuple[ast.Assign, frozenset[str]] | None:
    """The module-level ``OPS = frozenset({...})`` declaration, if any."""
    for node in module.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "OPS"
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "frozenset"
            and node.value.args
        ):
            continue
        literal = node.value.args[0]
        if isinstance(literal, (ast.Set, ast.Tuple, ast.List)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in literal.elts
        ):
            return node, frozenset(e.value for e in literal.elts)
    return None


def _find_doc(start: Path) -> Path | None:
    for parent in [start.resolve()] + list(start.resolve().parents):
        candidate = parent / "docs" / _DOC_NAME
        if candidate.is_file():
            return candidate
    return None


@register
class ServeParityRule(Rule):
    rule_id = "RL009"
    title = "serve-parity"
    rationale = (
        "every protocol op needs a server dispatch arm, a blocking and "
        "an async client method, and a docs/serving.md mention"
    )

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:  # pragma: no cover - engine always provides one
            return
        protocol = server = client = None
        for context in project.modules:
            name = context.posix_path
            if name.endswith("serve/protocol.py"):
                protocol = context
            elif name.endswith("serve/server.py"):
                server = context
            elif name.endswith("serve/client.py"):
                client = context
        if protocol is None:
            return
        declared = _ops_assignment(protocol)
        if declared is None:
            return
        ops_node, ops = declared

        handled = self._server_ops(server)
        client_ops = {
            cls: self._client_ops(analysis, client, cls)
            for cls in _CLIENT_CLASSES
        }
        doc_path = _find_doc(protocol.path)
        doc_text = doc_path.read_text(encoding="utf-8") if doc_path else None

        for op in sorted(ops):
            if server is not None and op not in handled:
                yield protocol.violation(
                    self.rule_id,
                    ops_node,
                    f"op '{op}' is declared in OPS but never dispatched in "
                    f"{server.display_path}",
                )
            if client is not None:
                for cls in _CLIENT_CLASSES:
                    if cls in client_ops and op not in client_ops[cls]:
                        yield protocol.violation(
                            self.rule_id,
                            ops_node,
                            f"op '{op}' has no {cls} method issuing "
                            f"request({op!r})",
                        )
            if doc_text is not None and not re.search(
                rf"\b{re.escape(op)}\b", doc_text
            ):
                yield protocol.violation(
                    self.rule_id,
                    ops_node,
                    f"op '{op}' is not documented in docs/{_DOC_NAME}",
                )
        # Reverse direction: client methods for undeclared ops.
        if client is not None:
            for cls in _CLIENT_CLASSES:
                for op, (line, col) in sorted(
                    self._client_op_sites(analysis, client, cls).items()
                ):
                    if op not in ops:
                        yield Violation(
                            rule_id=self.rule_id,
                            path=client.display_path,
                            line=line,
                            col=col,
                            message=(
                                f"{cls} issues request({op!r}) but the "
                                "protocol does not declare that op"
                            ),
                        )

    def _server_ops(self, server: "ModuleContext | None") -> frozenset[str]:
        """Ops the server dispatches: an ``op == "join"`` string constant
        anywhere, or a call to a ``plan_<op>``/``handle_<op>``/
        ``execute_<op>*`` function (the else-arm of a dispatch chain
        handles an op without ever spelling its string)."""
        if server is None:
            return frozenset()
        mentioned: set[str] = set()
        for node in ast.walk(server.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
            elif isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name is None:
                    continue
                for prefix in ("plan_", "handle_", "execute_"):
                    if name.startswith(prefix):
                        op = name[len(prefix):]
                        mentioned.add(op)
                        # execute_topk_work -> topk
                        mentioned.add(op.split("_", 1)[0])
        return frozenset(mentioned)

    def _client_ops(self, analysis, client, cls_name) -> frozenset[str]:
        return frozenset(self._client_op_sites(analysis, client, cls_name))

    def _client_op_sites(
        self, analysis, client: "ModuleContext | None", cls_name: str
    ) -> dict[str, tuple[int, int]]:
        """Ops a client class can issue, via its own and inherited methods."""
        if client is None or client.analysis is None:
            return {}
        module = client.analysis
        if cls_name not in module.classes:
            return {}
        sites: dict[str, tuple[int, int]] = {}
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = module.classes.get(current)
            if cls is None:
                continue
            queue.extend(base.rsplit(".", 1)[-1] for base in cls.bases)
            for method in cls.methods.values():
                for call in method.calls:
                    if (
                        call.callee is not None
                        and call.callee.rsplit(".", 1)[-1] == "request"
                        and call.first_arg is not None
                    ):
                        sites.setdefault(
                            call.first_arg, (call.lineno, call.col + 1)
                        )
        return sites
