"""RL008 — lock-guarded state touched on an unlocked path.

A class that creates a ``threading.Lock``/``RLock`` in ``__init__`` is
declaring a discipline: the attributes it mutates under ``with
self._lock:`` form that lock's protected set, and *every* access to
them — read, write, or mutating method call — must hold the lock.  A
single unlocked read is a torn-read bug waiting for a thread switch
(``DeltaJoinPool.stats`` reading three counters between two mutations
reports a state that never existed).

Protected set inference: an attribute is protected when at least one
write or method call on it happens inside a ``with <lock>:`` region
outside ``__init__``, anywhere in the project (accesses through typed
locals count — ``entry = self._entry(name)`` followed by ``with
entry.lock: entry.log.append(...)`` protects ``_Entry.log``).

Exempt paths: ``__init__`` (no concurrent aliases exist yet), methods
whose name ends in ``_locked`` (the codebase convention for "caller
holds the lock"), and functions the call-graph fixpoint proves are only
ever invoked with the lock held.  The rule also flags ``await`` inside
a lock region: parking a coroutine while holding a thread lock invites
lock-order deadlocks across the executor boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ProjectContext


@register
class LockDisciplineRule(Rule):
    rule_id = "RL008"
    title = "lock-discipline"
    rationale = (
        "attributes written under a class's lock must never be read, "
        "written or mutated on a path that does not hold it"
    )

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        analysis = project.analysis
        if analysis is None:  # pragma: no cover - engine always provides one
            return
        held = analysis.held_functions()

        # First pass: classify every attribute access project-wide by the
        # class that owns the attribute, and whether the lock was held.
        # guarded[cls_fq] -> set of protected attrs;
        # touches[cls_fq]  -> [(attr, kind, guarded, context, func_fq, line, col)]
        protected: dict[str, set[str]] = {}
        touches: dict[str, list[tuple]] = {}
        for context in project.modules:
            module = context.analysis
            if module is None:
                continue
            for func in module.functions.values():
                func_fq = f"{module.module_name}.{func.qualname}"
                exempt = (
                    func.name == "__init__"
                    or func.name.endswith("_locked")
                    or held.get(func_fq, False)
                )
                for access in func.accesses:
                    cls_fq = analysis.type_of_stem(module, func, access.stem)
                    if cls_fq is None:
                        continue
                    cls = analysis.classes.get(cls_fq)
                    if cls is None or not cls.lock_attrs:
                        continue
                    under_lock = access.stem in access.lock_stems
                    if (
                        under_lock
                        and access.kind in ("write", "call")
                        and func.name != "__init__"
                    ):
                        protected.setdefault(cls_fq, set()).add(access.attr)
                    if not under_lock and not exempt:
                        touches.setdefault(cls_fq, []).append(
                            (
                                access.attr,
                                access.kind,
                                context.display_path,
                                access.lineno,
                                access.col + 1,
                                func.qualname,
                            )
                        )
                for lineno, col, locks in func.awaits_under_lock:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=context.display_path,
                        line=lineno,
                        col=col + 1,
                        message=(
                            f"'{func.qualname}' awaits while holding lock(s) "
                            f"on '{locks}'; parking a coroutine under a "
                            "thread lock risks deadlock"
                        ),
                    )

        # Second pass: any unlocked touch of a protected attribute fires.
        # A read subsumed by a call at the same spot (``self.log`` loaded
        # to invoke ``self.log.append``) is one finding, not two.
        kinds = {"read": "read", "write": "written", "call": "mutated"}
        for cls_fq, attrs in sorted(protected.items()):
            cls = analysis.classes[cls_fq]
            lock_names = ", ".join(sorted(cls.lock_attrs))
            cls_touches = touches.get(cls_fq, [])
            subsumed = {
                (attr, path, line, col)
                for attr, kind, path, line, col, _ in cls_touches
                if kind != "read"
            }
            for touch in cls_touches:
                attr, kind, path, line, col, qualname = touch
                if attr not in attrs:
                    continue
                if kind == "read" and (attr, path, line, col) in subsumed:
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"'{cls.name}.{attr}' is guarded by '{lock_names}' "
                        f"elsewhere but {kinds[kind]} in '{qualname}' "
                        "without holding it"
                    ),
                )
