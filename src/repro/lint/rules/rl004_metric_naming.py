"""RL004 — metric naming and label-set hygiene.

Every metric registered through :class:`~repro.obs.registry.MetricsRegistry`
must be named ``repro_<subsystem>_<name>``: the shared ``repro_``
namespace keeps dashboards greppable, the subsystem segment must come
from the known package list, and counters (``.inc``) must end in
``_total`` per the Prometheus convention the registry's exposition
format feeds.

The rule also checks **label-set consistency** project-wide: every call
site of one metric family must pass the same label keys, otherwise
aggregations silently split (``counters_by_label`` would miss the
odd-one-out series).  That is a cross-file property, so it is verified
in ``finalize``.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..violations import Violation
from . import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ModuleContext, ProjectContext

#: Metric-segment abbreviations for package names too long on a
#: dashboard; everything else must match the layout exactly.
_SEGMENT_ALIASES = {"algorithms": ("algo",)}


@lru_cache(maxsize=1)
def allowed_subsystems() -> frozenset[str]:
    """``<subsystem>`` segments derived from the package layout.

    A subsystem is valid when it names a top-level sub-package or module
    of ``repro``, a module one level down (``core/delta.py`` grounds the
    ``repro_delta_*`` family), or a registered alias.  New subsystems
    therefore become lintable by existing, not by editing this rule.
    """
    package_root = Path(__file__).resolve().parents[2]
    names: set[str] = set()
    for child in package_root.iterdir():
        if child.name.startswith("_"):
            continue
        if child.is_dir() and (child / "__init__.py").is_file():
            names.add(child.name)
            for module in child.glob("*.py"):
                if not module.name.startswith("_"):
                    names.add(module.stem)
        elif child.suffix == ".py":
            names.add(child.stem)
    for full, aliases in _SEGMENT_ALIASES.items():
        if full in names:
            names.update(aliases)
    return frozenset(names)

_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9]*(?:_[a-z0-9]+)+$")

#: Registry update methods and whether they register a counter.
_UPDATE_METHODS = {"inc": True, "observe": False, "set_gauge": False}


def _subsystem(name: str) -> str:
    return name.split("_", 2)[1]


@register
class MetricNamingRule(Rule):
    rule_id = "RL004"
    title = "metric-naming"
    rationale = (
        "metrics must be named repro_<subsystem>_<name> (counters ending "
        "in _total) with one consistent label set per family"
    )

    def __init__(self) -> None:
        # name -> label-key-set -> [(path, line, col)]
        self.label_sites: dict[
            str, dict[frozenset[str], list[tuple[str, int, int]]]
        ] = {}

    def check(self, module: "ModuleContext") -> Iterator[Violation]:
        constants = module.string_constants()
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.endswith("_METRIC")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                yield from self._check_name(
                    module, node, node.value.value, is_counter=False
                )
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _UPDATE_METHODS
                and node.args
            ):
                continue
            name = self._resolve(node.args[0], constants)
            if name is None:
                continue
            is_counter = _UPDATE_METHODS[node.func.attr]
            yield from self._check_name(module, node, name, is_counter)
            labels = frozenset(
                keyword.arg for keyword in node.keywords if keyword.arg
            )
            self.label_sites.setdefault(name, {}).setdefault(
                labels, []
            ).append(
                (module.display_path, node.lineno, node.col_offset + 1)
            )

    def finalize(self, project: "ProjectContext") -> Iterator[Violation]:
        for name, by_labels in sorted(self.label_sites.items()):
            if len(by_labels) < 2:
                continue
            tally = Counter(
                {labels: len(sites) for labels, sites in by_labels.items()}
            )
            majority, _ = max(
                tally.items(), key=lambda item: (item[1], sorted(item[0]))
            )
            expected = ", ".join(sorted(majority)) or "(none)"
            for labels, sites in sorted(
                by_labels.items(), key=lambda item: sorted(item[0])
            ):
                if labels == majority:
                    continue
                got = ", ".join(sorted(labels)) or "(none)"
                for path, line, col in sites:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"metric {name!r} used with labels [{got}] here "
                            f"but [{expected}] elsewhere; one metric family "
                            "must keep one label set"
                        ),
                    )

    def _check_name(
        self,
        module: "ModuleContext",
        node: ast.AST,
        name: str,
        is_counter: bool,
    ) -> Iterator[Violation]:
        if not _NAME_RE.match(name):
            yield module.violation(
                self.rule_id,
                node,
                f"metric name {name!r} does not match "
                "repro_<subsystem>_<name> (lower snake case)",
            )
            return
        if _subsystem(name) not in allowed_subsystems():
            known = ", ".join(sorted(allowed_subsystems()))
            yield module.violation(
                self.rule_id,
                node,
                f"metric {name!r} names unknown subsystem "
                f"{_subsystem(name)!r} (known: {known})",
            )
        elif is_counter and not name.endswith("_total"):
            yield module.violation(
                self.rule_id,
                node,
                f"counter {name!r} must end in _total",
            )

    @staticmethod
    def _resolve(node: ast.expr, constants: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None
