"""Reporters: render a :class:`~repro.lint.engine.LintReport`.

Two formats: ``text`` (one ``path:line:col: RLxxx message`` line per
finding plus a summary line, the human/CI default) and ``json`` (a
machine-readable object for tooling).
"""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["json_report", "text_report"]


def text_report(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [violation.format() for violation in report.violations]
    if show_suppressed and report.suppressed:
        lines.append("-- suppressed --")
        lines.extend(
            violation.format() for violation in report.suppressed
        )
    noun = "violation" if len(report.violations) == 1 else "violations"
    lines.append(
        f"checked {report.files_checked} files: "
        f"{len(report.violations)} {noun}"
        f" ({len(report.suppressed)} suppressed)"
    )
    return "\n".join(lines)


def json_report(report: LintReport) -> str:
    """JSON object: summary counts plus both finding lists."""
    payload = {
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "ok": report.ok,
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
    }
    return json.dumps(payload, indent=2)
