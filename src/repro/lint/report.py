"""Reporters: render a :class:`~repro.lint.engine.LintReport`.

Three formats: ``text`` (one ``path:line:col: RLxxx message`` line per
finding plus a summary line, the human/CI default), ``json`` (a
machine-readable object for tooling) and ``sarif`` (SARIF 2.1.0, the
format GitHub code scanning ingests to annotate PRs inline).
"""

from __future__ import annotations

import json

from .engine import LintReport
from .rules import all_rules

__all__ = ["json_report", "sarif_report", "text_report"]


def text_report(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable findings plus a one-line summary."""
    lines = [violation.format() for violation in report.violations]
    if show_suppressed and report.suppressed:
        lines.append("-- suppressed --")
        lines.extend(
            violation.format() for violation in report.suppressed
        )
    if report.baselined:
        noun = "finding" if len(report.baselined) == 1 else "findings"
        lines.append(
            f"-- {len(report.baselined)} baselined {noun} acknowledged --"
        )
    noun = "violation" if len(report.violations) == 1 else "violations"
    lines.append(
        f"checked {report.files_checked} files: "
        f"{len(report.violations)} {noun}"
        f" ({len(report.suppressed)} suppressed)"
    )
    return "\n".join(lines)


def json_report(report: LintReport) -> str:
    """JSON object: summary counts plus both finding lists."""
    payload = {
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "ok": report.ok,
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "baselined": [v.as_dict() for v in report.baselined],
    }
    return json.dumps(payload, indent=2)


def sarif_report(report: LintReport) -> str:
    """SARIF 2.1.0 log for inline PR annotations (GitHub code scanning)."""
    descriptors = {rule.rule_id: rule for rule in all_rules()}
    ran = [
        rule_id for rule_id in report.rules_run if rule_id in descriptors
    ]
    results = []
    for violation in report.violations:
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path.replace("\\", "/"),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": max(violation.col, 1),
                            },
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/lint.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "name": descriptors[rule_id].title,
                                "shortDescription": {
                                    "text": descriptors[rule_id].rationale
                                },
                            }
                            for rule_id in ran
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
