"""Project-wide static analysis the dataflow rules run on.

The per-module syntactic checks (RL001-RL006) each re-derive whatever
context they need from one AST.  The dataflow and concurrency rules
(RL007-RL011) need more: *whole-project* knowledge of what a name
refers to, what a call resolves to, what type a local variable holds,
and which statements execute while a lock is held.  This module builds
that knowledge once per run and hands it to every rule:

* :class:`ModuleAnalysis` — one module's import/alias table, functions
  (with signatures, lock contexts, attribute accesses and call sites)
  and classes (with inferred ``self.attr`` types and lock attributes).
  Pure function of the source text, so instances are cached by content
  hash in an :class:`AnalysisCache` and survive unchanged files across
  runs.
* :class:`ProjectAnalysis` — the cross-module view: a symbol table of
  every definition keyed by dotted name, call resolution through
  imports / ``self`` / annotated parameters / inferred local types, the
  resulting call graph, and a "held-context" fixpoint that classifies
  functions only ever invoked while a lock is held.

The type inference is deliberately modest — nominal types from
constructor calls, parameter/return annotations (string annotations
included, so ``TYPE_CHECKING``-guarded imports resolve) and
``self.attr`` assignments.  It never guesses: a call or variable the
analysis cannot resolve simply resolves to nothing, and rules treat
unresolved as unknown rather than as a violation.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = [
    "AnalysisCache",
    "AttrAccess",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LockRegion",
    "ModuleAnalysis",
    "ParamInfo",
    "ProjectAnalysis",
    "analyze_module",
    "content_hash",
    "module_name_for",
]

#: Attribute names treated as locks when assigned a ``threading.Lock`` /
#: ``RLock`` / ``Condition`` / ``Semaphore`` in ``__init__`` (the name
#: itself must also look lock-ish so data fields never qualify).
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def content_hash(source: str) -> str:
    """The cache key of one module: sha256 of its exact source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` within its package tree.

    Walks up through ``__init__.py``-bearing directories, so
    ``src/repro/serve/store.py`` maps to ``repro.serve.store`` wherever
    the repository is checked out.  Files outside any package keep
    their bare stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _is_lockish_name(name: str) -> bool:
    lowered = name.lower()
    return "lock" in lowered or "sem" in lowered or "cond" in lowered


def _annotation_text(node: ast.expr | None) -> str | None:
    """An annotation as dotted text: ``Name``, ``a.b.C``, or ``"C"``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the leading dotted name so
        # "MetricsRegistry | None" still resolves.
        text = node.value.strip()
        head = ""
        for char in text:
            if char.isalnum() or char in "._":
                head += char
            else:
                break
        return head or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _annotation_text(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):  # Optional[X], list[X] -> unresolved
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``X | None`` / ``None | X``: resolve the non-None side.
        for side in (node.left, node.right):
            text = _annotation_text(side)
            if text and text != "None":
                return text
    return None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@dataclass(frozen=True)
class ParamInfo:
    """One parameter of a function signature."""

    name: str
    annotation: str | None
    has_default: bool
    kind: str  # "positional", "keyword_only", "vararg", "kwarg"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the raw dotted text of the called expression when it
    is a simple chain (``handle_mutate``, ``self.store.snapshot``,
    ``time.sleep``); resolution to a definition happens project-side.
    ``passed_args``/``passed_keywords`` carry just enough of the
    argument shape for signature-sensitive rules (RL011's dropped-seed
    check); ``lock_stems`` is the set of guard roots whose lock is held
    at this statement.
    """

    callee: str | None
    lineno: int
    col: int
    n_positional: int
    keywords: tuple[str, ...]
    has_star_args: bool
    lock_stems: frozenset[str]
    #: first positional argument when it is a string literal ("join" in
    #: ``self.request("join", ...)``) — what parity rules key on
    first_arg: str | None = None


@dataclass(frozen=True)
class AttrAccess:
    """One ``stem.attr`` touch: read, write, or mutating method call."""

    stem: str  # the base name: "self", "entry", "state"
    attr: str
    kind: str  # "read", "write", "call" (method invoked on the attr)
    lineno: int
    col: int
    lock_stems: frozenset[str]


@dataclass(frozen=True)
class LockRegion:
    """One ``with <stem>.<lock_attr>:`` region."""

    stem: str
    lock_attr: str
    lineno: int


@dataclass
class FunctionInfo:
    """One function or method: signature, body facts, call sites."""

    qualname: str  # "CommunityStore.subscribe" or "plan_join"
    name: str
    lineno: int
    col: int
    is_async: bool
    params: tuple[ParamInfo, ...]
    returns: str | None
    cls: str | None  # enclosing class name, if a method
    decorators: tuple[str, ...]
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[AttrAccess] = field(default_factory=list)
    lock_regions: list[LockRegion] = field(default_factory=list)
    awaits_under_lock: list[tuple[int, int, str]] = field(default_factory=list)
    #: names bound in this scope -> annotation/constructor dotted text
    local_types: dict[str, str] = field(default_factory=dict)
    #: names bound to anything at all (for visibility checks)
    bound_names: set[str] = field(default_factory=set)

    @property
    def is_staticmethod(self) -> bool:
        return "staticmethod" in self.decorators

    def param(self, name: str) -> ParamInfo | None:
        for param in self.params:
            if param.name == name:
                return param
        return None


@dataclass
class ClassInfo:
    """One class: bases, methods, lock attributes, ``self.attr`` types."""

    qualname: str
    name: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` assigned a threading lock in ``__init__``
    lock_attrs: set[str] = field(default_factory=set)
    #: ``self.<attr>`` -> dotted type text inferred from assignments
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleAnalysis:
    """Everything project rules need from one module, content-addressed."""

    module_name: str
    source_hash: str
    #: local name -> fully dotted import target ("repro.engine.BatchEngine",
    #: "time", "numpy.random.default_rng")
    imports: dict[str, str]
    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]
    #: module-level ``NAME = ("str", ...)`` tuple/list constants
    string_tuples: dict[str, tuple[str, ...]]


# ----------------------------------------------------------------------
# per-module extraction
# ----------------------------------------------------------------------
class _FunctionScanner:
    """Collects body facts for one function without entering nested defs."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    def scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for statement in node.body:
            self._statement(statement, frozenset())

    # -- statement walk, threading the held-lock stem set ---------------
    def _statement(self, node: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                region = self._lock_region(item.context_expr)
                if region is not None:
                    self.info.lock_regions.append(region)
                    inner = inner | {region.stem}
                self._expression(item.context_expr, held, lock_context=region is not None)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None)
            for statement in node.body:
                self._statement(statement, inner)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._assignment(node, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._target_access(target, held)
            return
        # Generic statement: record expressions, then recurse into the
        # statement's nested blocks with the same held set.
        for fieldname, value in ast.iter_fields(node):
            if isinstance(value, ast.expr):
                self._expression(value, held)
            elif isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.stmt):
                        self._statement(child, held)
                    elif isinstance(child, ast.expr):
                        self._expression(child, held)
                    elif isinstance(child, ast.excepthandler):
                        if child.name:
                            self.info.bound_names.add(child.name)
                        for statement in child.body:
                            self._statement(statement, held)

    def _lock_region(self, context: ast.expr) -> LockRegion | None:
        """``with <Name>.<lockish attr>`` (or bare lockish Name)."""
        if (
            isinstance(context, ast.Attribute)
            and isinstance(context.value, ast.Name)
            and _is_lockish_name(context.attr)
        ):
            return LockRegion(context.value.id, context.attr, context.lineno)
        if isinstance(context, ast.Name) and _is_lockish_name(context.id):
            return LockRegion(context.id, context.id, context.lineno)
        return None

    # -- assignments: writes + local type inference ----------------------
    def _assignment(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign, held: frozenset[str]
    ) -> None:
        if isinstance(node, ast.Assign):
            targets: Sequence[ast.expr] = node.targets
            value: ast.expr | None = node.value
            annotation = None
        elif isinstance(node, ast.AugAssign):
            targets, value, annotation = (node.target,), node.value, None
        else:
            targets = (node.target,)
            value = node.value
            annotation = _annotation_text(node.annotation)
        if value is not None:
            self._expression(value, held)
        inferred = annotation or (self._value_type(value) if value is not None else None)
        for target in targets:
            self._target_access(target, held)
            self._bind_target(target, inferred)

    def _bind_target(self, target: ast.expr, inferred: str | None) -> None:
        if isinstance(target, ast.Name):
            self.info.bound_names.add(target.id)
            if inferred:
                self.info.local_types[target.id] = inferred
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)

    def _value_type(self, value: ast.expr) -> str | None:
        """Dotted type text of an assigned value, when inferable."""
        if isinstance(value, ast.Call):
            return _dotted(value.func)
        if isinstance(value, ast.IfExp):
            # ``x if cond else Fallback()``: either branch that infers.
            return self._value_type(value.body) or self._value_type(value.orelse)
        if isinstance(value, ast.Attribute):
            return _dotted(value)  # resolved later via attr_types
        if isinstance(value, ast.Await):
            return None
        return None

    def _target_access(self, target: ast.expr, held: frozenset[str]) -> None:
        """Record the write an assignment/delete target performs."""
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            self._record_access(target.value.id, target.attr, "write", target, held)
        elif isinstance(target, ast.Subscript):
            # ``stem.attr[k] = v`` mutates the object held in stem.attr.
            base = target.value
            if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                self._record_access(base.value.id, base.attr, "write", base, held)
            self._expression(target.slice, held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target_access(element, held)

    # -- expressions: reads, calls, awaits -------------------------------
    def _expression(
        self, node: ast.expr, held: frozenset[str], *, lock_context: bool = False
    ) -> None:
        for child in self._walk_expr(node):
            if isinstance(child, ast.Call):
                self._call(child, held)
            elif isinstance(child, ast.Await):
                if held:
                    self.info.awaits_under_lock.append(
                        (child.lineno, child.col_offset, ", ".join(sorted(held)))
                    )
            elif (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and not (lock_context and _is_lockish_name(child.attr))
            ):
                self._record_access(child.value.id, child.attr, "read", child, held)

    def _walk_expr(self, node: ast.expr) -> Iterator[ast.AST]:
        """``ast.walk`` that does not descend into lambdas/comprehension defs."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            yield current
            if isinstance(current, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(current))

    def _call(self, node: ast.Call, held: frozenset[str]) -> None:
        callee = _dotted(node.func)
        first_arg: str | None = None
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            first_arg = node.args[0].value
        self.info.calls.append(
            CallSite(
                callee=callee,
                lineno=node.lineno,
                col=node.col_offset,
                n_positional=len(node.args),
                keywords=tuple(k.arg for k in node.keywords if k.arg),
                has_star_args=any(isinstance(a, ast.Starred) for a in node.args)
                or any(k.arg is None for k in node.keywords),
                lock_stems=held,
                first_arg=first_arg,
            )
        )
        # ``stem.attr.method(...)`` is a mutating touch of stem.attr;
        # ``stem.method(...)`` is a plain method call, not an attr touch.
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                self._record_access(base.value.id, base.attr, "call", base, held)

    def _record_access(
        self, stem: str, attr: str, kind: str, node: ast.AST, held: frozenset[str]
    ) -> None:
        if _is_lockish_name(attr):
            return  # the lock itself is exempt from discipline checks
        self.info.accesses.append(
            AttrAccess(
                stem=stem,
                attr=attr,
                kind=kind,
                lineno=getattr(node, "lineno", self.info.lineno),
                col=getattr(node, "col_offset", 0),
                lock_stems=held,
            )
        )


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[ParamInfo, ...]:
    args = node.args
    params: list[ParamInfo] = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults_start = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        params.append(
            ParamInfo(
                name=arg.arg,
                annotation=_annotation_text(arg.annotation),
                has_default=index >= defaults_start,
                kind="positional",
            )
        )
    if args.vararg is not None:
        params.append(ParamInfo(args.vararg.arg, None, False, "vararg"))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(
            ParamInfo(
                name=arg.arg,
                annotation=_annotation_text(arg.annotation),
                has_default=default is not None,
                kind="keyword_only",
            )
        )
    if args.kwarg is not None:
        params.append(ParamInfo(args.kwarg.arg, None, False, "kwarg"))
    return tuple(params)


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef, cls: ClassInfo | None
) -> FunctionInfo:
    qualname = f"{cls.name}.{node.name}" if cls is not None else node.name
    info = FunctionInfo(
        qualname=qualname,
        name=node.name,
        lineno=node.lineno,
        col=node.col_offset,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        params=_signature(node),
        returns=_annotation_text(node.returns),
        cls=cls.name if cls is not None else None,
        decorators=tuple(
            text for d in node.decorator_list if (text := _dotted(d)) is not None
        ),
    )
    for param in info.params:
        info.bound_names.add(param.name)
        if param.annotation:
            info.local_types[param.name] = param.annotation
    _FunctionScanner(info).scan(node)
    return info


def _scan_class(node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        qualname=node.name,
        name=node.name,
        lineno=node.lineno,
        bases=tuple(
            text for base in node.bases if (text := _dotted(base)) is not None
        ),
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[child.name] = _function_info(child, cls)
    _infer_self_attrs(node, cls)
    return cls


def _infer_self_attrs(node: ast.ClassDef, cls: ClassInfo) -> None:
    """``self.X = ...`` assignments anywhere in the class: types + locks."""
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for statement in ast.walk(method):
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                inferred = _value_type_static(statement.value)
                if inferred:
                    tail = inferred.rsplit(".", 1)[-1]
                    if (
                        tail in _LOCK_FACTORIES
                        and _is_lockish_name(target.attr)
                        and method.name == "__init__"
                    ):
                        cls.lock_attrs.add(target.attr)
                    else:
                        cls.attr_types.setdefault(target.attr, inferred)


def _value_type_static(value: ast.expr) -> str | None:
    if isinstance(value, ast.Call):
        return _dotted(value.func)
    if isinstance(value, ast.IfExp):
        return _value_type_static(value.body) or _value_type_static(value.orelse)
    return None


def _scan_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # ``import a.b as x`` binds x -> a.b; plain
                # ``import a.b`` binds only the top-level name ``a``.
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            prefix = "." * node.level + module
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return imports


def _resolve_relative(module_name: str, target: str) -> str:
    """Turn ``..engine.BatchEngine`` seen in ``repro.serve.handlers``
    into ``repro.engine.BatchEngine``."""
    if not target.startswith("."):
        return target
    level = len(target) - len(target.lstrip("."))
    remainder = target.lstrip(".")
    parts = module_name.split(".")
    # level 1 = current package, 2 = parent package, ...
    base = parts[: len(parts) - level] if len(parts) >= level else []
    return ".".join(base + ([remainder] if remainder else [])).strip(".")


def analyze_module(path: Path, source: str, tree: ast.Module) -> ModuleAnalysis:
    """Extract the full per-module analysis (pure; cacheable)."""
    module_name = module_name_for(path)
    raw_imports = _scan_imports(tree)
    imports = {
        local: _resolve_relative(module_name, target)
        for local, target in raw_imports.items()
    }
    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    string_tuples: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _function_info(node, None)
        elif isinstance(node, ast.ClassDef):
            cls = _scan_class(node)
            classes[cls.name] = cls
            for method in cls.methods.values():
                functions[method.qualname] = method
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            elements = node.value.elts
            if elements and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in elements
            ):
                string_tuples[node.targets[0].id] = tuple(
                    e.value for e in elements  # type: ignore[union-attr]
                )
    return ModuleAnalysis(
        module_name=module_name,
        source_hash=content_hash(source),
        imports=imports,
        functions=functions,
        classes=classes,
        string_tuples=string_tuples,
    )


class AnalysisCache:
    """Content-hash keyed cache of :class:`ModuleAnalysis` instances.

    The key is the sha256 of the source text, so an edited file can
    never be served a stale analysis while an untouched file costs one
    dict lookup on every subsequent run.  ``hits``/``misses`` exist for
    the cache-invalidation tests and for curiosity.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = int(max_entries)
        self._entries: dict[str, ModuleAnalysis] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def analyze(self, path: Path, source: str, tree: ast.Module) -> ModuleAnalysis:
        key = content_hash(source)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        analysis = analyze_module(path, source, tree)
        if len(self._entries) >= self.max_entries:
            self._entries.clear()  # wholesale reset; keys are hashes anyway
        self._entries[key] = analysis
        return analysis


#: The process-wide default cache `lint_paths` uses unless given one.
DEFAULT_CACHE = AnalysisCache()


class ProjectAnalysis:
    """The cross-module view rules query: symbols, types, call graph."""

    def __init__(self, modules: Sequence[tuple[str, ModuleAnalysis]]) -> None:
        #: display path -> per-module analysis
        self.by_path: dict[str, ModuleAnalysis] = dict(modules)
        #: dotted module name -> analysis
        self.by_module: dict[str, ModuleAnalysis] = {
            analysis.module_name: analysis for _, analysis in modules
        }
        #: "module.Class" -> ClassInfo, plus bare "Class" fallback index
        self.classes: dict[str, ClassInfo] = {}
        self._class_by_name: dict[str, list[tuple[str, ClassInfo]]] = {}
        #: "module.func" / "module.Class.method" -> (module, FunctionInfo)
        self.functions: dict[str, tuple[ModuleAnalysis, FunctionInfo]] = {}
        for _, analysis in modules:
            for cls in analysis.classes.values():
                fq = f"{analysis.module_name}.{cls.name}"
                self.classes[fq] = cls
                self._class_by_name.setdefault(cls.name, []).append((fq, cls))
            for info in analysis.functions.values():
                self.functions[f"{analysis.module_name}.{info.qualname}"] = (
                    analysis,
                    info,
                )
        self._held_cache: dict[str, bool] | None = None

    # -- name resolution -------------------------------------------------
    def resolve_name(self, module: ModuleAnalysis, name: str) -> str | None:
        """Resolve a dotted local name to a project-fq dotted name."""
        head, _, tail = name.partition(".")
        target = module.imports.get(head)
        if target is None:
            # module-local definition?
            if head in module.classes or head in module.functions:
                target = f"{module.module_name}.{head}"
            else:
                return None
        return f"{target}.{tail}" if tail else target

    def resolve_class(self, module: ModuleAnalysis, name: str | None) -> str | None:
        """Resolve dotted text to a known class fq name, if any."""
        if not name:
            return None
        resolved = self.resolve_name(module, name) or name
        if resolved in self.classes:
            return resolved
        # Re-exports ("repro.engine.BatchEngine" defined in
        # repro.engine.batch) and bare names: fall back to the simple
        # class-name index when it is unambiguous.
        tail = resolved.rsplit(".", 1)[-1]
        candidates = self._class_by_name.get(tail, [])
        if len(candidates) == 1:
            return candidates[0][0]
        return None

    # -- type queries ------------------------------------------------------
    def type_of_stem(
        self,
        module: ModuleAnalysis,
        func: FunctionInfo,
        stem: str,
        _seen: frozenset[str] = frozenset(),
    ) -> str | None:
        """Class fq of the object a simple name holds inside ``func``."""
        if stem in _seen:  # self-referential binding like ``x = x.next()``
            return None
        if stem == "self" and func.cls is not None:
            return self.resolve_class(module, func.cls)
        dotted_type = func.local_types.get(stem)
        if dotted_type is None:
            return None
        return self._resolve_type_text(
            module, func, dotted_type, _seen=_seen | {stem}
        )

    def _resolve_type_text(
        self,
        module: ModuleAnalysis,
        func: FunctionInfo,
        text: str,
        depth: int = 0,
        _seen: frozenset[str] = frozenset(),
    ) -> str | None:
        if depth > 4:
            return None
        direct = self.resolve_class(module, text)
        if direct is not None:
            return direct
        head, _, tail = text.partition(".")
        if not tail:
            return None
        # ``self._entry(...)`` -> method return annotation;
        # ``server.store`` -> attr type of server's class.
        base_cls_fq = (
            self.type_of_stem(module, func, head, _seen) if depth == 0 else None
        )
        if base_cls_fq is None:
            return None
        return self._member_type(base_cls_fq, tail, module, func, depth)

    def _member_type(
        self,
        cls_fq: str,
        member_path: str,
        module: ModuleAnalysis,
        func: FunctionInfo,
        depth: int,
    ) -> str | None:
        cls = self.classes.get(cls_fq)
        if cls is None:
            return None
        owner_module = self.by_module.get(cls_fq.rsplit(".", 1)[0], module)
        head, _, tail = member_path.partition(".")
        candidate: str | None = None
        if head in cls.attr_types:
            candidate = cls.attr_types[head]
        elif head in cls.methods and cls.methods[head].returns:
            candidate = cls.methods[head].returns
        if candidate is None:
            return None
        resolved = self.resolve_class(owner_module, candidate)
        if resolved is None:
            return None
        if not tail:
            return resolved
        return self._member_type(resolved, tail, owner_module, func, depth + 1)

    # -- call resolution ---------------------------------------------------
    def resolve_call(
        self, module: ModuleAnalysis, func: FunctionInfo, call: CallSite
    ) -> str | None:
        """Project-fq of the function/method a call site invokes.

        Returns ``module.func`` / ``module.Class.method`` for project
        definitions, the raw dotted import target for external calls
        (``time.sleep``), or ``None`` when unresolvable.
        """
        if call.callee is None:
            return None
        head, _, tail = call.callee.partition(".")
        if not tail:
            # Bare name: local function, imported symbol, or class ctor.
            if head in module.functions:
                return f"{module.module_name}.{head}"
            if head in module.classes:
                return f"{module.module_name}.{head}"
            return module.imports.get(head)
        # Method-ish chain: resolve the receiver's type when possible.
        receiver, _, method = call.callee.rpartition(".")
        receiver_cls = self._receiver_class(module, func, receiver)
        if receiver_cls is not None:
            resolved = self._lookup_method(receiver_cls, method)
            if resolved is not None:
                return resolved
        # Imported module attribute: time.sleep, socket.create_connection.
        resolved_name = self.resolve_name(module, call.callee)
        return resolved_name

    def _receiver_class(
        self, module: ModuleAnalysis, func: FunctionInfo, receiver: str
    ) -> str | None:
        head, _, tail = receiver.partition(".")
        base = self.type_of_stem(module, func, head)
        if base is None:
            return None
        if not tail:
            return base
        return self._member_type(base, tail, module, func, 0)

    def _lookup_method(self, cls_fq: str, method: str) -> str | None:
        """Find ``method`` on the class or its in-project bases."""
        seen: set[str] = set()
        queue = [cls_fq]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return f"{current}.{method}"
            owner_module = self.by_module.get(current.rsplit(".", 1)[0])
            if owner_module is None:
                continue
            for base in cls.bases:
                resolved = self.resolve_class(owner_module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    # -- held-context fixpoint --------------------------------------------
    def held_functions(self) -> dict[str, bool]:
        """Which functions only ever run while some lock is held.

        A function is *held* when its name ends in ``_locked`` (the
        codebase convention asserting "caller holds the lock") or when
        every known project call site of it is lexically inside a
        ``with <lock>:`` region or inside another held function.
        Functions with no known call sites are not held.
        """
        if self._held_cache is not None:
            return self._held_cache
        # call sites: callee fq -> list[(caller fq, under_lock: bool)]
        sites: dict[str, list[tuple[str, bool]]] = {}
        for caller_fq, (module, info) in self.functions.items():
            for call in info.calls:
                callee = self.resolve_call(module, info, call)
                if callee is None or callee not in self.functions:
                    continue
                sites.setdefault(callee, []).append(
                    (caller_fq, bool(call.lock_stems))
                )
        held: dict[str, bool] = {
            fq: info.name.endswith("_locked")
            for fq, (_, info) in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for fq in self.functions:
                if held[fq]:
                    continue
                call_sites = sites.get(fq)
                if not call_sites:
                    continue
                if all(
                    under_lock or held.get(caller, False)
                    for caller, under_lock in call_sites
                ):
                    held[fq] = True
                    changed = True
        self._held_cache = held
        return held
