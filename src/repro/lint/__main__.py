"""Entry point: ``python -m repro.lint [paths ...]``."""

from __future__ import annotations

import sys

from .cli import main

sys.exit(main())
