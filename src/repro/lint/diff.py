"""Changed-line extraction for diff-aware (``--changed-only``) linting.

The engine filters findings to lines a diff touched; this module turns
``git diff`` output into the ``{absolute posix path -> set of line
numbers}`` map the filter consumes.  The unified-diff parser is pure so
the diff-mode tests can feed it synthetic patches; only
:func:`git_changed_lines` shells out.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path

__all__ = ["ChangedLines", "git_changed_lines", "parse_unified_diff"]

#: ``path -> line numbers added/modified by the diff``.  A file that was
#: touched but contributed no new lines (pure deletion) maps to an empty
#: set, so "was this file changed at all?" stays answerable.
ChangedLines = dict[str, set[int]]

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@")


def parse_unified_diff(diff_text: str) -> dict[str, set[int]]:
    """New-side changed lines per file from a unified diff.

    Paths are returned exactly as the ``+++ b/<path>`` headers spell
    them (repo-relative for git); the caller anchors them to a root.
    Works with any context width, though ``--unified=0`` is cheapest.
    """
    changed: dict[str, set[int]] = {}
    current: set[int] | None = None
    new_line = 0
    for line in diff_text.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target.startswith("b/"):
                target = target[2:]
            if target == "/dev/null":  # deleted file
                current = None
                continue
            current = changed.setdefault(target, set())
            continue
        if current is None:
            continue
        match = _HUNK_RE.match(line)
        if match is not None:
            new_line = int(match.group("start"))
            continue
        if line.startswith("+") and not line.startswith("+++"):
            current.add(new_line)
            new_line += 1
        elif line.startswith("-") and not line.startswith("---"):
            continue  # old-side only; new-side cursor does not move
        elif not line.startswith("\\"):  # context line
            new_line += 1
    return changed


def git_changed_lines(ref: str, cwd: Path | None = None) -> ChangedLines:
    """Lines changed relative to ``ref``, keyed by absolute posix path.

    Includes both committed differences against ``ref`` and uncommitted
    working-tree edits (``git diff <ref>`` covers the union).  Raises
    ``RuntimeError`` when git is unavailable or the ref does not
    resolve — diff mode with a broken ref must fail loudly, not lint
    nothing and report success.
    """
    base = cwd or Path.cwd()
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=base,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--unified=0", "--no-color", ref, "--", "*.py"],
            cwd=base,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except FileNotFoundError as error:
        raise RuntimeError(f"git not available for --changed-only: {error}")
    except subprocess.CalledProcessError as error:
        detail = (error.stderr or "").strip() or f"exit {error.returncode}"
        raise RuntimeError(f"git diff {ref!r} failed: {detail}")
    root = Path(top)
    return {
        (root / rel).as_posix(): lines
        for rel, lines in parse_unified_diff(diff).items()
    }
