"""Driver: file discovery, parsing, suppressions, rule execution.

The engine walks the target paths, parses every ``.py`` file once into a
:class:`ModuleContext`, runs each rule's per-module ``check`` pass, then
gives every rule one project-wide ``finalize`` pass (for cross-file
invariants such as label-set consistency and API/doc drift).  Findings
are filtered against the per-file suppression tables before they reach
a reporter.

Suppression syntax (comments, parsed with :mod:`tokenize` so string
literals can never trigger them):

* ``# repro-lint: disable=RL001,RL005`` — trailing on a line suppresses
  those rules for findings reported on that exact line; ``disable=all``
  suppresses every rule on the line.
* ``# repro-lint: disable-file=RL004`` — anywhere in the file, on a
  line of its own or trailing, suppresses the rules file-wide.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .analysis import (
    DEFAULT_CACHE,
    AnalysisCache,
    ModuleAnalysis,
    ProjectAnalysis,
)
from .baseline import Baseline
from .diff import ChangedLines
from .rules import Rule, all_rules
from .violations import Violation

__all__ = [
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "discover_files",
    "lint_paths",
]

#: Pseudo-rule id used for files the parser rejects.
PARSE_RULE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract ``(line -> rule ids, file-wide rule ids)`` from comments."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for token in comments:
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = {
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        }
        if match.group("scope") == "disable-file":
            file_wide |= rules
        else:
            per_line.setdefault(token.start[0], set()).update(rules)
    return (
        {line: frozenset(rules) for line, rules in per_line.items()},
        frozenset(file_wide),
    )


@dataclass
class ModuleContext:
    """One parsed source file plus everything rules commonly need."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()
    #: content-addressed dataflow facts, attached by the engine before
    #: any rule runs (never ``None`` inside a rule's ``check``).
    analysis: ModuleAnalysis | None = field(default=None, repr=False)
    _constants: dict[str, str] | None = field(default=None, repr=False)

    @property
    def posix_path(self) -> str:
        """Forward-slash path for suffix matching regardless of platform."""
        return self.path.as_posix()

    def string_constants(self) -> dict[str, str]:
        """Module-level ``NAME = "literal"`` assignments, lazily indexed."""
        if self._constants is None:
            constants: dict[str, str] = {}
            for node in self.tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    constants[node.targets[0].id] = node.value.value
            self._constants = constants
        return self._constants

    def violation(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Violation:
        """Anchor a finding to an AST node of this module."""
        return Violation(
            rule_id=rule_id,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def suppressed(self, violation: Violation) -> bool:
        rules = self.line_suppressions.get(violation.line, frozenset())
        for table in (rules, self.file_suppressions):
            if violation.rule_id in table or "ALL" in table:
                return True
        return False


@dataclass
class ProjectContext:
    """Everything the engine parsed, handed to ``Rule.finalize``."""

    modules: list[ModuleContext]
    #: the cross-module resolver/call-graph view (never ``None`` inside
    #: ``finalize``; the default only eases direct construction in tests).
    analysis: ProjectAnalysis | None = None


@dataclass
class LintReport:
    """The engine's result: surviving findings plus bookkeeping."""

    violations: list[Violation]
    suppressed: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]
    #: findings acknowledged by the baseline file (not failures)
    baselined: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _display(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _load_module(path: Path) -> ModuleContext | Violation:
    display = _display(path)
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as error:
        return Violation(
            PARSE_RULE,
            display,
            1,
            1,
            f"not valid UTF-8 (byte offset {error.start}): {error.reason}",
        )
    except OSError as error:
        return Violation(PARSE_RULE, display, 1, 1, f"unreadable file: {error}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Violation(
            PARSE_RULE,
            display,
            error.lineno or 1,
            (error.offset or 0) + 1,
            f"syntax error: {error.msg}",
        )
    except ValueError as error:
        # ast.parse raises bare ValueError for e.g. null bytes in source.
        return Violation(PARSE_RULE, display, 1, 1, f"unparsable source: {error}")
    per_line, file_wide = _parse_suppressions(source)
    return ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=file_wide,
    )


def _select_rules(
    rules: Iterable[Rule] | None,
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> list[Rule]:
    chosen = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {rule_id.strip().upper() for rule_id in select}
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
    if ignore:
        dropped = {rule_id.strip().upper() for rule_id in ignore}
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Iterable[Rule] | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    changed_lines: ChangedLines | None = None,
    baseline: Baseline | None = None,
    cache: AnalysisCache | None = None,
) -> LintReport:
    """Run the (selected) rules over every ``.py`` file under ``paths``.

    ``changed_lines`` (diff mode) keeps only findings anchored on a
    changed line; every file is still parsed and analysed, because
    cross-file rules need the whole project to judge the changed part.
    ``baseline`` moves acknowledged findings into ``report.baselined``
    instead of ``violations``.  ``cache`` reuses per-module analyses by
    content hash (defaults to the process-wide cache).
    """
    active = _select_rules(rules, select, ignore)
    analysis_cache = cache if cache is not None else DEFAULT_CACHE
    modules: list[ModuleContext] = []
    findings: list[Violation] = []
    for path in discover_files(paths):
        loaded = _load_module(path)
        if isinstance(loaded, Violation):
            findings.append(loaded)
            continue
        loaded.analysis = analysis_cache.analyze(
            loaded.path, loaded.source, loaded.tree
        )
        modules.append(loaded)

    project = ProjectContext(
        modules=modules,
        analysis=ProjectAnalysis(
            [
                (module.display_path, module.analysis)
                for module in modules
                if module.analysis is not None
            ]
        ),
    )
    for module in modules:
        for rule in active:
            for violation in rule.check(module):
                if module.suppressed(violation):
                    findings.append(_mark_suppressed(violation))
                else:
                    findings.append(violation)
    by_path = {module.display_path: module for module in modules}
    for rule in active:
        for violation in rule.finalize(project):
            module = by_path.get(violation.path)
            if module is not None and module.suppressed(violation):
                findings.append(_mark_suppressed(violation))
            else:
                findings.append(violation)

    kept = sorted(
        (v for v in findings if not _is_suppressed(v)),
        key=Violation.sort_key,
    )
    suppressed = sorted(
        (_unmark(v) for v in findings if _is_suppressed(v)),
        key=Violation.sort_key,
    )
    if changed_lines is not None:
        resolved = {module.display_path: module.path for module in modules}
        kept = [
            v for v in kept if _in_changed_lines(v, resolved, changed_lines)
        ]
    baselined: list[Violation] = []
    if baseline is not None:
        remaining: list[Violation] = []
        for violation in kept:
            if baseline.matches(violation):
                baselined.append(violation)
            else:
                remaining.append(violation)
        kept = remaining
    return LintReport(
        violations=kept,
        suppressed=suppressed,
        files_checked=len(modules),
        rules_run=tuple(rule.rule_id for rule in active),
        baselined=baselined,
    )


def _in_changed_lines(
    violation: Violation,
    resolved_paths: dict[str, Path],
    changed: ChangedLines,
) -> bool:
    """Did the diff touch the line this finding is anchored on?

    Cross-file rules anchor a finding at the most relevant location,
    which may legitimately sit outside the edited hunk of the same
    file; diff mode still requires the anchor line itself to be new or
    modified, because that is the contract that makes PR lint output
    reviewable.  Parse errors (RL000) pass whenever their file changed
    at all.
    """
    path = resolved_paths.get(violation.path)
    key = (path if path is not None else Path(violation.path)).resolve().as_posix()
    lines = changed.get(key)
    if lines is None:
        return False
    if violation.rule_id == PARSE_RULE:
        return True
    return violation.line in lines


# Suppressed findings travel through the same list, tagged on the rule id
# so sorting and counting stay uniform until the report is assembled.
_SUPPRESSED_TAG = "suppressed:"


def _mark_suppressed(violation: Violation) -> Violation:
    return Violation(
        rule_id=_SUPPRESSED_TAG + violation.rule_id,
        path=violation.path,
        line=violation.line,
        col=violation.col,
        message=violation.message,
    )


def _is_suppressed(violation: Violation) -> bool:
    return violation.rule_id.startswith(_SUPPRESSED_TAG)


def _unmark(violation: Violation) -> Violation:
    return Violation(
        rule_id=violation.rule_id[len(_SUPPRESSED_TAG):],
        path=violation.path,
        line=violation.line,
        col=violation.col,
        message=violation.message,
    )


def iter_rule_ids() -> Iterator[str]:
    """Rule ids the default registry would run, in order."""
    for rule in all_rules():
        yield rule.rule_id
