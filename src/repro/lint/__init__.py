"""repro.lint — AST-based invariant checker for the repro codebase.

The reproduction's correctness rests on invariants that ordinary tests
only probe at runtime: seeded-RNG discipline (RL001), process-pool
worker picklability (RL002), event emission through the single sink so
counters and metrics never drift (RL003), metric naming and label-set
hygiene (RL004), no silently-swallowed errors (RL005), and parity
between the public ``__all__`` and ``docs/api.md`` (RL006).  This
package checks them statically — pure :mod:`ast`, no third-party
dependencies — so violations fail CI before review.

Usage::

    python -m repro.lint src/repro          # or: repro-lint / repro-csj lint
    python -m repro.lint --format json path/to/file.py
    python -m repro.lint --list-rules

Per-line suppression: ``# repro-lint: disable=RL005`` (trailing on the
flagged line); file-wide: ``# repro-lint: disable-file=RL004``.  See
``docs/lint.md`` for the rule catalogue.
"""

from __future__ import annotations

from .engine import (
    LintReport,
    ModuleContext,
    ProjectContext,
    discover_files,
    lint_paths,
)
from .report import json_report, text_report
from .rules import Rule, all_rules, get_rule, register, rule_ids
from .violations import Violation

__all__ = [
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "discover_files",
    "get_rule",
    "json_report",
    "lint_paths",
    "register",
    "rule_ids",
    "text_report",
]
