"""Skew-aware partitioning of a persistent catalog into shard catalogs.

The partitioner answers one planning question: *which communities must
live together so a fleet of independent CSJ shard servers can answer
any candidate pair locally?*  The candidate graph at the plan epsilon
(vertices = catalog keys, edges = pairs surviving the catalog's
indexed envelope screen) decides it — two communities that can ever
have nonzero similarity at ``epsilon' <= epsilon`` are connected, so
placing whole connected components keeps every live pair co-located.

Components are costed with the quadratic join model
``cost(u, v) = n_users(u) * n_users(v)`` (plus a linear enumeration
term per member, so thousands of cheap singletons still spread) and
bin-packed greedily onto shards, largest first (LPT).  One
mega-component would serialise the sweep under pure LPT, so *hot*
components — those whose pair cost exceeds a configurable fraction of
the ideal per-shard share — are split **by pair** in replication mode:
each candidate pair is assigned to one owner shard, both endpoints are
stored on that shard (communities replicate, pairs do not), and the
plan records the pair→owner map so the coordinator evaluates every
replicated pair exactly once.  This is the LSF-Join trade: bounded
data replication buys per-pair placement freedom under skew.

A small seeded sample of candidate pairs is optionally joined with the
screen method to calibrate the abstract cost units into seconds; the
calibration only annotates the plan's ``stats`` (assignment is scale
free), matching the sample-first planning of adaptive MapReduce
similarity joins.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..algorithms import get_algorithm
from ..catalog import PersistentCatalog
from ..core.errors import ConfigurationError, ValidationError
from ..engine.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["PartitionPlan", "ShardSpec", "plan_partition", "partition_catalog"]

#: Plan file name inside a partition output directory.
PLAN_FILENAME = "plan.json"

#: Communities registered per shard-db transaction during materialise.
_REGISTER_CHUNK = 256

#: Key separator in the serialised pair→owner map.  Safe as a
#: delimiter because the catalog rejects ``|`` in keys.
_PAIR_SEP = "|"


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a partition plan."""

    shard: int
    db: str
    keys: tuple[str, ...]
    cost: int


@dataclass(frozen=True)
class PartitionPlan:
    """The full output of one partitioning run.

    ``metadata`` and ``envelopes`` carry every key's size and stored
    min/max envelope so the coordinator can re-run the ratio filter and
    the envelope screen from the plan alone — no union catalog needed
    at query time.  ``pair_owners`` assigns each pair of a split (hot)
    component to exactly one shard; pairs of unsplit components are
    owned implicitly by any shard holding both endpoints.
    """

    epsilon: int
    n_shards: int
    shards: tuple[ShardSpec, ...]
    metadata: Mapping[str, tuple[int, int]]  # key -> (n_users, n_dims)
    envelopes: Mapping[str, tuple[tuple[int, ...], tuple[int, ...]]]
    pair_owners: Mapping[tuple[str, str], int]
    replicated: tuple[str, ...]
    stats: Mapping[str, object] = field(default_factory=dict)

    # -- lookups -------------------------------------------------------
    def shards_of(self, key: str) -> tuple[int, ...]:
        """Every shard holding ``key`` (ascending; empty if unknown)."""
        return tuple(
            spec.shard for spec in self.shards if key in self._key_sets[spec.shard]
        )

    @property
    def _key_sets(self) -> dict[int, frozenset[str]]:
        cached = self.__dict__.get("_key_sets_cache")
        if cached is None:
            cached = {
                spec.shard: frozenset(spec.keys) for spec in self.shards
            }
            object.__setattr__(self, "_key_sets_cache", cached)
        return cached

    def owner_of(self, first: str, second: str) -> int | None:
        """The shard that should evaluate the pair, or ``None``.

        Split-component pairs have an explicit owner; any other pair is
        owned by the lowest shard holding both endpoints.  ``None``
        means the plan never co-located the pair (possible only for
        epsilons above the plan epsilon).
        """
        pair = (first, second) if first <= second else (second, first)
        explicit = self.pair_owners.get(pair)
        if explicit is not None:
            return explicit
        common = set(self.shards_of(pair[0])) & set(self.shards_of(pair[1]))
        return min(common) if common else None

    def envelope_of(self, key: str) -> Envelope:
        mins, maxs = self.envelopes[key]
        return Envelope(
            mins=np.asarray(mins, dtype=np.int64),
            maxs=np.asarray(maxs, dtype=np.int64),
        )

    def size_of(self, key: str) -> int:
        return self.metadata[key][0]

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "epsilon": self.epsilon,
            "n_shards": self.n_shards,
            "shards": [
                {
                    "shard": spec.shard,
                    "db": spec.db,
                    "keys": list(spec.keys),
                    "cost": spec.cost,
                }
                for spec in self.shards
            ],
            "metadata": {
                key: {"n_users": users, "n_dims": dims}
                for key, (users, dims) in sorted(self.metadata.items())
            },
            "envelopes": {
                key: {"mins": list(mins), "maxs": list(maxs)}
                for key, (mins, maxs) in sorted(self.envelopes.items())
            },
            "pair_owners": {
                f"{first}{_PAIR_SEP}{second}": owner
                for (first, second), owner in sorted(self.pair_owners.items())
            },
            "replicated": list(self.replicated),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PartitionPlan":
        if payload.get("version") != 1:
            raise ValidationError(
                f"unsupported partition plan version {payload.get('version')!r}"
            )
        shards = tuple(
            ShardSpec(
                shard=int(entry["shard"]),
                db=str(entry["db"]),
                keys=tuple(entry["keys"]),
                cost=int(entry["cost"]),
            )
            for entry in payload["shards"]  # type: ignore[index]
        )
        metadata = {
            key: (int(value["n_users"]), int(value["n_dims"]))
            for key, value in payload["metadata"].items()  # type: ignore[union-attr]
        }
        envelopes = {
            key: (tuple(value["mins"]), tuple(value["maxs"]))
            for key, value in payload["envelopes"].items()  # type: ignore[union-attr]
        }
        pair_owners = {
            tuple(pair.split(_PAIR_SEP, 1)): int(owner)
            for pair, owner in payload["pair_owners"].items()  # type: ignore[union-attr]
        }
        return cls(
            epsilon=int(payload["epsilon"]),  # type: ignore[arg-type]
            n_shards=int(payload["n_shards"]),  # type: ignore[arg-type]
            shards=shards,
            metadata=metadata,
            envelopes=envelopes,
            pair_owners=pair_owners,  # type: ignore[arg-type]
            replicated=tuple(payload.get("replicated", ())),  # type: ignore[arg-type]
            stats=dict(payload.get("stats", {})),  # type: ignore[arg-type]
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "PartitionPlan":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def _pair_cost(metadata: Mapping[str, tuple[int, int]], pair: tuple[str, str]) -> int:
    return metadata[pair[0]][0] * metadata[pair[1]][0]


class _UnionFind:
    def __init__(self, items: Iterable[str]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: str, second: str) -> None:
        root_first, root_second = self.find(first), self.find(second)
        if root_first != root_second:
            # Deterministic representative: the smaller key wins.
            low, high = sorted((root_first, root_second))
            self._parent[high] = low


def _calibrate(
    catalog: PersistentCatalog,
    pairs: Sequence[tuple[str, str]],
    metadata: Mapping[str, tuple[int, int]],
    *,
    epsilon: int,
    screen_method: str,
    sample_pairs: int,
    seed: int,
) -> dict[str, object]:
    """Join a seeded pair sample to price the cost units in seconds."""
    if sample_pairs <= 0 or not pairs:
        return {"sampled_pairs": 0}
    rng = random.Random(seed)
    sample = sorted(rng.sample(list(pairs), min(sample_pairs, len(pairs))))
    screener = get_algorithm(screen_method, epsilon)
    total_cost = 0
    started = time.perf_counter()
    for first, second in sample:
        screener.join(catalog.get(first), catalog.get(second))
        total_cost += _pair_cost(metadata, (first, second))
    elapsed = time.perf_counter() - started
    return {
        "sampled_pairs": len(sample),
        "sample_cost": total_cost,
        "sample_seconds": round(elapsed, 6),
        "seconds_per_cost": (elapsed / total_cost) if total_cost else 0.0,
    }


def plan_partition(
    catalog: PersistentCatalog,
    n_shards: int,
    *,
    epsilon: int,
    hot_fraction: float = 1.0,
    replicate: bool = True,
    sample_pairs: int = 0,
    screen_method: str = "ap-minmax",
    seed: int = 7,
    candidate_pairs: Sequence[tuple[str, str]] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> PartitionPlan:
    """Plan a skew-aware ``n_shards``-way split of ``catalog``.

    ``epsilon`` is the *plan* epsilon: candidate pairs at any query
    epsilon up to it are guaranteed co-located on some shard.
    ``hot_fraction`` scales the hotness threshold (a component is hot
    when its pair cost exceeds ``hot_fraction`` times the ideal
    per-shard share); ``replicate=False`` disables splitting and falls
    back to pure LPT, which a skewed catalog will serialise — the
    benchmark measures exactly that contrast.  ``sample_pairs > 0``
    joins a seeded sample with ``screen_method`` to calibrate cost
    units into seconds (recorded in ``stats``).  ``candidate_pairs``
    short-circuits the catalog's candidate scan when the caller already
    computed it (the scan is the expensive step on large catalogs).
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")
    if not 0.0 < hot_fraction:
        raise ConfigurationError(
            f"hot_fraction must be > 0, got {hot_fraction}"
        )
    keys = catalog.keys()
    if not keys:
        raise ConfigurationError("cannot partition an empty catalog")
    metadata: dict[str, tuple[int, int]] = {}
    envelopes: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}
    for key in keys:
        record = catalog.metadata(key)
        metadata[key] = (record.n_users, record.n_dims)
        envelope = catalog.envelope(key)
        envelopes[key] = (
            tuple(int(v) for v in envelope.mins),
            tuple(int(v) for v in envelope.maxs),
        )
    if candidate_pairs is None:
        candidate_pairs = catalog.candidate_pairs(epsilon)
    calibration = _calibrate(
        catalog,
        candidate_pairs,
        metadata,
        epsilon=epsilon,
        screen_method=screen_method,
        sample_pairs=sample_pairs,
        seed=seed,
    )

    # Connected components of the candidate graph.
    union = _UnionFind(keys)
    for first, second in candidate_pairs:
        union.union(first, second)
    component_keys: dict[str, list[str]] = {}
    for key in keys:
        component_keys.setdefault(union.find(key), []).append(key)
    component_pairs: dict[str, list[tuple[str, str]]] = {
        root: [] for root in component_keys
    }
    for pair in candidate_pairs:
        component_pairs[union.find(pair[0])].append(pair)

    def component_cost(root: str) -> int:
        pair_sum = sum(
            _pair_cost(metadata, pair) for pair in component_pairs[root]
        )
        member_sum = sum(metadata[key][0] for key in component_keys[root])
        return pair_sum + member_sum

    costs = {root: component_cost(root) for root in component_keys}
    total_pair_cost = sum(
        _pair_cost(metadata, pair) for pair in candidate_pairs
    )
    hot_threshold = (
        hot_fraction * total_pair_cost / n_shards if n_shards > 1 else None
    )

    loads = [0] * n_shards
    shard_keys: list[set[str]] = [set() for _ in range(n_shards)]
    pair_owners: dict[tuple[str, str], int] = {}
    split_components = 0

    def least_loaded() -> int:
        return min(range(n_shards), key=lambda shard: (loads[shard], shard))

    # Largest component first (ties broken by smallest member key, so
    # the plan is a pure function of the catalog contents).
    ordered = sorted(
        component_keys, key=lambda root: (-costs[root], min(component_keys[root]))
    )
    for root in ordered:
        pairs = component_pairs[root]
        pair_sum = sum(_pair_cost(metadata, pair) for pair in pairs)
        hot = (
            replicate
            and hot_threshold is not None
            and len(pairs) >= 2
            and pair_sum > hot_threshold
        )
        if hot:
            split_components += 1
            for pair in sorted(
                pairs, key=lambda pair: (-_pair_cost(metadata, pair), pair)
            ):
                shard = least_loaded()
                pair_owners[pair] = shard
                shard_keys[shard].update(pair)
                loads[shard] += _pair_cost(metadata, pair)
            # Members with no surviving pair (none in a component built
            # from pairs, but singleton-safe) still need a home.
            for key in component_keys[root]:
                if not any(key in held for held in shard_keys):
                    shard = least_loaded()
                    shard_keys[shard].add(key)
                    loads[shard] += metadata[key][0]
        else:
            shard = least_loaded()
            shard_keys[shard].update(component_keys[root])
            loads[shard] += costs[root]

    placements: dict[str, int] = {}
    for held in shard_keys:
        for key in held:
            placements[key] = placements.get(key, 0) + 1
    replicated = tuple(
        sorted(key for key, count in placements.items() if count > 1)
    )
    if metrics is not None:
        metrics.inc("repro_shard_plans_total")
        extra = sum(count - 1 for count in placements.values())
        metrics.inc("repro_shard_replicas_total", extra)

    shards = tuple(
        ShardSpec(
            shard=shard,
            db=f"shard_{shard:03d}.db",
            keys=tuple(sorted(shard_keys[shard])),
            cost=loads[shard],
        )
        for shard in range(n_shards)
    )
    stats: dict[str, object] = {
        "communities": len(keys),
        "candidate_pairs": len(candidate_pairs),
        "components": len(component_keys),
        "split_components": split_components,
        "replicated_keys": len(replicated),
        "total_pair_cost": total_pair_cost,
        "shard_costs": list(loads),
        "imbalance": (
            max(loads) / (sum(loads) / n_shards) if sum(loads) else 1.0
        ),
        "calibration": calibration,
    }
    return PartitionPlan(
        epsilon=int(epsilon),
        n_shards=n_shards,
        shards=shards,
        metadata=metadata,
        envelopes=envelopes,
        pair_owners=pair_owners,
        replicated=replicated,
        stats=stats,
    )


def partition_catalog(
    catalog: PersistentCatalog,
    out_dir: str | Path,
    n_shards: int,
    *,
    epsilon: int,
    hot_fraction: float = 1.0,
    replicate: bool = True,
    sample_pairs: int = 0,
    screen_method: str = "ap-minmax",
    seed: int = 7,
    candidate_pairs: Sequence[tuple[str, str]] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> PartitionPlan:
    """Plan and materialise: per-shard SQLite catalogs plus ``plan.json``.

    Every shard database holds exactly its plan keys, with each
    community stored under (and renamed to) its catalog key, so a shard
    server ranks under the same names the union catalog does.
    """
    plan = plan_partition(
        catalog,
        n_shards,
        epsilon=epsilon,
        hot_fraction=hot_fraction,
        replicate=replicate,
        sample_pairs=sample_pairs,
        screen_method=screen_method,
        seed=seed,
        candidate_pairs=candidate_pairs,
        metrics=metrics,
    )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    import dataclasses as _dataclasses

    for spec in plan.shards:
        db_path = out / spec.db
        if db_path.exists():
            db_path.unlink()
        with PersistentCatalog(db_path) as shard_catalog:
            for start in range(0, len(spec.keys), _REGISTER_CHUNK):
                chunk = spec.keys[start : start + _REGISTER_CHUNK]
                batch = {}
                for key in chunk:
                    community = catalog.get(key)
                    if community.name != key:
                        community = _dataclasses.replace(community, name=key)
                    batch[key] = community
                shard_catalog.register_many(batch)
    plan.save(out / PLAN_FILENAME)
    return plan
