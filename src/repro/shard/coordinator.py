"""Distributed all-pairs top-k over a fleet of CSJ shard servers.

The coordinator re-drives the single-host catalog ranking of
:func:`repro.apps.top_k_pairs` with the expensive stages pushed onto
shards:

1. **Candidate scan** — every shard answers ``candidates`` from its
   local indexed envelope screen; the union (deduplicated across
   replicated components) equals the union catalog's surviving set,
   because the partitioner co-locates every candidate pair at plan
   epsilon.
2. **Screen** — each live pair has exactly one *owner* shard (the
   plan's pair→owner map for split hot components, the lowest common
   holder otherwise); owners evaluate their pairs in ranked
   ``join_batch`` responses.
3. **Merge** — the per-shard ranked streams plus a lazy zero-similarity
   tail (ratio-eligible pairs the envelopes killed, enumerated in key
   order, never materialised in full) meet in a bounded
   :func:`heapq.merge` that stops at the refinement-pool size.
4. **Refine** — pool survivors go back to their owners with the exact
   method; full :class:`~repro.core.types.CSJResult` payloads come
   back over the wire (JSON floats round-trip exactly), so the final
   ranking — pairs, similarities, orientation, tie-breaks — is
   byte-identical to the single-host ranking on the union catalog.

Failure handling is honest rather than heroic: per-shard deadlines and
bounded reconnect-retries ride on the serve layer's admission and
:class:`~repro.serve.ReconnectingClient`; when a shard stays down, its
exclusively-held communities drop out of the ranking universe, pairs
no surviving shard can evaluate are reported as *lost* (never silently
zero-scored), and the response names the missing shards.  A killed
distributed sweep resumes from a JSON-lines checkpoint the coordinator
writes as cells complete.
"""

from __future__ import annotations

import heapq
import itertools
import json
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..analysis.sweeps import SweepPoint
from ..apps.topk import PairScore, _pool_size, _ratio_ok, _validate, _zero_score
from ..catalog import CatalogRecord, PersistentCatalog
from ..core.errors import ConfigurationError, ReproError
from ..core.types import CSJResult
from ..engine.envelope import envelopes_separated, separation_matrix, stack_envelopes
from ..obs import MetricsRegistry

# Submodule-direct import on purpose: repro.serve.server imports
# repro.shard.metrics, which runs this module via the package init
# while serve.server is still half-built.  serve.client is always
# complete by then (serve/__init__ loads it first), so only the
# client may be imported here at module scope; ShardFleet pulls in
# ServerThread and friends lazily inside start().
from ..serve.client import ReconnectingClient, ServeError
from .partition import PLAN_FILENAME, PartitionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.server import ServeConfig, ServerThread

__all__ = [
    "ShardError",
    "ShardUnavailableError",
    "ShardTopK",
    "ShardSweep",
    "ShardCoordinator",
    "ShardFleet",
]


class ShardError(ReproError):
    """A distributed query could not be planned or completed."""


class ShardUnavailableError(ShardError):
    """Shards are down and the caller did not allow partial results."""

    def __init__(self, missing: Iterable[int]) -> None:
        self.missing = tuple(sorted(missing))
        super().__init__(
            f"shard(s) {list(self.missing)} unavailable after retries "
            "(pass allow_partial=True for a degraded ranking)"
        )


@dataclass(frozen=True)
class ShardTopK:
    """One distributed ranking, with its degradation honestly reported.

    ``missing`` names shards that stayed down; ``dropped_keys`` are
    communities every holder of which is missing (removed from the
    ranking universe); ``lost_pairs`` are ratio-eligible candidate
    pairs no surviving shard could evaluate (excluded from the ranking
    rather than scored zero).  A non-degraded response is
    byte-identical to the single-host ranking.
    """

    scores: tuple[PairScore, ...]
    k: int
    epsilon: int
    missing: tuple[int, ...] = ()
    dropped_keys: tuple[str, ...] = ()
    lost_pairs: tuple[tuple[str, str], ...] = ()
    stats: Mapping[str, object] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.missing or self.dropped_keys or self.lost_pairs)


@dataclass(frozen=True)
class ShardSweep:
    """One distributed epsilon sweep over a set of couples."""

    curves: Mapping[tuple[str, str], tuple[SweepPoint, ...]]
    resumed_cells: int
    missing: tuple[int, ...] = ()
    lost_cells: tuple[tuple[str, str, int], ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing or self.lost_cells)


class ShardCoordinator:
    """Fans ``topk`` / ``join`` / ``sweep`` over the shards of one plan.

    ``addresses[i]`` must serve shard ``i`` of ``plan`` (a CSJ server
    over that shard's catalog).  Each shard gets one
    :class:`~repro.serve.ReconnectingClient` with ``retries``
    redial-retries; ``deadline_ms`` is forwarded as the per-request
    latency budget so a wedged shard is bounded by the serve layer's
    deadline machinery rather than a coordinator-side timer.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        addresses: Sequence[tuple[str, int]],
        *,
        metrics: "MetricsRegistry | None" = None,
        deadline_ms: float | None = None,
        retries: int = 1,
        timeout: float | None = 30.0,
        batch_size: int = 4096,
    ) -> None:
        if len(addresses) != plan.n_shards:
            raise ConfigurationError(
                f"plan has {plan.n_shards} shards but {len(addresses)} "
                "addresses were given"
            )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.plan = plan
        # A private registry when none is shared: .inc is then a no-op
        # nobody reads, and every call site stays unconditional.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.deadline_ms = deadline_ms
        self.batch_size = int(batch_size)
        self._clients = [
            ReconnectingClient(host, port, timeout=timeout, retries=retries)
            for host, port in addresses
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, plan.n_shards),
            thread_name_prefix="repro-shard",
        )

    # -- plumbing ------------------------------------------------------
    def _request(self, shard: int, op: str, args: dict) -> dict:
        """One shard RPC with request/retry/failure accounting."""
        client = self._clients[shard]
        before = client.reconnects
        self.metrics.inc("repro_shard_requests_total")
        try:
            return client.request(op, args, deadline_ms=self.deadline_ms)
        except (ServeError, OSError):
            self.metrics.inc("repro_shard_failures_total")
            raise
        finally:
            self.metrics.inc("repro_shard_retries_total", client.reconnects - before)

    def _fanout(
        self, op: str, args: dict, shards: Iterable[int]
    ) -> tuple[dict[int, dict], set[int]]:
        """Issue one op to many shards concurrently; collect failures."""
        targets = sorted(shards)
        futures = {
            shard: self._executor.submit(self._request, shard, op, dict(args))
            for shard in targets
        }
        responses: dict[int, dict] = {}
        failed: set[int] = set()
        for shard, future in futures.items():
            try:
                responses[shard] = future.result()
            except (ServeError, OSError):
                failed.add(shard)
        return responses, failed

    # -- routing -------------------------------------------------------
    def _live_owner(
        self, first: str, second: str, missing: set[int]
    ) -> int | None:
        """The live shard that should evaluate a pair, if any."""
        pair = (first, second) if first <= second else (second, first)
        explicit = self.plan.pair_owners.get(pair)
        if explicit is not None and explicit not in missing:
            return explicit
        common = set(self.plan.shards_of(pair[0])) & set(
            self.plan.shards_of(pair[1])
        )
        live = common - missing
        return min(live) if live else None

    def _record(self, key: str) -> CatalogRecord:
        n_users, n_dims = self.plan.metadata[key]
        return CatalogRecord(
            key=key,
            name=key,
            category="",
            page_id=0,
            n_users=n_users,
            n_dims=n_dims,
            fingerprint="",
        )

    def _env_candidates(
        self, keys: Sequence[str], epsilon: int
    ) -> set[tuple[str, str]]:
        """Coordinator-side envelope screen from the plan's envelopes.

        The escape hatch for the two paths shard-local scans cannot
        cover: missing shards (whose pairs must be *identified* to be
        reported lost) and query epsilons above the plan epsilon
        (where co-location is no longer guaranteed).
        """
        by_dims: dict[int, list[str]] = {}
        for key in keys:
            by_dims.setdefault(self.plan.metadata[key][1], []).append(key)
        pairs: set[tuple[str, str]] = set()
        for group in by_dims.values():
            if len(group) < 2:
                continue
            mins, maxs = stack_envelopes(
                [self.plan.envelope_of(key) for key in group]
            )
            separated = separation_matrix(mins, maxs, int(epsilon))
            pairs.update(
                (group[i], group[j])
                for i in range(len(group))
                for j in range(i + 1, len(group))
                if not separated[i, j]
            )
        return pairs

    @staticmethod
    def _joinable_count(sizes: Sequence[int]) -> int:
        """Ratio-eligible pair count in O(C log C) — never O(C^2) space."""
        ordered = sorted(sizes)
        return sum(
            bisect_right(ordered, 2 * size) - index - 1
            for index, size in enumerate(ordered)
        )

    # -- join batches with re-routing ----------------------------------
    def _run_join_batches(
        self,
        assignments: dict[int, list[tuple[str, str]]],
        *,
        epsilon: int,
        method: str,
        options: Mapping[str, object],
        include_results: bool,
        missing: set[int],
    ) -> tuple[list[list[dict]], list[tuple[str, str]]]:
        """Run owner-grouped batches, re-routing around shard deaths.

        Returns the ranked response streams (one per request chunk)
        plus the pairs that became unroutable.  ``missing`` is updated
        in place with shards that died mid-phase.
        """
        streams: list[list[dict]] = []
        lost: list[tuple[str, str]] = []
        pending = {
            shard: list(pairs) for shard, pairs in assignments.items() if pairs
        }
        while pending:
            futures = {
                shard: self._executor.submit(
                    self._shard_batches,
                    shard,
                    pairs,
                    epsilon=epsilon,
                    method=method,
                    options=options,
                    include_results=include_results,
                )
                for shard, pairs in pending.items()
            }
            failed_pairs: list[tuple[str, str]] = []
            newly_failed: set[int] = set()
            for shard, future in futures.items():
                shard_streams, unprocessed = future.result()
                streams.extend(shard_streams)
                if unprocessed:
                    newly_failed.add(shard)
                    failed_pairs.extend(unprocessed)
            missing.update(newly_failed)
            pending = {}
            for pair in failed_pairs:
                owner = self._live_owner(pair[0], pair[1], missing)
                if owner is None:
                    lost.append(pair)
                else:
                    pending.setdefault(owner, []).append(pair)
        return streams, lost

    def _shard_batches(
        self,
        shard: int,
        pairs: list[tuple[str, str]],
        *,
        epsilon: int,
        method: str,
        options: Mapping[str, object],
        include_results: bool,
    ) -> tuple[list[list[dict]], list[tuple[str, str]]]:
        """All of one shard's chunks, stopping at the first failure."""
        streams: list[list[dict]] = []
        for start in range(0, len(pairs), self.batch_size):
            chunk = pairs[start : start + self.batch_size]
            args: dict[str, object] = {
                "pairs": [[first, second] for first, second in chunk],
                "epsilon": epsilon,
                "method": method,
            }
            if options:
                args["options"] = dict(options)
            if include_results:
                args["include_results"] = True
            try:
                response = self._request(shard, "join_batch", args)
            except (ServeError, OSError):
                return streams, pairs[start:]
            streams.append(response["pairs"])
        return streams, []

    # -- the distributed ranking ---------------------------------------
    def top_k(
        self,
        *,
        epsilon: int,
        k: int,
        screen_method: str = "ap-minmax",
        refine_method: str = "ex-minmax",
        screen_margin: float = 0.8,
        allow_partial: bool = False,
        **options: object,
    ) -> ShardTopK:
        """The k most similar pairs across the whole fleet.

        With every shard reachable the result is byte-identical —
        pairs, similarities, orientation, ranking order — to
        ``top_k_pairs(union_catalog, epsilon=..., k=...)``.  With
        shards down and ``allow_partial=True``, the degraded contract
        of :class:`ShardTopK` applies instead.
        """
        _validate([], k, screen_margin)
        epsilon = int(epsilon)
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be >= 0, got {epsilon}")

        # Phase 1: every shard's local candidate pairs.
        responses, missing = self._fanout(
            "candidates", {"epsilon": epsilon}, range(self.plan.n_shards)
        )
        if missing:
            if not allow_partial or not responses:
                raise ShardUnavailableError(missing)
        dropped = tuple(
            sorted(
                key
                for key in self.plan.metadata
                if all(shard in missing for shard in self.plan.shards_of(key))
            )
        )
        selected = sorted(set(self.plan.metadata) - set(dropped))
        universe = set(selected)
        records = {key: self._record(key) for key in selected}

        live: set[tuple[str, str]] = set()
        duplicates = 0
        for response in responses.values():
            for first, second in response["pairs"]:
                pair = (first, second)
                if pair in live:
                    duplicates += 1
                elif first in universe and second in universe:
                    live.add(pair)
        self.metrics.inc("repro_shard_pairs_deduped_total", duplicates)

        # Pairs shard-local scans cannot vouch for: identify losses
        # under missing shards, and verify co-location coverage for
        # epsilons above the plan epsilon.
        lost: set[tuple[str, str]] = set()
        if missing or epsilon > self.plan.epsilon:
            env_candidates = self._env_candidates(selected, epsilon)
            for pair in env_candidates - live:
                if not _ratio_ok(
                    records[pair[0]].n_users, records[pair[1]].n_users
                ):
                    continue
                if self._live_owner(pair[0], pair[1], missing) is None:
                    if not missing:
                        raise ShardError(
                            f"candidate pair {pair!r} at epsilon {epsilon} "
                            "is not co-located on any shard: the plan was "
                            f"built for epsilon <= {self.plan.epsilon}; "
                            "repartition with a larger plan epsilon"
                        )
                    lost.add(pair)

        live_pairs = sorted(
            pair
            for pair in live
            if _ratio_ok(records[pair[0]].n_users, records[pair[1]].n_users)
        )
        assignments: dict[int, list[tuple[str, str]]] = {}
        for pair in live_pairs:
            owner = self._live_owner(pair[0], pair[1], missing)
            if owner is None:
                lost.add(pair)
            else:
                assignments.setdefault(owner, []).append(pair)
        executable = [
            pair for pairs in assignments.values() for pair in pairs
        ]

        # Phase 2: the approximate screen, ranked shard-side.
        screen_streams, screen_lost = self._run_join_batches(
            assignments,
            epsilon=epsilon,
            method=screen_method,
            options=options,
            include_results=False,
            missing=missing,
        )
        lost.update(screen_lost)
        live_exec = set(executable) - lost

        # Phase 3: bounded k-way merge against the lazy zero tail.
        n_screened = self._joinable_count(
            [records[key].n_users for key in selected]
        ) - len(lost)

        def zero_tail() -> Iterable[tuple[float, str, str]]:
            for first, second in itertools.combinations(selected, 2):
                pair = (first, second)
                if pair in live_exec or pair in lost:
                    continue
                if not _ratio_ok(
                    records[first].n_users, records[second].n_users
                ):
                    continue
                yield (0.0, first, second)

        ranked_streams: list[Iterable[tuple[float, str, str]]] = [
            [
                (entry["similarity"], entry["first"], entry["second"])
                for entry in stream
                if (entry["first"], entry["second"]) not in lost
            ]
            for stream in screen_streams
        ]
        merged = heapq.merge(
            *ranked_streams,
            zero_tail(),
            key=lambda entry: (-entry[0], entry[1], entry[2]),
        )
        pool = list(itertools.islice(merged, _pool_size(n_screened, k, screen_margin)))
        self.metrics.inc("repro_shard_pairs_merged_total", len(pool))

        # Phase 4: exact refinement of the pool's live entries.
        refine_pairs = [
            (first, second)
            for _, first, second in pool
            if (first, second) in live_exec
        ]
        refine_assignments: dict[int, list[tuple[str, str]]] = {}
        for pair in refine_pairs:
            owner = self._live_owner(pair[0], pair[1], missing)
            if owner is None:
                lost.add(pair)
            else:
                refine_assignments.setdefault(owner, []).append(pair)
        refine_streams, refine_lost = self._run_join_batches(
            refine_assignments,
            epsilon=epsilon,
            method=refine_method,
            options=options,
            include_results=True,
            missing=missing,
        )
        lost.update(refine_lost)
        refined_by_pair = {
            (entry["first"], entry["second"]): entry
            for stream in refine_streams
            for entry in stream
        }

        refined: list[PairScore] = []
        for _, first, second in pool:
            pair = (first, second)
            entry = refined_by_pair.get(pair)
            if entry is not None:
                result = CSJResult.from_dict(entry["result"])
                name_b, name_a = (
                    (second, first) if result.swapped else (first, second)
                )
                refined.append(
                    PairScore(
                        name_b=name_b,
                        name_a=name_a,
                        similarity=result.similarity,
                        result=result,
                    )
                )
            elif pair in lost:
                continue  # honestly absent, never fabricated
            else:
                refined.append(
                    _zero_score(
                        records[first],
                        records[second],
                        method=refine_method,
                        epsilon=epsilon,
                    )
                )
        refined.sort(
            key=lambda score: (-score.similarity, score.name_b, score.name_a)
        )

        missing_tuple = tuple(sorted(missing))
        lost_tuple = tuple(sorted(lost))
        if missing_tuple or lost_tuple or dropped:
            self.metrics.inc("repro_shard_degraded_total")
            if not allow_partial:
                raise ShardUnavailableError(missing_tuple)
        return ShardTopK(
            scores=tuple(refined[:k]),
            k=k,
            epsilon=epsilon,
            missing=missing_tuple,
            dropped_keys=dropped,
            lost_pairs=lost_tuple,
            stats={
                "communities": len(selected),
                "candidate_pairs": len(live),
                "duplicates": duplicates,
                "executed_pairs": len(live_exec),
                "n_screened": n_screened,
                "pool": len(pool),
            },
        )

    # -- single joins --------------------------------------------------
    def join(
        self,
        first: str,
        second: str,
        *,
        epsilon: int,
        method: str = "ex-minmax",
        options: Mapping[str, object] | None = None,
    ) -> dict:
        """Join one couple on its owner shard (``join`` endpoint shape).

        A couple the plan's envelopes prove separated at ``epsilon``
        needs no shard at all — the zero result is synthesised from
        plan metadata, exactly like the catalog ranking's screened
        pairs.
        """
        epsilon = int(epsilon)
        for key in (first, second):
            if key not in self.plan.metadata:
                raise ShardError(f"community {key!r} is not in the plan")
        owner = self._live_owner(first, second, set())
        if owner is None:
            if envelopes_separated(
                self.plan.envelope_of(first),
                self.plan.envelope_of(second),
                epsilon,
            ):
                score = _zero_score(
                    self._record(first),
                    self._record(second),
                    method=method,
                    epsilon=epsilon,
                )
                return {
                    "disposition": "screened",
                    "result": score.result.to_dict(),
                }
            raise ShardError(
                f"pair ({first!r}, {second!r}) is not co-located on any "
                f"shard (plan epsilon {self.plan.epsilon}, query epsilon "
                f"{epsilon}); repartition with a larger plan epsilon"
            )
        args: dict[str, object] = {
            "first": first,
            "second": second,
            "epsilon": epsilon,
            "method": method,
        }
        if options:
            args["options"] = dict(options)
        return self._request(owner, "join", args)

    # -- distributed sweeps --------------------------------------------
    def sweep(
        self,
        pairs: Sequence[tuple[str, str]],
        epsilons: Sequence[int],
        *,
        method: str = "ex-minmax",
        options: Mapping[str, object] | None = None,
        checkpoint: str | Path | None = None,
        allow_partial: bool = False,
    ) -> ShardSweep:
        """Epsilon sweeps over many couples, with resumable checkpoints.

        Mirrors :func:`~repro.analysis.sweeps.catalog_epsilon_sweep`
        per couple: plan envelopes separated at ``max(epsilons)``
        synthesise the whole zero curve from metadata; every other
        ``(pair, epsilon)`` cell routes to the pair's owner shard.
        With ``checkpoint`` set, completed cells append to a JSON-lines
        file as they finish (torn trailing lines are tolerated), and a
        re-run skips them — a killed sweep resumes where it died.
        """
        if not epsilons:
            raise ConfigurationError("sweep needs at least one epsilon")
        if sorted(epsilons) != list(epsilons):
            raise ConfigurationError("epsilons must be given in ascending order")
        completed = self._load_checkpoint(checkpoint)
        resumed = 0
        missing: set[int] = set()
        lost_cells: list[tuple[str, str, int]] = []
        curves: dict[tuple[str, str], tuple[SweepPoint, ...]] = {}
        checkpoint_file = None
        if checkpoint is not None:
            path = Path(checkpoint)
            # A killed run can leave a torn final line with no newline;
            # start a fresh line so the append never glues onto it.
            torn_tail = (
                path.exists()
                and path.stat().st_size > 0
                and not path.read_bytes().endswith(b"\n")
            )
            checkpoint_file = open(path, "a", encoding="utf-8")
            if torn_tail:
                checkpoint_file.write("\n")
        try:
            for first, second in pairs:
                if envelopes_separated(
                    self.plan.envelope_of(first),
                    self.plan.envelope_of(second),
                    int(max(epsilons)),
                ):
                    curves[(first, second)] = tuple(
                        SweepPoint(
                            parameter=float(epsilon),
                            similarity_percent=0.0,
                            n_matched=0,
                            elapsed_seconds=0.0,
                        )
                        for epsilon in epsilons
                    )
                    continue
                points: list[SweepPoint] = []
                for epsilon in epsilons:
                    cell = (first, second, int(epsilon))
                    cached = completed.get(cell)
                    if cached is not None:
                        resumed += 1
                        points.append(cached)
                        continue
                    try:
                        response = self.join(
                            first,
                            second,
                            epsilon=int(epsilon),
                            method=method,
                            options=options,
                        )
                    except (ServeError, OSError):
                        owner = self._live_owner(first, second, missing)
                        if owner is not None:
                            missing.add(owner)
                        if not allow_partial:
                            raise
                        lost_cells.append(cell)
                        continue
                    result = response["result"]
                    point = SweepPoint(
                        parameter=float(epsilon),
                        similarity_percent=100.0 * float(result["similarity"]),
                        n_matched=len(result["pairs"]),
                        elapsed_seconds=float(result["elapsed_seconds"]),
                    )
                    points.append(point)
                    if checkpoint_file is not None:
                        checkpoint_file.write(
                            json.dumps(
                                {
                                    "first": first,
                                    "second": second,
                                    "epsilon": int(epsilon),
                                    "similarity_percent": point.similarity_percent,
                                    "n_matched": point.n_matched,
                                    "elapsed_seconds": point.elapsed_seconds,
                                },
                                separators=(",", ":"),
                            )
                            + "\n"
                        )
                        checkpoint_file.flush()
                curves[(first, second)] = tuple(points)
        finally:
            if checkpoint_file is not None:
                checkpoint_file.close()
        self.metrics.inc("repro_shard_resumed_total", resumed)
        if missing or lost_cells:
            self.metrics.inc("repro_shard_degraded_total")
        return ShardSweep(
            curves=curves,
            resumed_cells=resumed,
            missing=tuple(sorted(missing)),
            lost_cells=tuple(lost_cells),
        )

    @staticmethod
    def _load_checkpoint(
        checkpoint: str | Path | None,
    ) -> dict[tuple[str, str, int], SweepPoint]:
        completed: dict[tuple[str, str, int], SweepPoint] = {}
        if checkpoint is None or not Path(checkpoint).exists():
            return completed
        for line in Path(checkpoint).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a killed run
            try:
                cell = (
                    str(entry["first"]),
                    str(entry["second"]),
                    int(entry["epsilon"]),
                )
                completed[cell] = SweepPoint(
                    parameter=float(entry["epsilon"]),
                    similarity_percent=float(entry["similarity_percent"]),
                    n_matched=int(entry["n_matched"]),
                    elapsed_seconds=float(entry["elapsed_seconds"]),
                )
            except (KeyError, TypeError, ValueError):
                continue  # malformed line: recompute that cell
        return completed

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._executor.shutdown(wait=True)
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class ShardFleet:
    """An in-process fleet of shard servers over a partition directory.

    The self-hosting path of ``repro-csj shard topk`` and the test /
    benchmark harness: one :class:`~repro.serve.ServerThread` per shard
    database, each backed by a lazy
    :class:`~repro.serve.CatalogBackedStore`.  ``stop_shard`` kills one
    server (its catalog included) to exercise the degraded paths.
    """

    def __init__(
        self,
        plan_dir: str | Path,
        *,
        config: "ServeConfig | None" = None,
    ) -> None:
        self.plan_dir = Path(plan_dir)
        self.plan = PartitionPlan.load(self.plan_dir / PLAN_FILENAME)
        self._config = config
        self._threads: "list[ServerThread | None]" = []
        self._catalogs: list[PersistentCatalog | None] = []
        self.addresses: list[tuple[str, int]] = []

    def start(self) -> list[tuple[str, int]]:
        # Deferred import: see the module-scope note on the serve cycle.
        from ..serve.server import ServerThread
        from ..serve.store import CatalogBackedStore

        if self._threads:
            raise RuntimeError("fleet already started")
        for spec in self.plan.shards:
            catalog = PersistentCatalog(self.plan_dir / spec.db)
            store = CatalogBackedStore(catalog)
            thread = ServerThread(self._config, store=store)
            address = thread.start()
            self._catalogs.append(catalog)
            self._threads.append(thread)
            self.addresses.append(address)
        return list(self.addresses)

    def stop_shard(self, shard: int) -> None:
        """Kill one shard server (the shard-loss scenario)."""
        thread = self._threads[shard]
        if thread is not None:
            thread.stop()
            self._threads[shard] = None
        catalog = self._catalogs[shard]
        if catalog is not None:
            catalog.close()
            self._catalogs[shard] = None

    def stop(self) -> None:
        for shard in range(len(self._threads)):
            self.stop_shard(shard)
        self._threads = []
        self._catalogs = []
        self.addresses = []

    def coordinator(self, **kwargs: object) -> ShardCoordinator:
        """A coordinator bound to this fleet's addresses."""
        if not self.addresses:
            raise RuntimeError("fleet is not started")
        return ShardCoordinator(self.plan, self.addresses, **kwargs)  # type: ignore[arg-type]

    def __enter__(self) -> "ShardFleet":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()
