"""repro.shard — sharded catalogs and distributed all-pairs top-k.

Splits a :class:`~repro.catalog.PersistentCatalog` into per-shard
catalogs with skew-aware placement, then coordinates ``topk`` /
``join`` / ``sweep`` across one CSJ server per shard:

* :mod:`~repro.shard.partition` — candidate-graph partitioner:
  connected components of the plan-epsilon candidate graph are
  bin-packed by estimated join cost (greedy LPT), and hot components
  that would serialise a sweep are split pair-wise across shards with
  replicated endpoints and explicit pair ownership;
* :mod:`~repro.shard.coordinator` — fan-out coordinator whose merged
  ranking is byte-identical to the single-host
  :func:`~repro.apps.top_k_pairs` on the union catalog, with honest
  degraded responses (named missing shards, dropped keys, lost pairs)
  when shards stay down, and JSONL-checkpointed resumable sweeps;
* :mod:`~repro.shard.metrics` — the ``repro_shard_*`` counter family.

See ``docs/sharding.md`` for the full design.
"""

from .coordinator import (
    ShardCoordinator,
    ShardError,
    ShardFleet,
    ShardSweep,
    ShardTopK,
    ShardUnavailableError,
)
from .metrics import SHARD_COUNTERS, init_shard_metrics
from .partition import (
    PLAN_FILENAME,
    PartitionPlan,
    ShardSpec,
    partition_catalog,
    plan_partition,
)

__all__ = [
    # partitioner
    "PLAN_FILENAME",
    "PartitionPlan",
    "ShardSpec",
    "plan_partition",
    "partition_catalog",
    # coordinator
    "ShardCoordinator",
    "ShardFleet",
    "ShardTopK",
    "ShardSweep",
    "ShardError",
    "ShardUnavailableError",
    # metrics
    "SHARD_COUNTERS",
    "init_shard_metrics",
]
