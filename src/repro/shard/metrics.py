"""Metric family of the sharding subsystem.

Kept in its own dependency-light module so the serve layer and the CLI
can zero-initialise the ``repro_shard_*`` family without importing the
coordinator (which itself imports the serve client — the import would
otherwise be circular).  Counter semantics are documented in
``docs/sharding.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["SHARD_COUNTERS", "init_shard_metrics"]

#: Counter family of the sharding layer, zero-initialised at every
#: metrics init site so stats/scrapes expose the series before the
#: first partition or distributed query.
SHARD_COUNTERS = (
    "repro_shard_plans_total",
    "repro_shard_replicas_total",
    "repro_shard_requests_total",
    "repro_shard_retries_total",
    "repro_shard_failures_total",
    "repro_shard_pairs_deduped_total",
    "repro_shard_pairs_merged_total",
    "repro_shard_degraded_total",
    "repro_shard_resumed_total",
)


def init_shard_metrics(metrics: "MetricsRegistry") -> None:
    """Create the ``repro_shard_*`` family at zero in ``metrics``."""
    for name in SHARD_COUNTERS:
        metrics.inc(name, 0)
