"""Incremental community maintenance.

The paper's user vectors are *living* aggregates: "a user constantly
consumes products, movies, or songs ... and the associated counters to
those categories are increased" (Section 1.1).  A production deployment
therefore needs communities that absorb like events, subscriptions and
unsubscriptions between CSJ runs.  :class:`IncrementalCommunity` is that
mutable counterpart of the frozen :class:`~repro.core.types.Community`:
cheap point updates, O(1) snapshot versioning, and a `snapshot()` that
produces an immutable community for joining.
"""

from __future__ import annotations

import numpy as np

from .errors import ValidationError
from .types import Community, as_counter_matrix

__all__ = ["IncrementalCommunity"]


class IncrementalCommunity:
    """A mutable community that absorbs like events over time.

    Parameters
    ----------
    name / category / page_id:
        Same metadata as :class:`~repro.core.types.Community`.
    n_dims:
        Number of category dimensions; fixed for the lifetime.
    vectors:
        Optional initial user matrix (copied).

    Users are addressed by stable integer ids assigned at subscription
    time; unsubscribed users keep their id reserved (ids are never
    reused) so external references stay valid.
    """

    def __init__(
        self,
        name: str,
        n_dims: int,
        *,
        category: str = "",
        page_id: int = 0,
        vectors: object | None = None,
    ) -> None:
        if n_dims < 1:
            raise ValidationError(f"n_dims must be >= 1, got {n_dims}")
        self.name = name
        self.category = category
        self.page_id = page_id
        self._n_dims = int(n_dims)
        self._rows: dict[int, np.ndarray] = {}
        self._next_id = 0
        self._version = 0
        if vectors is not None:
            matrix = as_counter_matrix(vectors)
            if matrix.shape[1] != self._n_dims:
                raise ValidationError(
                    f"initial vectors have d={matrix.shape[1]}, expected {n_dims}"
                )
            for row in matrix:
                self._rows[self._next_id] = row.copy()
                self._next_id += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_dims(self) -> int:
        return self._n_dims

    @property
    def n_users(self) -> int:
        """Current subscriber count (the brand's commercial value)."""
        return len(self._rows)

    def __len__(self) -> int:
        return self.n_users

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation."""
        return self._version

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._rows

    def user_ids(self) -> list[int]:
        """Active user ids in subscription order."""
        return sorted(self._rows)

    def profile(self, user_id: int) -> np.ndarray:
        """A copy of one user's counter vector."""
        try:
            return self._rows[user_id].copy()
        except KeyError:
            raise ValidationError(
                f"user {user_id} is not subscribed to {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def subscribe(self, profile: object | None = None) -> int:
        """Add a subscriber; returns its stable user id."""
        if profile is None:
            row = np.zeros(self._n_dims, dtype=np.int64)
        else:
            row = as_counter_matrix(np.asarray(profile).reshape(1, -1))[0].copy()
            if row.shape[0] != self._n_dims:
                raise ValidationError(
                    f"profile has d={row.shape[0]}, expected {self._n_dims}"
                )
        user_id = self._next_id
        self._rows[user_id] = row
        self._next_id += 1
        self._version += 1
        return user_id

    def unsubscribe(self, user_id: int) -> None:
        """Remove a subscriber; its id is never reused."""
        if user_id not in self._rows:
            raise ValidationError(
                f"user {user_id} is not subscribed to {self.name!r}"
            )
        del self._rows[user_id]
        self._version += 1

    def record_like(self, user_id: int, dimension: int, count: int = 1) -> None:
        """Increase one counter: the user liked ``count`` posts of a
        category (counters are aggregates, so they never decrease)."""
        if count <= 0:
            raise ValidationError(f"like count must be >= 1, got {count}")
        if not 0 <= dimension < self._n_dims:
            raise ValidationError(
                f"dimension {dimension} out of range [0, {self._n_dims})"
            )
        if user_id not in self._rows:
            raise ValidationError(
                f"user {user_id} is not subscribed to {self.name!r}"
            )
        self._rows[user_id][dimension] += count
        self._version += 1

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self, *, name: str | None = None) -> Community:
        """Freeze the current state into an immutable Community.

        Row ``k`` of the snapshot corresponds to ``user_ids()[k]``.
        Raises if the community is empty (a join needs users).
        """
        if not self._rows:
            raise ValidationError(
                f"community {self.name!r} has no subscribers to snapshot"
            )
        ordered = self.user_ids()
        matrix = np.stack([self._rows[user_id] for user_id in ordered])
        return Community(
            name=name if name is not None else self.name,
            vectors=matrix,
            category=self.category,
            page_id=self.page_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalCommunity(name={self.name!r}, users={self.n_users}, "
            f"dims={self._n_dims}, version={self._version})"
        )
