"""Incremental delta-join maintenance over live like-streams.

The paper defines CSJ similarity over static profile snapshots, but the
counters it joins are *living* aggregates (Section 1.1): every like
bumps one cell of one user vector.  Re-running the full join after each
like throws away almost all of the previous run's work — a single
counter delta can only flip the epsilon status of pairs involving the
touched user, and it can change the maximum-matching size by at most
one in each direction.

:class:`DeltaJoinMaintainer` exploits both facts.  It holds the last
committed join state for one couple — the candidate bipartite graph
(every pair within per-dimension epsilon) and a maximum one-to-one
matching over it — and, on a counter delta:

1. **Window gate** — a like moving ``b[t]`` from ``v`` to ``v + c``
   changes dimension-``t`` status only for partners whose value lies in
   the symmetric difference of the windows ``[v - eps, v + eps]`` and
   ``[v + c - eps, v + c + eps]``.  If that difference misses the other
   community's per-dimension value range entirely, the candidate graph
   is untouched and the delta costs O(1).
2. **Row recheck** — otherwise only the touched user's row is
   rechecked: one O(n) column scan finds the partners whose dim-``t``
   status flipped, and only those few pairs pay the full O(d)
   comparison.
3. **Augmenting-path repair** — edge insertions/removals around one
   vertex leave the maintained matching within two augmentations of
   maximum, so a couple of Hopcroft–Karp phases (each O(V + E), started
   from the *current* matching) restore it.  A full join would pay the
   O(|B|·|A|·d) candidate enumeration again.

Equivalence contract
--------------------

The maintained state is, after every delta, *byte-identical* to a fresh
full join of the current snapshots in every path-independent field:
``similarity``, ``n_matched`` (maximum-matching cardinality), ``events``
(MATCH = candidate edges, NO MATCH = the rest — exactly the accounting
of the ``ex-baseline`` numpy engine), ``size_b``/``size_a``/``p``.  The
reference computation is::

    ExBaseline(epsilon, matcher="hopcroft_karp").join(first, second)

The matched *pairs* are one maximum matching among possibly many, so
pair lists may legitimately differ between the delta and full paths;
the differential harness in ``tests/test_delta.py`` pins down exactly
this contract on replayed mutation streams.

Structural changes (subscribe / unsubscribe) re-shape the matrices and
can flip the ``B``/``A`` orientation, so they are handled by
:meth:`DeltaJoinMaintainer.rebuild` — the serving layer discards and
rebuilds maintainers when a community's membership changes.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from .errors import ValidationError
from .matching import enumerate_candidate_pairs
from .types import Community, CSJResult, EventCounts, MatchedPair
from .validation import validate_epsilon, validate_pair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["DeltaJoinMaintainer", "DeltaStats"]

#: Sides accepted by :meth:`DeltaJoinMaintainer.record_like`, named after
#: the constructor arguments (not the oriented B/A roles).
_SIDES = ("first", "second")

_FREE = -1


class DeltaStats:
    """Counters of one maintainer's life: what the delta path saved."""

    __slots__ = (
        "updates",
        "skipped",
        "pairs_rechecked",
        "edges_added",
        "edges_removed",
        "augment_phases",
        "rebuilds",
        "repair_seconds",
    )

    def __init__(self) -> None:
        self.updates = 0
        self.skipped = 0
        self.pairs_rechecked = 0
        self.edges_added = 0
        self.edges_removed = 0
        self.augment_phases = 0
        self.rebuilds = 0
        self.repair_seconds = 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "updates": self.updates,
            "skipped": self.skipped,
            "pairs_rechecked": self.pairs_rechecked,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "augment_phases": self.augment_phases,
            "rebuilds": self.rebuilds,
            "repair_seconds": round(self.repair_seconds, 6),
        }


class DeltaJoinMaintainer:
    """Maintains one couple's exact CSJ join under counter deltas.

    Parameters
    ----------
    first / second:
        The couple, in caller order; orientation to the paper's
        ``(B, A)`` convention happens internally (``swapped`` records a
        reversal, exactly as in a full join).
    epsilon:
        Per-dimension absolute-difference threshold.
    enforce_size_ratio:
        Apply the ``ceil(|A|/2) <= |B| <= |A|`` rule at (re)build time.

    Attributes
    ----------
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when set,
        deltas emit the ``repro_delta_*`` family.  Assignment follows
        the :class:`~repro.algorithms.base.CSJAlgorithm` convention:
        ``None`` (the default) keeps the fast path uninstrumented.
    """

    metrics: "MetricsRegistry | None" = None

    def __init__(
        self,
        first: Community,
        second: Community,
        epsilon: int,
        *,
        enforce_size_ratio: bool = True,
    ) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self.enforce_size_ratio = bool(enforce_size_ratio)
        self.stats = DeltaStats()
        self.rebuild(first, second)

    # ------------------------------------------------------------------
    # (re)build
    # ------------------------------------------------------------------
    def rebuild(self, first: Community, second: Community) -> None:
        """Recompute the full join state from fresh snapshots.

        The fallback for structural changes: subscriptions and
        unsubscriptions re-shape the matrices (and may flip the B/A
        orientation), so local repair does not apply.
        """
        community_b, community_a, swapped = validate_pair(
            first,
            second,
            auto_orient=True,
            enforce_size_ratio=self.enforce_size_ratio,
        )
        self.swapped = swapped
        # Mutable working copies owned by the maintainer; the source
        # snapshots stay frozen.
        self._vectors_b = community_b.vectors.astype(np.int64, copy=True)
        self._vectors_a = community_a.vectors.astype(np.int64, copy=True)
        self.names = (first.name, second.name)
        n_b, n_a = len(self._vectors_b), len(self._vectors_a)
        self._adj_b: list[set[int]] = [set() for _ in range(n_b)]
        self._adj_a: list[set[int]] = [set() for _ in range(n_a)]
        for b_index, a_index in enumerate_candidate_pairs(
            self._vectors_b, self._vectors_a, self.epsilon
        ):
            self._adj_b[b_index].add(a_index)
            self._adj_a[a_index].add(b_index)
        self._n_edges = sum(len(partners) for partners in self._adj_b)
        # Stale-bound envelopes for the window gate: counters only grow,
        # so the recorded minimum stays a sound lower bound forever and
        # the maximum is maintained on every delta.
        self._mins_b = self._vectors_b.min(axis=0)
        self._maxs_b = self._vectors_b.max(axis=0)
        self._mins_a = self._vectors_a.min(axis=0)
        self._maxs_a = self._vectors_a.max(axis=0)
        self._match_of_b = [_FREE] * n_b
        self._match_of_a = [_FREE] * n_a
        self._n_matched = 0
        self._augment_to_maximum()
        self.stats.rebuilds += 1
        if self.metrics is not None:
            self.metrics.inc("repro_delta_rebuilds_total")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def size_b(self) -> int:
        return len(self._vectors_b)

    @property
    def size_a(self) -> int:
        return len(self._vectors_a)

    @property
    def n_matched(self) -> int:
        """Cardinality of the maintained maximum matching."""
        return self._n_matched

    @property
    def n_edges(self) -> int:
        """Candidate-graph edge count (pairs within epsilon)."""
        return self._n_edges

    @property
    def similarity(self) -> float:
        """Eq. (1) over the maintained maximum matching (p = 1)."""
        if self.size_b == 0:
            return 0.0
        return self._n_matched / self.size_b

    @property
    def events(self) -> EventCounts:
        """Pairing events of the equivalent full ``ex-baseline`` run.

        The numpy engine emits one MATCH per candidate edge and one NO
        MATCH for every other ``(b, a)`` combination — both are pure
        functions of the candidate graph, so the maintained counts stay
        byte-identical to a recompute.
        """
        return EventCounts(
            match=self._n_edges,
            no_match=self.size_b * self.size_a - self._n_edges,
        )

    def matched_pairs(self) -> list[tuple[int, int]]:
        """The maintained matching as sorted ``(b, a)`` row pairs."""
        return sorted(
            (b, a) for b, a in enumerate(self._match_of_b) if a != _FREE
        )

    def result(self) -> CSJResult:
        """Package the maintained state as a :class:`CSJResult`.

        ``method``/``exact``/``similarity``/``events`` mirror the
        reference ``ExBaseline(matcher="hopcroft_karp")`` join;
        ``engine`` is ``"delta"`` so provenance stays visible.
        """
        return CSJResult(
            method="ex-baseline",
            exact=True,
            size_b=self.size_b,
            size_a=self.size_a,
            epsilon=self.epsilon,
            pairs=[MatchedPair(b, a) for b, a in self.matched_pairs()],
            events=self.events,
            elapsed_seconds=self.stats.repair_seconds,
            engine="delta",
            swapped=self.swapped,
        )

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def record_like(
        self, side: str, row: int, dimension: int, count: int = 1
    ) -> bool:
        """Absorb one like delta; returns True when edges changed.

        ``side`` names the constructor argument (``"first"`` or
        ``"second"``) the touched user belongs to; ``row`` is the user's
        row index in that community's snapshot matrix.  ``count`` must
        be positive — counters are aggregates and never decrease, and a
        zero delta is a caller bug (see
        :meth:`~repro.core.incremental.IncrementalCommunity.record_like`).
        """
        if side not in _SIDES:
            raise ValidationError(
                f"side must be one of {_SIDES}, got {side!r}"
            )
        if not isinstance(count, int) or isinstance(count, bool) or count <= 0:
            raise ValidationError(
                f"like delta count must be a positive integer, got {count!r}"
            )
        touched_b = (side == "first") != self.swapped
        vectors = self._vectors_b if touched_b else self._vectors_a
        others = self._vectors_a if touched_b else self._vectors_b
        if not 0 <= row < len(vectors):
            raise ValidationError(
                f"row {row} out of range [0, {len(vectors)}) on side {side!r}"
            )
        if not 0 <= dimension < vectors.shape[1]:
            raise ValidationError(
                f"dimension {dimension} out of range [0, {vectors.shape[1]})"
            )
        started = time.perf_counter()
        self.stats.updates += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("repro_delta_updates_total")
        epsilon = self.epsilon
        old = int(vectors[row, dimension])
        new = old + count
        changed = self._apply_value(
            touched_b, row, dimension, old, new, others, epsilon
        )
        elapsed = time.perf_counter() - started
        self.stats.repair_seconds += elapsed
        if metrics is not None:
            metrics.observe("repro_delta_repair_seconds", elapsed)
        return changed

    def _apply_value(
        self,
        touched_b: bool,
        row: int,
        dimension: int,
        old: int,
        new: int,
        others: np.ndarray,
        epsilon: int,
    ) -> bool:
        vectors = self._vectors_b if touched_b else self._vectors_a
        maxs = self._maxs_b if touched_b else self._maxs_a
        other_mins = self._mins_a if touched_b else self._mins_b
        other_maxs = self._maxs_a if touched_b else self._maxs_b

        vectors[row, dimension] = new
        if new > maxs[dimension]:
            maxs[dimension] = new

        # Window gate: partners lose dim status on [old-e, new-e-1] and
        # gain it on [old+e+1, new+e].  When neither interval meets the
        # other side's (conservative) value range, no pair status can
        # flip anywhere and the graph is provably unchanged.
        lost_lo, lost_hi = old - epsilon, new - epsilon - 1
        gain_lo, gain_hi = old + epsilon + 1, new + epsilon
        range_lo = int(other_mins[dimension])
        range_hi = int(other_maxs[dimension])
        if (lost_hi < range_lo or lost_lo > range_hi) and (
            gain_hi < range_lo or gain_lo > range_hi
        ):
            self.stats.skipped += 1
            if self.metrics is not None:
                self.metrics.inc("repro_delta_skips_total")
            return False

        # Column scan: only partners inside the symmetric difference of
        # the two windows flipped their dim-`dimension` status.
        column = others[:, dimension]
        affected = np.flatnonzero(
            ((column >= lost_lo) & (column <= lost_hi))
            | ((column >= gain_lo) & (column <= gain_hi))
        )
        if affected.size == 0:
            self.stats.skipped += 1
            if self.metrics is not None:
                self.metrics.inc("repro_delta_skips_total")
            return False

        # Full per-dimension recheck, but only for the flipped partners.
        self.stats.pairs_rechecked += int(affected.size)
        if self.metrics is not None:
            self.metrics.inc(
                "repro_delta_pairs_rechecked_total", int(affected.size)
            )
        profile = vectors[row]
        now_within = (
            np.abs(others[affected] - profile) <= epsilon
        ).all(axis=1)

        adjacency = self._adj_b[row] if touched_b else self._adj_a[row]
        added: list[int] = []
        removed: list[int] = []
        for partner, within in zip(affected.tolist(), now_within.tolist()):
            if within and partner not in adjacency:
                added.append(partner)
            elif not within and partner in adjacency:
                removed.append(partner)
        if not added and not removed:
            return False

        if touched_b:
            self._update_edges(row, added, removed)
        else:
            for b_row in removed:
                self._update_edges(b_row, [], [row])
            for b_row in added:
                self._update_edges(b_row, [row], [])
        self._augment_to_maximum()
        return True

    def _update_edges(
        self, b_row: int, added: list[int], removed: list[int]
    ) -> None:
        """Apply edge changes around one B vertex, dropping dead matches."""
        for a_row in removed:
            self._adj_b[b_row].discard(a_row)
            self._adj_a[a_row].discard(b_row)
            self._n_edges -= 1
            if self._match_of_b[b_row] == a_row:
                self._match_of_b[b_row] = _FREE
                self._match_of_a[a_row] = _FREE
                self._n_matched -= 1
        for a_row in added:
            self._adj_b[b_row].add(a_row)
            self._adj_a[a_row].add(b_row)
            self._n_edges += 1
        if self.metrics is not None:
            if added:
                self.metrics.inc("repro_delta_edges_added_total", len(added))
            if removed:
                self.metrics.inc(
                    "repro_delta_edges_removed_total", len(removed)
                )
        self.stats.edges_added += len(added)
        self.stats.edges_removed += len(removed)

    # ------------------------------------------------------------------
    # augmenting-path repair
    # ------------------------------------------------------------------
    def _augment_to_maximum(self) -> None:
        """Hopcroft–Karp phases from the *current* matching.

        Unlike the from-scratch variant in :mod:`repro.core.matching`,
        this starts from whatever matching survived the delta.  After a
        single-vertex edge change the matching is within two
        augmentations of maximum, so the loop runs at most three phases
        (the last one proving maximality) — each O(V + E).
        """
        match_of_b = self._match_of_b
        match_of_a = self._match_of_a
        adj_b = self._adj_b
        n_b = len(adj_b)
        infinity = float("inf")
        while True:
            self.stats.augment_phases += 1
            if self.metrics is not None:
                self.metrics.inc("repro_delta_augment_phases_total")
            # BFS layering from every free B vertex at once.
            distances = [infinity] * n_b
            queue: deque[int] = deque()
            for b in range(n_b):
                if match_of_b[b] == _FREE:
                    distances[b] = 0
                    queue.append(b)
            reachable_free = False
            while queue:
                b = queue.popleft()
                for a in adj_b[b]:
                    partner = match_of_a[a]
                    if partner == _FREE:
                        reachable_free = True
                    elif distances[partner] == infinity:
                        distances[partner] = distances[b] + 1
                        queue.append(partner)
            if not reachable_free:
                return

            def dfs(b: int) -> bool:
                for a in adj_b[b]:
                    partner = match_of_a[a]
                    if partner == _FREE or (
                        distances[partner] == distances[b] + 1 and dfs(partner)
                    ):
                        match_of_b[b] = a
                        match_of_a[a] = b
                        return True
                distances[b] = infinity
                return False

            for b in range(n_b):
                if match_of_b[b] == _FREE and dfs(b):
                    self._n_matched += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaJoinMaintainer(couple={self.names!r}, "
            f"epsilon={self.epsilon}, edges={self._n_edges}, "
            f"matched={self._n_matched})"
        )
