"""Input validation for the CSJ operator.

The CSJ definition (Section 3) imposes two structural constraints that
are enforced here before any algorithm runs:

* both communities share the same dimensionality ``d``;
* ``ceil(|A|/2) <= |B| <= |A|`` — otherwise the smaller community is at
  risk of being a near-subset of the larger and the similarity score is
  not meaningful.

The paper's convention is that ``B`` denotes the less-followed community
and ``A`` the more-followed one; :func:`orient_pair` re-orders arbitrary
inputs to that convention.
"""

from __future__ import annotations

import math

from .errors import DimensionMismatchError, SizeRatioError, ValidationError
from .types import Community

__all__ = [
    "check_dimensions",
    "check_size_ratio",
    "orient_pair",
    "validate_epsilon",
    "validate_pair",
]


def check_dimensions(community_b: Community, community_a: Community) -> None:
    """Raise :class:`DimensionMismatchError` unless both share ``d``."""
    if community_b.n_dims != community_a.n_dims:
        raise DimensionMismatchError(community_b.n_dims, community_a.n_dims)


def check_size_ratio(community_b: Community, community_a: Community) -> None:
    """Enforce ``ceil(|A|/2) <= |B| <= |A|`` from the CSJ definition."""
    size_b, size_a = community_b.n_users, community_a.n_users
    if size_b > size_a or size_b < math.ceil(size_a / 2):
        raise SizeRatioError(size_b, size_a)


def orient_pair(
    first: Community, second: Community
) -> tuple[Community, Community, bool]:
    """Return ``(B, A, swapped)`` with ``B`` the smaller community.

    The paper always names the less-followed community ``B``.  When the
    caller passes the pair in the opposite order we swap silently and
    flag it, so result pair indices can be interpreted correctly.
    Ties keep the caller's order.
    """
    if first.n_users > second.n_users:
        return second, first, True
    return first, second, False


def validate_epsilon(epsilon: int) -> int:
    """Epsilon is a non-negative integer counter difference threshold."""
    if isinstance(epsilon, bool) or not isinstance(epsilon, (int,)):
        raise ValidationError(f"epsilon must be an integer, got {epsilon!r}")
    if epsilon < 0:
        raise ValidationError(f"epsilon must be non-negative, got {epsilon}")
    return int(epsilon)


def validate_pair(
    first: Community,
    second: Community,
    *,
    auto_orient: bool = True,
    enforce_size_ratio: bool = True,
) -> tuple[Community, Community, bool]:
    """Full pre-join validation pipeline.

    Returns the oriented ``(B, A, swapped)`` triple.  With
    ``auto_orient=False`` the input order is kept and a reversed pair
    (``|B| > |A|``) fails the size-ratio check.
    """
    check_dimensions(first, second)
    if auto_orient:
        community_b, community_a, swapped = orient_pair(first, second)
    else:
        community_b, community_a, swapped = first, second, False
    if enforce_size_ratio:
        check_size_ratio(community_b, community_a)
    return community_b, community_a, swapped
