"""Core building blocks of the CSJ reproduction.

This subpackage holds everything the join algorithms share: the data
model (:mod:`repro.core.types`), input validation
(:mod:`repro.core.validation`), the MinMax encoding scheme of Figure 1
(:mod:`repro.core.encoding`), the CSF / maximum-matching substrate
(:mod:`repro.core.matching`) and the pairing-event machinery
(:mod:`repro.core.events`).
"""

from .delta import DeltaJoinMaintainer, DeltaStats
from .encoding import EncodedCandidates, EncodedTargets, MinMaxEncoder, split_dimensions
from .errors import (
    ConfigurationError,
    DimensionMismatchError,
    ReproError,
    SizeRatioError,
    UnknownAlgorithmError,
    ValidationError,
)
from .events import EventTrace, EventType, TraceEvent
from .incremental import IncrementalCommunity
from .matching import (
    build_adjacency,
    cover_smallest_first,
    get_matcher,
    greedy_first_fit,
    hopcroft_karp,
    linf_match,
    linf_match_mask,
)
from .types import Community, CSJResult, EventCounts, MatchedPair
from .validation import orient_pair, validate_epsilon, validate_pair

__all__ = [
    "Community",
    "IncrementalCommunity",
    "DeltaJoinMaintainer",
    "DeltaStats",
    "CSJResult",
    "EventCounts",
    "MatchedPair",
    "EventTrace",
    "EventType",
    "TraceEvent",
    "MinMaxEncoder",
    "EncodedTargets",
    "EncodedCandidates",
    "split_dimensions",
    "build_adjacency",
    "cover_smallest_first",
    "hopcroft_karp",
    "greedy_first_fit",
    "get_matcher",
    "linf_match",
    "linf_match_mask",
    "orient_pair",
    "validate_pair",
    "validate_epsilon",
    "ReproError",
    "ValidationError",
    "DimensionMismatchError",
    "SizeRatioError",
    "ConfigurationError",
    "UnknownAlgorithmError",
]
