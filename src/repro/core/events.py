"""Pairing-event machinery (Section 4 of the paper).

During the pairing process of a ``b in B`` with an ``a in A`` the MinMax
algorithms (and, in reduced form, the baselines) yield five kinds of
events:

``MIN_PRUNE``
    The current ``b`` cannot be matched with any ``a'`` whose
    ``encoded_Min`` is at least the current ``a``'s — stop scanning and
    move to the next ``b``.
``MAX_PRUNE``
    The current ``a`` cannot be matched with any later ``b'`` (their
    encoded IDs only grow) — it can be skipped for good.
``NO_OVERLAP``
    Some part sum of ``b`` falls outside the corresponding range of
    ``a``; the full d-dimensional comparison is skipped.
``NO_MATCH``
    The full comparison ran and found a dimension with absolute
    difference above epsilon.
``MATCH``
    The full comparison succeeded.

:class:`EventTrace` optionally records each event with labels so the
walkthroughs of Figures 2 and 3 can be regenerated verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.registry import null_timer
from ..obs.timers import StageClock
from .types import EventCounts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = ["EventType", "TraceEvent", "EventTrace"]

#: Counter family every trace mirrors its events into (label: ``type``).
EVENTS_METRIC = "repro_core_events_total"


class EventType(enum.Enum):
    """The five pairing events of Section 4."""

    MIN_PRUNE = "MIN PRUNE"
    MAX_PRUNE = "MAX PRUNE"
    NO_OVERLAP = "NO OVERLAP"
    NO_MATCH = "NO MATCH"
    MATCH = "MATCH"


_COUNTER_FIELD = {
    EventType.MIN_PRUNE: "min_prune",
    EventType.MAX_PRUNE: "max_prune",
    EventType.NO_OVERLAP: "no_overlap",
    EventType.NO_MATCH: "no_match",
    EventType.MATCH: "match",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded pairing event.

    ``b_label``/``a_label`` are display names such as ``"b2:48"`` and
    ``"a3:(42, 72)"`` matching the notation of Figures 2 and 3;
    ``detail`` carries extra context, e.g. ``"maxV = 73"`` or
    ``"CSF(<b1, a1>, <b1, a3>)"``.
    """

    kind: EventType
    b_label: str = ""
    a_label: str = ""
    detail: str = ""

    def format(self) -> str:
        parts = []
        if self.b_label and self.a_label:
            connector = "<" if self.kind is EventType.MIN_PRUNE else (
                ">" if self.kind is EventType.MAX_PRUNE else "IN"
            )
            parts.append(f"* {self.b_label} {connector} {self.a_label}")
        elif self.b_label or self.a_label:
            parts.append(f"* {self.b_label or self.a_label}")
        parts.append(f"=> {self.kind.value}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class EventTrace:
    """Accumulates event counters and (optionally) a readable trace.

    The counters are always maintained; full :class:`TraceEvent` records
    are kept only when ``record=True`` so that large joins pay no memory
    cost for tracing.

    When a :class:`~repro.obs.registry.MetricsRegistry` is attached the
    trace also mirrors every event into the ``repro_core_events_total`` counter
    family (labelled by type) and offers nestable :meth:`stage` timers
    whose wall times land both in the registry and in
    :attr:`stage_seconds` for the per-join telemetry record.  With no
    registry both paths cost a single ``is None`` test.
    """

    record: bool = False
    counts: EventCounts = field(default_factory=EventCounts)
    events: list[TraceEvent] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: "MetricsRegistry | None" = None
    clock: StageClock | None = field(default=None, repr=False)

    def emit(
        self,
        kind: EventType,
        b_label: str = "",
        a_label: str = "",
        detail: str = "",
    ) -> None:
        """Count an event and, if recording, store its trace entry."""
        attr = _COUNTER_FIELD[kind]
        setattr(self.counts, attr, getattr(self.counts, attr) + 1)
        if self.metrics is not None:
            self.metrics.inc(EVENTS_METRIC, 1, type=attr)
        if self.record:
            self.events.append(TraceEvent(kind, b_label, a_label, detail))

    def emit_bulk(self, kind: EventType, times: int) -> None:
        """Count ``times`` occurrences at once (used by numpy engines)."""
        if times <= 0:
            return
        attr = _COUNTER_FIELD[kind]
        setattr(self.counts, attr, getattr(self.counts, attr) + int(times))
        if self.metrics is not None:
            self.metrics.inc(EVENTS_METRIC, int(times), type=attr)

    def absorb(self, other: EventCounts) -> None:
        """Fold another trace's counters in **through the sink**.

        Sub-traces (e.g. the per-slice traces of the thread-parallel
        SuperEGO candidate collection) accumulate without a registry;
        merging them via plain counter addition would update
        :attr:`counts` but skip the metrics mirror, so serial and
        parallel runs would report different ``repro_core_events_total``
        series.  Routing the merge through :meth:`emit_bulk` keeps both
        sides in lockstep.
        """
        for kind, attr in _COUNTER_FIELD.items():
            self.emit_bulk(kind, getattr(other, attr))

    def stage(self, name: str):
        """Nestable stage timer (no-op unless a registry is attached)."""
        if self.metrics is None:
            return null_timer()
        if self.clock is None:
            self.clock = StageClock(self.metrics)
        return self.clock.stage(name)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall times recorded through :meth:`stage` so far."""
        return self.clock.stage_seconds if self.clock is not None else {}

    def note(self, text: str) -> None:
        """Record free-form context, e.g. a CSF invocation (Figure 3)."""
        if self.record:
            self.notes.append(text)

    def format(self) -> str:
        """Render the recorded trace in the style of Figures 2/3."""
        lines = [event.format() for event in self.events]
        if self.notes:
            lines.append("")
            lines.extend(self.notes)
        return "\n".join(lines)
