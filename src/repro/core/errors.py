"""Exception hierarchy for the CSJ reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses mirror the distinct failure
modes that the paper's problem statement implies: malformed user vectors,
incompatible dimensionalities, violation of the ``ceil(|A|/2) <= |B| <=
|A|`` size-ratio rule, and invalid algorithm configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """A user-supplied input failed structural validation."""


class DimensionMismatchError(ValidationError):
    """Two communities do not share the same number of dimensions."""

    def __init__(self, dims_b: int, dims_a: int) -> None:
        self.dims_b = dims_b
        self.dims_a = dims_a
        super().__init__(
            f"communities must share dimensionality, got d={dims_b} vs d={dims_a}"
        )


class SizeRatioError(ValidationError):
    """The CSJ definition's size constraint does not hold.

    The paper requires ``ceil(|A|/2) <= |B| <= |A|``; otherwise the
    smaller community risks being a trivial subset of the larger one and
    the similarity score loses its meaning (Section 3).
    """

    def __init__(self, size_b: int, size_a: int) -> None:
        self.size_b = size_b
        self.size_a = size_a
        super().__init__(
            f"CSJ requires ceil(|A|/2) <= |B| <= |A|; got |B|={size_b}, |A|={size_a}"
        )


class ConfigurationError(ReproError, ValueError):
    """An algorithm or generator received inconsistent parameters."""


class UnknownAlgorithmError(ConfigurationError):
    """A method name was not found in the algorithm registry."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown CSJ method {name!r}; available: {', '.join(sorted(known))}"
        )
