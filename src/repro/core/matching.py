"""Matching substrate: the CSF heuristic and exact maximum matching.

The exact CSJ methods first collect the full candidate bipartite graph
(every pair ``<b, a>`` within per-dimension epsilon) and then select
one-to-one pairs.  The paper's selector is the **CSF** function
(*CoverSmallestFirst*): repeatedly cover the user with the smallest
number of remaining matches, pairing it with its neighbour that itself
has the smallest number of matches.  Covering small users first leaves
the largest pool of options for the rest, which is the classic
minimum-degree greedy heuristic for maximum bipartite matching.

CSF is a heuristic; it is not guaranteed to return a *maximum* matching.
This module therefore also ships a from-scratch Hopcroft–Karp
implementation (and a networkx cross-check used by the tests) so the
library can quantify how far CSF is from the optimum — see the matcher
ablation benchmark.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

import numpy as np

from .errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "linf_match",
    "linf_match_mask",
    "enumerate_candidate_pairs",
    "build_adjacency",
    "cover_smallest_first",
    "hopcroft_karp",
    "greedy_first_fit",
    "get_matcher",
    "MATCHERS",
]

Pairs = list[tuple[int, int]]
Adjacency = dict[int, set[int]]


def linf_match(vector_b: np.ndarray, vector_a: np.ndarray, epsilon: int) -> bool:
    """Per-dimension epsilon test for a single pair (the CSJ condition)."""
    diff = np.abs(
        vector_b.astype(np.int64, copy=False) - vector_a.astype(np.int64, copy=False)
    )
    return bool(diff.max(initial=0) <= epsilon)


def linf_match_mask(
    vector_b: np.ndarray, matrix_a: np.ndarray, epsilon: int
) -> np.ndarray:
    """Vectorised CSJ condition of one ``b`` against many ``a`` rows."""
    diff = np.abs(matrix_a.astype(np.int64, copy=False) - vector_b.astype(np.int64))
    return (diff <= epsilon).all(axis=1)


def enumerate_candidate_pairs(
    vectors_b: np.ndarray,
    vectors_a: np.ndarray,
    epsilon: int,
    *,
    block_size: int = 512,
    metrics: "MetricsRegistry | None" = None,
) -> Pairs:
    """All candidate pairs within per-dimension epsilon, blockwise.

    Accumulates the condition one dimension at a time over
    ``(block, |A|)`` planes, so peak memory is independent of ``d``.
    Used by Ex-Baseline and by callers that need the raw candidate graph
    (e.g. optimal weighted matching).  With ``metrics`` attached, the
    pairs examined and the candidates found are counted into the
    ``repro_core_candidate_pairs_examined_total`` / ``repro_core_candidate_pairs_found_total``
    counters.
    """
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    pairs: Pairs = []
    # Same int64 widening as linf_match/linf_match_mask: narrow unsigned
    # or small-int dtypes would otherwise wrap around in the subtraction.
    vectors_b = vectors_b.astype(np.int64, copy=False)
    vectors_a = vectors_a.astype(np.int64, copy=False)
    n_b, n_dims = vectors_b.shape
    n_a = len(vectors_a)
    for start in range(0, n_b, block_size):
        block = vectors_b[start : start + block_size]
        mask = np.ones((len(block), n_a), dtype=bool)
        for dim in range(n_dims):
            diff = np.abs(block[:, dim : dim + 1] - vectors_a[None, :, dim])
            mask &= diff <= epsilon
            if not mask.any():
                break
        rows, cols = np.nonzero(mask)
        pairs.extend(zip((rows + start).tolist(), cols.tolist()))
    if metrics is not None:
        metrics.inc("repro_core_candidate_pairs_examined_total", n_b * n_a)
        metrics.inc("repro_core_candidate_pairs_found_total", len(pairs))
    return pairs


def build_adjacency(pairs: Iterable[tuple[int, int]]) -> tuple[Adjacency, Adjacency]:
    """Build both directions of the candidate graph from raw pairs.

    Returns ``(matched_B, matched_A)`` in the paper's naming: a map from
    each ``b`` to its matches in ``A`` and vice versa.
    """
    matched_b: Adjacency = {}
    matched_a: Adjacency = {}
    for b_index, a_index in pairs:
        matched_b.setdefault(b_index, set()).add(a_index)
        matched_a.setdefault(a_index, set()).add(b_index)
    return matched_b, matched_a


def cover_smallest_first(matched_b: Adjacency, matched_a: Adjacency) -> Pairs:
    """The CSF function of Section 4.2.

    Deterministic variant: among all still-uncovered users on either
    side, take the one with the fewest remaining matches (ties: the ``B``
    side first — mirroring the algorithm's tie rule of repeating the
    ``B`` steps first — then the smaller user id).  Pair it with its
    neighbour having the fewest remaining matches (ties: smaller id),
    insert the pair, drop both users, and repeat until one side is
    exhausted.

    The input maps are not modified.  Pairs are returned in cover order.
    """
    adj_b = {b: set(partners) for b, partners in matched_b.items() if partners}
    adj_a = {a: set(partners) for a, partners in matched_a.items() if partners}
    # Heap entries: (degree, side, user_id); side 0 = B, 1 = A.
    heap: list[tuple[int, int, int]] = []
    for b, partners in adj_b.items():
        heap.append((len(partners), 0, b))
    for a, partners in adj_a.items():
        heap.append((len(partners), 1, a))
    heapq.heapify(heap)

    result: Pairs = []
    while heap:
        degree, side, user = heapq.heappop(heap)
        adjacency = adj_b if side == 0 else adj_a
        partners = adjacency.get(user)
        if partners is None or len(partners) != degree:
            continue  # stale heap entry (user covered or degree changed)
        other = adj_a if side == 0 else adj_b
        partner = min(partners, key=lambda candidate: (len(other[candidate]), candidate))
        pair = (user, partner) if side == 0 else (partner, user)
        result.append(pair)
        _remove_covered(adj_b, adj_a, heap, b_user=pair[0], a_user=pair[1])
        if not adj_b or not adj_a:
            break
    return result


def _remove_covered(
    adj_b: Adjacency,
    adj_a: Adjacency,
    heap: list[tuple[int, int, int]],
    *,
    b_user: int,
    a_user: int,
) -> None:
    """Remove a freshly covered pair and refresh neighbour degrees."""
    for neighbour in adj_b.pop(b_user, set()):
        partners = adj_a.get(neighbour)
        if partners is None:
            continue
        partners.discard(b_user)
        if partners:
            heapq.heappush(heap, (len(partners), 1, neighbour))
        else:
            del adj_a[neighbour]
    for neighbour in adj_a.pop(a_user, set()):
        partners = adj_b.get(neighbour)
        if partners is None:
            continue
        partners.discard(a_user)
        if partners:
            heapq.heappush(heap, (len(partners), 0, neighbour))
        else:
            del adj_b[neighbour]


def hopcroft_karp(matched_b: Adjacency, matched_a: Adjacency | None = None) -> Pairs:
    """Maximum bipartite matching via Hopcroft–Karp (from scratch).

    ``matched_a`` is accepted for signature symmetry with
    :func:`cover_smallest_first` but is not required.  Runs in
    ``O(E * sqrt(V))``.  Pairs are returned sorted by ``b`` id.
    """
    del matched_a  # derivable from matched_b; kept for API symmetry
    b_nodes = sorted(matched_b)
    adjacency = {b: sorted(matched_b[b]) for b in b_nodes}
    match_of_b: dict[int, int | None] = {b: None for b in b_nodes}
    match_of_a: dict[int, int | None] = {}
    for partners in adjacency.values():
        for a in partners:
            match_of_a.setdefault(a, None)

    infinity = float("inf")

    def bfs() -> bool:
        distances: dict[int, float] = {}
        queue: deque[int] = deque()
        for b in b_nodes:
            if match_of_b[b] is None:
                distances[b] = 0
                queue.append(b)
            else:
                distances[b] = infinity
        reachable_free = False
        while queue:
            b = queue.popleft()
            for a in adjacency[b]:
                partner = match_of_a[a]
                if partner is None:
                    reachable_free = True
                elif distances[partner] == infinity:
                    distances[partner] = distances[b] + 1
                    queue.append(partner)
        bfs.distances = distances  # type: ignore[attr-defined]
        return reachable_free

    def dfs(b: int) -> bool:
        distances = bfs.distances  # type: ignore[attr-defined]
        for a in adjacency[b]:
            partner = match_of_a[a]
            if partner is None or (
                distances[partner] == distances[b] + 1 and dfs(partner)
            ):
                match_of_b[b] = a
                match_of_a[a] = b
                return True
        distances[b] = infinity
        return False

    while bfs():
        for b in b_nodes:
            if match_of_b[b] is None:
                dfs(b)
    return sorted(
        (b, a) for b, a in match_of_b.items() if a is not None
    )


def greedy_first_fit(matched_b: Adjacency, matched_a: Adjacency | None = None) -> Pairs:
    """First-fit greedy matcher (the approximate methods' behaviour).

    Processes ``b`` users in ascending id and commits each to its
    smallest-id still-free neighbour.  Provided so approximate matching
    behaviour can also be exercised on a pre-built candidate graph.
    """
    del matched_a
    used_a: set[int] = set()
    result: Pairs = []
    for b in sorted(matched_b):
        for a in sorted(matched_b[b]):
            if a not in used_a:
                used_a.add(a)
                result.append((b, a))
                break
    return result


Matcher = Callable[[Adjacency, Adjacency], Pairs]

MATCHERS: dict[str, Matcher] = {
    "csf": cover_smallest_first,
    "hopcroft_karp": hopcroft_karp,
    "greedy": greedy_first_fit,
}


def get_matcher(name: str) -> Matcher:
    """Look up a matcher by registry name (``csf``, ``hopcroft_karp``...)."""
    try:
        return MATCHERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown matcher {name!r}; available: {', '.join(sorted(MATCHERS))}"
        ) from None


def matching_size_upper_bound(matched_b: Adjacency) -> int:
    """Cheap upper bound: cannot exceed either side's vertex count."""
    n_a = len({a for partners in matched_b.values() for a in partners})
    return min(len(matched_b), n_a)


def pairs_are_one_to_one(pairs: Sequence[tuple[int, int]]) -> bool:
    """True when no user appears twice on its side of the pairing."""
    b_side = [b for b, _ in pairs]
    a_side = [a for _, a in pairs]
    return len(set(b_side)) == len(b_side) and len(set(a_side)) == len(a_side)


def pairs_respect_graph(
    pairs: Sequence[tuple[int, int]], matched_b: Mapping[int, set[int]]
) -> bool:
    """True when every selected pair is an edge of the candidate graph."""
    return all(b in matched_b and a in matched_b[b] for b, a in pairs)
