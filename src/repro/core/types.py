"""Core value types of the CSJ reproduction.

The vocabulary follows Section 3 of the paper:

* a :class:`Community` is a brand page with a set of subscribers, each
  represented as a d-dimensional vector of aggregate per-category
  counters;
* a CSJ run produces a :class:`CSJResult` holding the matched one-to-one
  user pairs, the similarity score of Eq. (1), the per-event counters of
  Section 4 and the wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .errors import ValidationError

__all__ = ["Community", "EventCounts", "MatchedPair", "CSJResult"]


def as_counter_matrix(vectors: object) -> np.ndarray:
    """Coerce ``vectors`` into a validated 2-D int64 counter matrix.

    CSJ vectors store aggregate counters (numbers of likes), so they must
    be non-negative integers.  Accepts any array-like of shape ``(n, d)``.
    """
    matrix = np.asarray(vectors)
    if matrix.ndim != 2:
        raise ValidationError(
            f"user vectors must form a 2-D (n, d) matrix, got ndim={matrix.ndim}"
        )
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValidationError(
            f"user vectors must be non-empty in both axes, got shape={matrix.shape}"
        )
    if not np.issubdtype(matrix.dtype, np.integer):
        rounded = np.rint(matrix)
        if not np.array_equal(rounded, matrix):
            raise ValidationError("counter vectors must hold integers (like counts)")
        matrix = rounded
    matrix = matrix.astype(np.int64, copy=False)
    if (matrix < 0).any():
        raise ValidationError("counter vectors must be non-negative")
    return matrix


@dataclass(frozen=True)
class Community:
    """A brand community: a named set of d-dimensional user profiles.

    Parameters
    ----------
    name:
        Human-readable page name (e.g. ``"Quick Recipes"``).
    vectors:
        Integer matrix of shape ``(n_users, n_dims)``; row ``i`` is the
        aggregate per-category like counters of subscriber ``i``.
    category:
        The dominant category of the page (one of the 27 VK categories in
        the reproduction datasets).  Informational only.
    page_id:
        The platform page identifier (Table 2 keeps the real VK ids).
    """

    name: str
    vectors: np.ndarray
    category: str = ""
    page_id: int = 0

    def __post_init__(self) -> None:
        matrix = as_counter_matrix(self.vectors)
        matrix.setflags(write=False)
        object.__setattr__(self, "vectors", matrix)

    @property
    def n_users(self) -> int:
        """Number of subscribers (the community's commercial value)."""
        return int(self.vectors.shape[0])

    @property
    def n_dims(self) -> int:
        """Number of category dimensions ``d``."""
        return int(self.vectors.shape[1])

    def __len__(self) -> int:
        return self.n_users

    def subset(self, indices: Sequence[int] | np.ndarray, name: str | None = None) -> "Community":
        """Return a new community restricted to the given user rows."""
        rows = np.asarray(indices, dtype=np.int64)
        return Community(
            name=name if name is not None else f"{self.name}[subset]",
            vectors=self.vectors[rows],
            category=self.category,
            page_id=self.page_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Community(name={self.name!r}, users={self.n_users}, "
            f"dims={self.n_dims}, category={self.category!r})"
        )


@dataclass
class EventCounts:
    """Counters of the five pairing events of Section 4.

    ``MIN PRUNE`` — the current ``b`` cannot match any further ``a``;
    ``MAX PRUNE`` — the current ``a`` cannot match any further ``b``;
    ``NO OVERLAP`` — part/range overlap failed, the d-dimensional
    comparison is skipped; ``NO MATCH`` — the d-dimensional comparison
    ran and failed; ``MATCH`` — the comparison succeeded.
    """

    min_prune: int = 0
    max_prune: int = 0
    no_overlap: int = 0
    no_match: int = 0
    match: int = 0

    def __add__(self, other: "EventCounts") -> "EventCounts":
        return EventCounts(
            min_prune=self.min_prune + other.min_prune,
            max_prune=self.max_prune + other.max_prune,
            no_overlap=self.no_overlap + other.no_overlap,
            no_match=self.no_match + other.no_match,
            match=self.match + other.match,
        )

    @property
    def comparisons(self) -> int:
        """Number of full d-dimensional epsilon comparisons executed."""
        return self.no_match + self.match

    @property
    def total(self) -> int:
        return (
            self.min_prune
            + self.max_prune
            + self.no_overlap
            + self.no_match
            + self.match
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "min_prune": self.min_prune,
            "max_prune": self.max_prune,
            "no_overlap": self.no_overlap,
            "no_match": self.no_match,
            "match": self.match,
        }


@dataclass(frozen=True)
class MatchedPair:
    """A one-to-one matched pair ``<b, a>`` by user row index."""

    b_index: int
    a_index: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.b_index, self.a_index)


@dataclass
class CSJResult:
    """Outcome of one CSJ join between communities ``B`` and ``A``.

    ``similarity`` is Eq. (1): ``p * |matched| / |B|``; ``pairs`` holds
    the matched ``(b_index, a_index)`` rows; ``events`` are the pairing
    events observed by the algorithm (the numpy engines only account for
    NO MATCH / MATCH since pruning happens in bulk); ``swapped`` records
    whether the inputs were re-oriented so that ``B`` is the smaller
    community, in which case pair indices refer to the *oriented* inputs.
    """

    method: str
    exact: bool
    size_b: int
    size_a: int
    epsilon: int
    pairs: list[MatchedPair] = field(default_factory=list)
    events: EventCounts = field(default_factory=EventCounts)
    elapsed_seconds: float = 0.0
    p: float = 1.0
    engine: str = "python"
    swapped: bool = False
    #: Per-stage wall times recorded when the join ran with
    #: observability enabled; empty (and costless) otherwise.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def n_matched(self) -> int:
        return len(self.pairs)

    @property
    def similarity(self) -> float:
        """Eq. (1) of the paper as a fraction in ``[0, 1]``."""
        if self.size_b == 0:
            return 0.0
        return self.p * self.n_matched / self.size_b

    @property
    def similarity_percent(self) -> float:
        return 100.0 * self.similarity

    def pair_tuples(self) -> list[tuple[int, int]]:
        return [pair.as_tuple() for pair in self.pairs]

    def check_one_to_one(self) -> None:
        """Raise if any user participates in more than one pair."""
        b_side = [pair.b_index for pair in self.pairs]
        a_side = [pair.a_index for pair in self.pairs]
        if len(set(b_side)) != len(b_side) or len(set(a_side)) != len(a_side):
            raise ValidationError(f"{self.method}: matching is not one-to-one")

    def summary(self) -> str:
        """One-line summary in the style of the paper's result tables."""
        return (
            f"{self.method}: {self.similarity_percent:.2f}% "
            f"({self.elapsed_seconds:.3f} s), |B|={self.size_b}, |A|={self.size_a}, "
            f"matched={self.n_matched}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "method": self.method,
            "exact": self.exact,
            "size_b": self.size_b,
            "size_a": self.size_a,
            "epsilon": self.epsilon,
            "pairs": self.pair_tuples(),
            "events": self.events.as_dict(),
            "elapsed_seconds": self.elapsed_seconds,
            "p": self.p,
            "engine": self.engine,
            "swapped": self.swapped,
            "similarity": self.similarity,
            "stage_seconds": dict(self.stage_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "CSJResult":
        """Rebuild a result saved by :meth:`to_dict`.

        The redundant ``similarity`` entry, if present, is validated
        against the recomputed Eq. (1) value.
        """
        events = EventCounts(**payload.get("events", {}))  # type: ignore[arg-type]
        result = cls(
            method=str(payload["method"]),
            exact=bool(payload["exact"]),
            size_b=int(payload["size_b"]),  # type: ignore[arg-type]
            size_a=int(payload["size_a"]),  # type: ignore[arg-type]
            epsilon=int(payload["epsilon"]),  # type: ignore[arg-type]
            pairs=[MatchedPair(int(b), int(a)) for b, a in payload.get("pairs", [])],
            events=events,
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),  # type: ignore[arg-type]
            p=float(payload.get("p", 1.0)),  # type: ignore[arg-type]
            engine=str(payload.get("engine", "python")),
            swapped=bool(payload.get("swapped", False)),
            stage_seconds={
                str(stage): float(seconds)  # type: ignore[arg-type]
                for stage, seconds in payload.get("stage_seconds", {}).items()  # type: ignore[union-attr]
            },
        )
        stored = payload.get("similarity")
        if stored is not None and abs(float(stored) - result.similarity) > 1e-9:  # type: ignore[arg-type]
            raise ValidationError(
                "stored similarity disagrees with the recomputed Eq. (1) value"
            )
        return result


def pairs_from_tuples(tuples: Iterable[tuple[int, int]]) -> list[MatchedPair]:
    """Convenience converter used by the algorithm engines."""
    return [MatchedPair(int(b), int(a)) for b, a in tuples]
