"""The MinMax encoding scheme (Section 4, Figure 1).

A d-dimensional counter vector is segmented into ``n_parts`` contiguous
parts (the paper fixes 4 parts as the best time/space trade-off; fewer
parts prune less, more parts cost more memory).  For each user the scheme
derives:

* ``parts`` — the per-part counter sums (e.g. ``5, 13, 9, 19`` in
  Figure 1);
* ``encoded_ID`` — the total counter sum (``46`` in Figure 1);
* per-part ranges — each dimension value ``v`` can only match values in
  ``[max(0, v - eps), v + eps]``, so the part range is the sum of those
  per-dimension intervals (``[2, 11], [8, 20], [5, 16], [13, 26]``);
* ``encoded_Min`` / ``encoded_Max`` — the sums of the range endpoints
  (``28`` and ``73``).

A user ``b`` can only match a user ``a`` when ``b.encoded_ID`` falls in
``[a.encoded_Min, a.encoded_Max]`` *and* every part sum of ``b`` falls in
the corresponding part range of ``a``.  Both conditions are necessary
(never sufficient), so the scheme can prune without false misses.

Figure 1 shows the segmentation for ``d = 27`` with 4 parts as sizes
``6, 7, 7, 7``: the remainder dimensions go to the *last* parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "split_dimensions",
    "EncodedTargets",
    "EncodedCandidates",
    "MinMaxEncoder",
]


def split_dimensions(n_dims: int, n_parts: int) -> list[slice]:
    """Split ``n_dims`` dimensions into contiguous near-equal parts.

    The base size is ``n_dims // n_parts``; the remainder is distributed
    one dimension at a time to the *last* parts, matching Figure 1 where
    ``d = 27`` and 4 parts yield sizes ``6, 7, 7, 7``.
    """
    if n_parts < 1:
        raise ConfigurationError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > n_dims:
        raise ConfigurationError(
            f"n_parts ({n_parts}) cannot exceed the number of dimensions ({n_dims})"
        )
    base = n_dims // n_parts
    remainder = n_dims % n_parts
    sizes = [base] * (n_parts - remainder) + [base + 1] * remainder
    slices: list[slice] = []
    start = 0
    for size in sizes:
        slices.append(slice(start, start + size))
        start += size
    return slices


@dataclass(frozen=True)
class EncodedTargets:
    """The ``Encd_B`` buffer: one triple-entry per user ``b`` in ``B``.

    Arrays are aligned with ``order``: row ``k`` describes the user whose
    original row index is ``real_ids[k]``, and rows are ascending-sorted
    on ``encoded_ID`` (ties broken by original index for determinism).
    """

    encoded_id: np.ndarray  # (n,) int64, ascending
    parts: np.ndarray  # (n, n_parts) int64
    real_ids: np.ndarray  # (n,) int64 original row indices

    @property
    def n_users(self) -> int:
        return int(self.encoded_id.shape[0])

    def entry_label(self, position: int) -> str:
        """Display label like ``"b2:48"`` used in Figures 2/3."""
        return f"b{self.real_ids[position] + 1}:{self.encoded_id[position]}"


@dataclass(frozen=True)
class EncodedCandidates:
    """The ``Encd_A`` buffer: one quadruple-entry per user ``a`` in ``A``.

    Rows are ascending-sorted on ``encoded_Min`` (ties broken by
    ``encoded_Max`` then original index).
    """

    encoded_min: np.ndarray  # (n,) int64, ascending
    encoded_max: np.ndarray  # (n,) int64
    range_min: np.ndarray  # (n, n_parts) int64
    range_max: np.ndarray  # (n, n_parts) int64
    real_ids: np.ndarray  # (n,) int64 original row indices

    @property
    def n_users(self) -> int:
        return int(self.encoded_min.shape[0])

    def entry_label(self, position: int) -> str:
        """Display label like ``"a3:(42, 72)"`` used in Figures 2/3."""
        return (
            f"a{self.real_ids[position] + 1}:"
            f"({self.encoded_min[position]}, {self.encoded_max[position]})"
        )


class MinMaxEncoder:
    """Computes the Figure 1 encoding for both sides of a CSJ join.

    Parameters
    ----------
    epsilon:
        The per-dimension absolute-difference threshold.
    n_parts:
        Number of contiguous vector parts (the paper uses 4).
    """

    def __init__(self, epsilon: int, n_parts: int = 4) -> None:
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = int(epsilon)
        self.n_parts = int(n_parts)

    def part_slices(self, n_dims: int) -> list[slice]:
        return split_dimensions(n_dims, self.n_parts)

    def part_sums(self, vectors: np.ndarray) -> np.ndarray:
        """Per-part counter sums, shape ``(n, n_parts)``."""
        slices = self.part_slices(vectors.shape[1])
        columns = [vectors[:, sl].sum(axis=1) for sl in slices]
        return np.stack(columns, axis=1).astype(np.int64)

    def encode_targets(self, vectors: np.ndarray) -> EncodedTargets:
        """Build the sorted ``Encd_B`` buffer for community ``B``."""
        parts = self.part_sums(vectors)
        encoded_id = parts.sum(axis=1)
        order = np.lexsort((np.arange(len(encoded_id)), encoded_id))
        return EncodedTargets(
            encoded_id=encoded_id[order],
            parts=parts[order],
            real_ids=order.astype(np.int64),
        )

    def encode_candidates(self, vectors: np.ndarray) -> EncodedCandidates:
        """Build the sorted ``Encd_A`` buffer for community ``A``.

        The lower endpoint of each per-dimension interval is clamped at
        zero (counters are non-negative), exactly as in Figure 1 where
        value ``0`` with ``eps = 1`` yields the interval ``[0, 1]``.
        """
        slices = self.part_slices(vectors.shape[1])
        lowered = np.maximum(vectors - self.epsilon, 0)
        raised = vectors + self.epsilon
        range_min = np.stack(
            [lowered[:, sl].sum(axis=1) for sl in slices], axis=1
        ).astype(np.int64)
        range_max = np.stack(
            [raised[:, sl].sum(axis=1) for sl in slices], axis=1
        ).astype(np.int64)
        encoded_min = range_min.sum(axis=1)
        encoded_max = range_max.sum(axis=1)
        order = np.lexsort(
            (np.arange(len(encoded_min)), encoded_max, encoded_min)
        )
        return EncodedCandidates(
            encoded_min=encoded_min[order],
            encoded_max=encoded_max[order],
            range_min=range_min[order],
            range_max=range_max[order],
            real_ids=order.astype(np.int64),
        )

    @staticmethod
    def parts_overlap(
        parts_row: np.ndarray, range_min_row: np.ndarray, range_max_row: np.ndarray
    ) -> bool:
        """Complete part/range overlap test between one ``b`` and one ``a``.

        True only when *every* part sum of ``b`` falls inside the
        corresponding range of ``a`` — a NO OVERLAP event otherwise.
        """
        return bool(
            np.all((parts_row >= range_min_row) & (parts_row <= range_max_row))
        )

    def describe(self, vector: np.ndarray) -> dict[str, object]:
        """Explain the encoding of a single vector (Figure 1 walkthrough).

        Returns the part slices, part sums, per-part ranges and the three
        encoded values, keyed the way the figure names them.
        """
        matrix = np.asarray(vector, dtype=np.int64).reshape(1, -1)
        slices = self.part_slices(matrix.shape[1])
        parts = self.part_sums(matrix)[0]
        candidates = self.encode_candidates(matrix)
        return {
            "part_slices": slices,
            "parts": parts.tolist(),
            "encoded_id": int(parts.sum()),
            "part_ranges": [
                (int(lo), int(hi))
                for lo, hi in zip(candidates.range_min[0], candidates.range_max[0])
            ],
            "encoded_min": int(candidates.encoded_min[0]),
            "encoded_max": int(candidates.encoded_max[0]),
        }
