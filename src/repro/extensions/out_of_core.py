"""Out-of-core CSJ: joining communities larger than memory.

The paper's testbed holds both communities in RAM (24 GB for ~300k x 27
vectors is comfortable), but a platform-scale deployment — the paper's
VK sample alone is 7.8M users — may not.  This module keeps the vectors
on disk (``.npy`` accessed through ``numpy.memmap``) and runs the
MinMax-windowed exact join with bounded memory:

1. one streaming pass computes the encoded IDs of ``B`` and the encoded
   Min/Max windows of ``A`` — ``O(n)`` *scalars* in RAM, never the
   ``O(n * d)`` vectors;
2. ``B`` is processed in sorted chunks; for each chunk the candidate
   window of ``A`` rows is identified from the in-RAM encoded arrays and
   only those rows are gathered from disk for the exact per-dimension
   comparison;
3. candidate pairs (small, by CSJ's low-epsilon selectivity) feed the
   usual CSF or Hopcroft–Karp selection.

The result is pair-for-pair identical to the in-memory Ex-MinMax — the
tests assert it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.errors import ConfigurationError, ValidationError
from ..core.matching import build_adjacency, get_matcher
from ..core.types import Community, CSJResult, MatchedPair, as_counter_matrix

__all__ = ["OnDiskCommunity", "out_of_core_similarity"]


class _ClosedVectors:
    """Placeholder for released vectors: shape survives, data access raises."""

    __slots__ = ("shape",)

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = shape

    def _refuse(self, *_args: object, **_kwargs: object) -> object:
        raise ValueError(
            "on-disk community is closed; its vectors are no longer mapped"
        )

    __array__ = _refuse
    __getitem__ = _refuse
    __iter__ = _refuse

    def __len__(self) -> int:
        return int(self.shape[0])


@dataclass(frozen=True)
class OnDiskCommunity:
    """A community stored as an ``.npy`` file plus JSON metadata.

    ``vectors`` is a read-only memmap: element access touches only the
    pages actually read.  The memmap holds an open file handle until
    :meth:`close` releases it — a long-running process opening many
    communities must close them (or use the instance as a context
    manager), or it leaks one handle per community.
    """

    path: Path
    name: str
    category: str
    vectors: np.memmap

    @property
    def n_users(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def n_dims(self) -> int:
        return int(self.vectors.shape[1])

    def __len__(self) -> int:
        return self.n_users

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the underlying mapping."""
        return bool(self.__dict__.get("_closed", False))

    def close(self) -> None:
        """Release the memmap's file handle (idempotent).

        Vector access after closing raises ``ValueError``; metadata
        (``name``, ``n_users`` via the cached shape, ...) needs no file
        and stays available.  The mapping is released by dropping this
        instance's reference — never by force-closing the ``mmap``
        object, which would turn any still-held view of the array into
        a use-after-unmap crash.  When nobody else holds the array (the
        normal case) the file handle is freed here, deterministically.
        """
        if self.closed:
            return
        shape = tuple(int(extent) for extent in self.vectors.shape)
        # frozen dataclass: mutate via object.__setattr__.
        object.__setattr__(self, "vectors", _ClosedVectors(shape))
        object.__setattr__(self, "_closed", True)

    def __enter__(self) -> "OnDiskCommunity":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        vectors: object,
        *,
        name: str = "",
        category: str = "",
    ) -> "OnDiskCommunity":
        """Write vectors to disk and open them as a memmap."""
        matrix = as_counter_matrix(vectors)
        path = Path(path).with_suffix(".npy")
        np.save(path, matrix)
        meta = {"name": name or path.stem, "category": category}
        path.with_suffix(".json").write_text(json.dumps(meta))
        return cls.open(path)

    @classmethod
    def from_community(cls, path: str | Path, community: Community) -> "OnDiskCommunity":
        """Persist an in-memory community for out-of-core joining."""
        return cls.create(
            path, community.vectors, name=community.name, category=community.category
        )

    @classmethod
    def open(cls, path: str | Path) -> "OnDiskCommunity":
        """Open a community previously written by :meth:`create`."""
        path = Path(path).with_suffix(".npy")
        if not path.exists():
            raise ValidationError(f"no on-disk community at {path}")
        memmap = np.load(path, mmap_mode="r")
        if memmap.ndim != 2:
            raise ValidationError(f"{path} does not hold a 2-D user matrix")
        meta_path = path.with_suffix(".json")
        meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
        return cls(
            path=path,
            name=str(meta.get("name", path.stem)),
            category=str(meta.get("category", "")),
            vectors=memmap,
        )

    # ------------------------------------------------------------------
    def row_sums(self, chunk_size: int) -> np.ndarray:
        """Streaming per-row counter sums (one chunk in RAM at a time)."""
        sums = np.empty(self.n_users, dtype=np.int64)
        for start in range(0, self.n_users, chunk_size):
            block = np.asarray(self.vectors[start : start + chunk_size])
            sums[start : start + chunk_size] = block.sum(axis=1)
        return sums

    def window_bounds(self, epsilon: int, chunk_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Streaming encoded Min/Max (clamped at zero per dimension)."""
        minimum = np.empty(self.n_users, dtype=np.int64)
        maximum = np.empty(self.n_users, dtype=np.int64)
        for start in range(0, self.n_users, chunk_size):
            block = np.asarray(self.vectors[start : start + chunk_size])
            minimum[start : start + chunk_size] = np.maximum(
                block - epsilon, 0
            ).sum(axis=1)
            maximum[start : start + chunk_size] = (block + epsilon).sum(axis=1)
        return minimum, maximum


def out_of_core_similarity(
    disk_b: OnDiskCommunity | str | Path,
    disk_a: OnDiskCommunity | str | Path,
    *,
    epsilon: int,
    chunk_size: int = 4096,
    matcher: str = "csf",
) -> CSJResult:
    """Exact CSJ join of two on-disk communities with bounded memory.

    ``disk_b`` must be the smaller community (the paper's ``B`` role);
    pass the pair accordingly — on-disk inputs are not auto-oriented.

    Either side may be given as a path: the function opens it itself
    and closes it again on every exit path, so repeated calls never
    accumulate file handles.  Caller-provided ``OnDiskCommunity``
    instances are left open (the caller owns their lifetime).
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    opened: list[OnDiskCommunity] = []
    try:
        if not isinstance(disk_b, OnDiskCommunity):
            disk_b = OnDiskCommunity.open(disk_b)
            opened.append(disk_b)
        if not isinstance(disk_a, OnDiskCommunity):
            disk_a = OnDiskCommunity.open(disk_a)
            opened.append(disk_a)
        return _out_of_core_similarity(
            disk_b, disk_a,
            epsilon=epsilon, chunk_size=chunk_size, matcher=matcher,
        )
    finally:
        for community in opened:
            community.close()


def _out_of_core_similarity(
    disk_b: OnDiskCommunity,
    disk_a: OnDiskCommunity,
    *,
    epsilon: int,
    chunk_size: int,
    matcher: str,
) -> CSJResult:
    if disk_b.n_dims != disk_a.n_dims:
        raise ValidationError(
            f"dimension mismatch: d={disk_b.n_dims} vs d={disk_a.n_dims}"
        )
    if disk_b.n_users > disk_a.n_users:
        raise ValidationError(
            "pass the smaller community first (on-disk joins are not "
            "auto-oriented)"
        )
    select = get_matcher(matcher)
    started = time.perf_counter()

    encoded_id = disk_b.row_sums(chunk_size)
    encoded_min, encoded_max = disk_a.window_bounds(epsilon, chunk_size)
    order_a = np.argsort(encoded_min, kind="stable")
    sorted_min = encoded_min[order_a]
    sorted_max = encoded_max[order_a]

    raw_pairs: list[tuple[int, int]] = []
    order_b = np.argsort(encoded_id, kind="stable")
    for chunk_start in range(0, len(order_b), chunk_size):
        chunk_rows = order_b[chunk_start : chunk_start + chunk_size]
        block_b = np.asarray(disk_b.vectors[np.sort(chunk_rows)])
        row_of = {int(row): i for i, row in enumerate(np.sort(chunk_rows))}
        for b_row in chunk_rows:
            own_id = int(encoded_id[b_row])
            hi = int(np.searchsorted(sorted_min, own_id, side="right"))
            if hi == 0:
                continue
            window = np.flatnonzero(sorted_max[:hi] >= own_id)
            if window.size == 0:
                continue
            candidate_rows = np.sort(order_a[window])
            block_a = np.asarray(disk_a.vectors[candidate_rows])
            vector_b = block_b[row_of[int(b_row)]]
            mask = (np.abs(block_a - vector_b) <= epsilon).all(axis=1)
            raw_pairs.extend(
                (int(b_row), int(a_row)) for a_row in candidate_rows[mask]
            )

    if raw_pairs:
        matched_b, matched_a = build_adjacency(raw_pairs)
        selected = select(matched_b, matched_a)
    else:
        selected = []
    elapsed = time.perf_counter() - started
    return CSJResult(
        method="out-of-core-minmax",
        exact=matcher != "greedy",
        size_b=disk_b.n_users,
        size_a=disk_a.n_users,
        epsilon=int(epsilon),
        pairs=[MatchedPair(b, a) for b, a in selected],
        elapsed_seconds=elapsed,
        engine="numpy",
    )
