"""Extensions beyond the paper's scope.

These modules generalise CSJ in directions the paper's formulation
naturally invites but does not evaluate: per-category epsilon vectors
(:mod:`repro.extensions.vector_epsilon`) and weighted community
similarity (:mod:`repro.extensions.weighted`).  They reuse the core
substrates (encoding, CSF/Hopcroft–Karp matching, event machinery) and
are exercised by their own tests and benchmarks.
"""

from .out_of_core import OnDiskCommunity, out_of_core_similarity
from .vector_epsilon import (
    VectorEpsilonJoin,
    vector_epsilon_similarity,
)
from .weighted import WeightedCSJResult, weighted_similarity

__all__ = [
    "VectorEpsilonJoin",
    "vector_epsilon_similarity",
    "WeightedCSJResult",
    "weighted_similarity",
    "OnDiskCommunity",
    "out_of_core_similarity",
]
