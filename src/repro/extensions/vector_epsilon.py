"""Per-category epsilon vectors: a natural CSJ generalisation.

The paper fixes one epsilon for all dimensions because every dimension
is a like counter on the same scale.  In practice categories differ in
volume — Table 1 shows Entertainment collecting ~4450x the likes of
Communication_Services — so a deployment may want a *vector* threshold
``eps_i`` per category (e.g. proportional to each category's typical
counter magnitude).  The CSJ condition becomes
``|b_i - a_i| <= eps_i for every i``.

The MinMax encoding generalises verbatim: the per-dimension interval of
a candidate value ``v`` in dimension ``i`` is
``[max(0, v - eps_i), v + eps_i]``, part ranges are the interval sums,
and the encoded ID window and part-overlap tests remain *necessary*
conditions exactly as before.  :class:`VectorEpsilonJoin` implements
both the exhaustive baseline and the encoded (MinMax-style) join under
a vector epsilon, with the same CSF / Hopcroft–Karp selection stage.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.encoding import split_dimensions
from ..core.errors import ConfigurationError
from ..core.matching import build_adjacency, get_matcher
from ..core.types import Community, CSJResult, MatchedPair
from ..core.validation import validate_pair

__all__ = ["VectorEpsilonJoin", "vector_epsilon_similarity"]


class VectorEpsilonJoin:
    """One-to-one join under a per-dimension epsilon vector.

    Parameters
    ----------
    epsilons:
        Sequence of ``d`` non-negative integer thresholds.
    strategy:
        ``"encoded"`` (MinMax-style pruning, default) or ``"baseline"``
        (exhaustive candidate enumeration).
    matcher:
        ``"csf"`` (paper heuristic), ``"hopcroft_karp"`` (maximum) or
        ``"greedy"`` (first-fit, the approximate behaviour).
    n_parts:
        Part count of the generalised encoding (clamped to ``d``).
    """

    def __init__(
        self,
        epsilons: object,
        *,
        strategy: str = "encoded",
        matcher: str = "csf",
        n_parts: int = 4,
    ) -> None:
        vector = np.asarray(epsilons)
        if vector.ndim != 1 or vector.size == 0:
            raise ConfigurationError("epsilons must be a non-empty 1-D sequence")
        if not np.issubdtype(vector.dtype, np.integer):
            rounded = np.rint(vector)
            if not np.array_equal(rounded, vector):
                raise ConfigurationError("epsilons must be integers")
            vector = rounded
        vector = vector.astype(np.int64)
        if (vector < 0).any():
            raise ConfigurationError("epsilons must be non-negative")
        if strategy not in ("encoded", "baseline"):
            raise ConfigurationError(
                f"strategy must be 'encoded' or 'baseline', got {strategy!r}"
            )
        self.epsilons = vector
        self.strategy = strategy
        self.matcher_name = matcher
        self._matcher = get_matcher(matcher)
        self.n_parts = int(n_parts)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def join(self, first: Community, second: Community) -> CSJResult:
        """Run the vector-epsilon CSJ join and package the result."""
        community_b, community_a, swapped = validate_pair(first, second)
        if community_b.n_dims != self.epsilons.size:
            raise ConfigurationError(
                f"epsilon vector has d={self.epsilons.size}, communities "
                f"have d={community_b.n_dims}"
            )
        started = time.perf_counter()
        if self.strategy == "encoded":
            raw_pairs = self._candidates_encoded(
                community_b.vectors, community_a.vectors
            )
        else:
            raw_pairs = self._candidates_baseline(
                community_b.vectors, community_a.vectors
            )
        if raw_pairs:
            matched_b, matched_a = build_adjacency(raw_pairs)
            selected = self._matcher(matched_b, matched_a)
        else:
            selected = []
        elapsed = time.perf_counter() - started
        return CSJResult(
            method=f"vector-epsilon-{self.strategy}",
            exact=self.matcher_name != "greedy",
            size_b=community_b.n_users,
            size_a=community_a.n_users,
            epsilon=int(self.epsilons.max()),
            pairs=[MatchedPair(int(b), int(a)) for b, a in selected],
            elapsed_seconds=elapsed,
            swapped=swapped,
        )

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------
    def _match_mask(self, vector_b: np.ndarray, rows_a: np.ndarray) -> np.ndarray:
        diff = np.abs(rows_a - vector_b)
        return (diff <= self.epsilons).all(axis=1)

    def _candidates_baseline(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray
    ) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        for b_index, vector_b in enumerate(vectors_b):
            hits = np.flatnonzero(self._match_mask(vector_b, vectors_a))
            pairs.extend((b_index, int(a_index)) for a_index in hits)
        return pairs

    def _candidates_encoded(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray
    ) -> list[tuple[int, int]]:
        """Generalised MinMax pruning with per-dimension intervals."""
        n_dims = vectors_b.shape[1]
        slices = split_dimensions(n_dims, min(self.n_parts, n_dims))

        parts_b = np.stack(
            [vectors_b[:, sl].sum(axis=1) for sl in slices], axis=1
        )
        encoded_id = parts_b.sum(axis=1)

        lowered = np.maximum(vectors_a - self.epsilons, 0)
        raised = vectors_a + self.epsilons
        range_min = np.stack([lowered[:, sl].sum(axis=1) for sl in slices], axis=1)
        range_max = np.stack([raised[:, sl].sum(axis=1) for sl in slices], axis=1)
        encoded_min = range_min.sum(axis=1)
        encoded_max = range_max.sum(axis=1)

        order_a = np.lexsort(
            (np.arange(len(encoded_min)), encoded_max, encoded_min)
        )
        encoded_min = encoded_min[order_a]
        encoded_max = encoded_max[order_a]
        range_min = range_min[order_a]
        range_max = range_max[order_a]

        pairs: list[tuple[int, int]] = []
        for b_index in np.argsort(encoded_id, kind="stable"):
            own_id = encoded_id[b_index]
            hi = int(np.searchsorted(encoded_min, own_id, side="right"))
            if hi == 0:
                continue
            window = encoded_max[:hi] >= own_id
            if not window.any():
                continue
            overlap = (
                (parts_b[b_index] >= range_min[:hi])
                & (parts_b[b_index] <= range_max[:hi])
            ).all(axis=1)
            positions = np.flatnonzero(window & overlap)
            if positions.size == 0:
                continue
            rows = order_a[positions]
            full = self._match_mask(vectors_b[b_index], vectors_a[rows])
            pairs.extend(
                (int(b_index), int(a_index)) for a_index in rows[full]
            )
        return pairs


def vector_epsilon_similarity(
    first: Community,
    second: Community,
    epsilons: object,
    **options: object,
) -> CSJResult:
    """One-call vector-epsilon CSJ similarity (Eq. (1) semantics)."""
    return VectorEpsilonJoin(epsilons, **options).join(first, second)
