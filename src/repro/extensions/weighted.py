"""Weighted community similarity.

Eq. (1) counts every matched subscriber equally.  A brand, however,
often cares more about its *engaged* audience: a matched pair of
heavy users signals more shared audience value than a pair of near-
silent accounts.  This extension reweights Eq. (1) by per-user weights:

```
weighted_similarity(B, A) = sum of w(b) over matched b / sum of w(b) over B
```

with ``w`` either uniform (recovering the paper's measure), the user's
total activity (its counter sum), or a caller-supplied weight vector.
The matching itself is produced by any of the stock CSJ methods, so the
one-to-one semantics are untouched — only the aggregation changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms import get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult

__all__ = ["WeightedCSJResult", "weighted_similarity"]


@dataclass(frozen=True)
class WeightedCSJResult:
    """A CSJ result with its weighted aggregation."""

    base: CSJResult
    weighted: float
    unweighted: float
    scheme: str

    @property
    def weighted_percent(self) -> float:
        return 100.0 * self.weighted


def _weights(community: Community, scheme: object) -> np.ndarray:
    if isinstance(scheme, str):
        if scheme == "uniform":
            return np.ones(community.n_users, dtype=np.float64)
        if scheme == "activity":
            totals = community.vectors.sum(axis=1).astype(np.float64)
            return totals + 1.0  # silent accounts still count a little
        raise ConfigurationError(
            f"unknown weight scheme {scheme!r}; use 'uniform', 'activity' "
            "or an explicit weight vector"
        )
    weights = np.asarray(scheme, dtype=np.float64)
    if weights.shape != (community.n_users,):
        raise ConfigurationError(
            f"weight vector must have shape ({community.n_users},), "
            f"got {weights.shape}"
        )
    if (weights < 0).any():
        raise ConfigurationError("weights must be non-negative")
    if weights.sum() == 0:
        raise ConfigurationError("weights must not all be zero")
    return weights


def weighted_similarity(
    first: Community,
    second: Community,
    *,
    epsilon: int,
    weights: object = "activity",
    method: str = "ex-minmax",
    optimize: bool = False,
    **options: object,
) -> WeightedCSJResult:
    """Weighted Eq. (1) over a CSJ matching.

    ``weights`` applies to the (oriented) ``B`` side — the smaller
    community whose coverage Eq. (1) measures.  Accepts ``"uniform"``,
    ``"activity"`` or an explicit per-user vector aligned with the
    oriented ``B`` rows.

    With ``optimize=False`` (default) the matching is produced by the
    chosen stock method, which maximises the *count* of pairs; with
    ``optimize=True`` the matching itself maximises the *matched
    weight* (maximum-weight bipartite matching over the candidate
    graph, via networkx) — the two differ when a heavy user competes
    with several light ones for the same partners.
    """
    if optimize:
        return _optimal_weighted(
            first, second, epsilon=epsilon, weights=weights
        )
    algorithm = get_algorithm(method, epsilon, **options)
    result = algorithm.join(first, second)
    oriented_b = second if result.swapped else first
    weight_vector = _weights(oriented_b, weights)
    matched_rows = [pair.b_index for pair in result.pairs]
    matched_weight = float(weight_vector[matched_rows].sum()) if matched_rows else 0.0
    total_weight = float(weight_vector.sum())
    scheme = weights if isinstance(weights, str) else "custom"
    return WeightedCSJResult(
        base=result,
        weighted=matched_weight / total_weight,
        unweighted=result.similarity,
        scheme=scheme,
    )


def _optimal_weighted(
    first: Community,
    second: Community,
    *,
    epsilon: int,
    weights: object,
) -> WeightedCSJResult:
    """Maximum-weight matching over the exact candidate graph."""
    import time

    import networkx as nx

    from ..core.matching import enumerate_candidate_pairs
    from ..core.types import CSJResult, MatchedPair
    from ..core.validation import validate_pair

    community_b, community_a, swapped = validate_pair(first, second)
    weight_vector = _weights(community_b, weights)
    started = time.perf_counter()
    candidates = enumerate_candidate_pairs(
        community_b.vectors, community_a.vectors, epsilon
    )
    graph = nx.Graph()
    for b_index, a_index in candidates:
        graph.add_edge(
            ("b", b_index), ("a", a_index), weight=float(weight_vector[b_index])
        )
    matching = nx.max_weight_matching(graph)
    pairs = []
    for left, right in matching:
        if left[0] == "a":
            left, right = right, left
        pairs.append(MatchedPair(int(left[1]), int(right[1])))
    pairs.sort(key=lambda pair: pair.b_index)
    elapsed = time.perf_counter() - started
    result = CSJResult(
        method="weighted-optimal",
        exact=True,
        size_b=community_b.n_users,
        size_a=community_a.n_users,
        epsilon=int(epsilon),
        pairs=pairs,
        elapsed_seconds=elapsed,
        swapped=swapped,
    )
    matched_rows = [pair.b_index for pair in pairs]
    matched_weight = float(weight_vector[matched_rows].sum()) if matched_rows else 0.0
    scheme = weights if isinstance(weights, str) else "custom"
    return WeightedCSJResult(
        base=result,
        weighted=matched_weight / float(weight_vector.sum()),
        unweighted=result.similarity,
        scheme=scheme,
    )
