"""The MinMax-SuperEGO hybrid the paper theorises (Section 6.2).

The paper's experimental conclusion ends with a claim it never builds:

    "even if there was a way SuperEGO to work for numeric
    (non-normalized) data, a combined algorithm MinMax-SuperEGO would be
    faster than SuperEGO itself ... that replaced NestedLoopJoin part is
    notably slower than the encoded nested loop join used in MinMax."

This module implements exactly that combination so the claim can be
evaluated: the divide-and-conquer skeleton and EGO-Strategy pruning of
(raw, per-dimension) SuperEGO, with every leaf's nested loop replaced by
the MinMax *encoded* join — the Figure 1 window and part/range filters,
computed once globally and sliced per leaf.

Both variants are provided: ``ap-hybrid`` commits first-fit like
Ap-MinMax, ``ex-hybrid`` collects all leaf candidates and runs one CSF
(or Hopcroft–Karp) call, so its matching is identical to Ex-Baseline's.
The hybrid operates on raw integers with the true per-dimension
condition throughout — no normalisation, no accuracy loss.
"""

from __future__ import annotations

import numpy as np

from ..core.encoding import MinMaxEncoder
from ..core.errors import ConfigurationError
from ..core.events import EventTrace, EventType
from ..core.matching import build_adjacency, get_matcher
from .base import CSJAlgorithm
from .superego import ego_order, grid_cells

__all__ = ["ApHybrid", "ExHybrid"]


class _HybridBase(CSJAlgorithm):
    """SuperEGO recursion + MinMax-encoded leaves (raw integers)."""

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
        t: int = 64,
        n_parts: int = 4,
    ) -> None:
        super().__init__(epsilon, engine=engine, record_trace=record_trace)
        if t < 2:
            raise ConfigurationError(f"threshold t must be >= 2, got {t}")
        self.t = int(t)
        self.n_parts = int(n_parts)

    # ------------------------------------------------------------------
    def _prepare(self, vectors_b: np.ndarray, vectors_a: np.ndarray) -> dict:
        """EGO-sort both sides and attach the global MinMax encoding.

        The encoded arrays are computed once over the full inputs and
        permuted into EGO order, so every leaf slices them for free.
        """
        cells_b = grid_cells(vectors_b, self.epsilon)
        cells_a = grid_cells(vectors_a, self.epsilon)
        spread = np.maximum(
            cells_b.max(axis=0) - cells_b.min(axis=0),
            cells_a.max(axis=0) - cells_a.min(axis=0),
        )
        dim_order = np.argsort(-spread, kind="stable")
        order_b = ego_order(cells_b, dim_order)
        order_a = ego_order(cells_a, dim_order)

        encoder = MinMaxEncoder(
            self.epsilon, min(self.n_parts, vectors_b.shape[1])
        )
        parts_b = encoder.part_sums(vectors_b)
        encoded_id = parts_b.sum(axis=1)
        lowered = np.maximum(vectors_a - self.epsilon, 0)
        raised = vectors_a + self.epsilon
        slices = encoder.part_slices(vectors_a.shape[1])
        range_min = np.stack([lowered[:, sl].sum(axis=1) for sl in slices], axis=1)
        range_max = np.stack([raised[:, sl].sum(axis=1) for sl in slices], axis=1)

        return {
            "raw_b": vectors_b[order_b],
            "raw_a": vectors_a[order_a],
            "order_b": order_b,
            "order_a": order_a,
            "encoded_id": encoded_id[order_b],
            "parts_b": parts_b[order_b],
            "range_min": range_min[order_a],
            "range_max": range_max[order_a],
            "encoded_min": range_min[order_a].sum(axis=1),
            "encoded_max": range_max[order_a].sum(axis=1),
        }

    def _ego_strategy_prunes(self, raw_b: np.ndarray, raw_a: np.ndarray) -> bool:
        """Value-space bounding-box gap test (per-dimension condition)."""
        gaps = np.maximum(
            raw_b.min(axis=0) - raw_a.max(axis=0),
            raw_a.min(axis=0) - raw_b.max(axis=0),
        )
        return bool((gaps > self.epsilon).any())

    def _recurse(
        self, state: dict, lo_b: int, hi_b: int, lo_a: int, hi_a: int,
        trace: EventTrace,
    ) -> None:
        if lo_b >= hi_b or lo_a >= hi_a:
            return
        if self._ego_strategy_prunes(
            state["raw_b"][lo_b:hi_b], state["raw_a"][lo_a:hi_a]
        ):
            trace.emit_bulk(EventType.MIN_PRUNE, 1)
            return
        len_b, len_a = hi_b - lo_b, hi_a - lo_a
        if len_b < self.t and len_a < self.t:
            self._leaf_join(state, lo_b, hi_b, lo_a, hi_a, trace)
            return
        if len_b < self.t:
            mid_a = lo_a + len_a // 2
            self._recurse(state, lo_b, hi_b, lo_a, mid_a, trace)
            self._recurse(state, lo_b, hi_b, mid_a, hi_a, trace)
            return
        if len_a < self.t:
            mid_b = lo_b + len_b // 2
            self._recurse(state, lo_b, mid_b, lo_a, hi_a, trace)
            self._recurse(state, mid_b, hi_b, lo_a, hi_a, trace)
            return
        mid_b = lo_b + len_b // 2
        mid_a = lo_a + len_a // 2
        self._recurse(state, lo_b, mid_b, lo_a, mid_a, trace)
        self._recurse(state, lo_b, mid_b, mid_a, hi_a, trace)
        self._recurse(state, mid_b, hi_b, lo_a, mid_a, trace)
        self._recurse(state, mid_b, hi_b, mid_a, hi_a, trace)

    def _leaf_candidates(
        self, state: dict, lo_b: int, hi_b: int, lo_a: int, hi_a: int,
        trace: EventTrace,
    ) -> list[tuple[int, int]]:
        """The encoded nested loop join of one leaf rectangle.

        Applies the window test (encoded ID within [Min, Max]), then the
        part/range overlap test, and only then the full d-dimensional
        comparison — the MinMax pipeline, restricted to the leaf.
        Returns EGO-order index pairs.
        """
        encoded_id = state["encoded_id"][lo_b:hi_b]
        encoded_min = state["encoded_min"][lo_a:hi_a]
        encoded_max = state["encoded_max"][lo_a:hi_a]
        window = (encoded_id[:, None] >= encoded_min[None, :]) & (
            encoded_id[:, None] <= encoded_max[None, :]
        )
        if not window.any():
            trace.emit_bulk(EventType.NO_OVERLAP, int(window.size))
            return []
        parts_b = state["parts_b"][lo_b:hi_b]
        range_min = state["range_min"][lo_a:hi_a]
        range_max = state["range_max"][lo_a:hi_a]
        overlap = (
            (parts_b[:, None, :] >= range_min[None, :, :])
            & (parts_b[:, None, :] <= range_max[None, :, :])
        ).all(axis=2)
        survivors = window & overlap
        trace.emit_bulk(EventType.NO_OVERLAP, int(window.sum() - survivors.sum()))
        rows, cols = np.nonzero(survivors)
        if rows.size == 0:
            return []
        block_b = state["raw_b"][lo_b:hi_b]
        block_a = state["raw_a"][lo_a:hi_a]
        pairs: list[tuple[int, int]] = []
        matches = 0
        for i, j in zip(rows.tolist(), cols.tolist()):
            diff = np.abs(block_b[i] - block_a[j])
            if int(diff.max(initial=0)) <= self.epsilon:
                pairs.append((lo_b + i, lo_a + j))
                matches += 1
        trace.emit_bulk(EventType.MATCH, matches)
        trace.emit_bulk(EventType.NO_MATCH, rows.size - matches)
        return pairs

    def _leaf_join(
        self, state: dict, lo_b: int, hi_b: int, lo_a: int, hi_a: int,
        trace: EventTrace,
    ) -> None:
        raise NotImplementedError

    # Engines share the implementation (the leaf filters are already
    # vectorised; a pure-python replica would add nothing but time).
    def _join_python(self, vectors_b, vectors_a, trace):
        return self._join_common(vectors_b, vectors_a, trace)

    def _join_numpy(self, vectors_b, vectors_a, trace):
        return self._join_common(vectors_b, vectors_a, trace)

    def _join_common(self, vectors_b, vectors_a, trace):
        raise NotImplementedError


class ApHybrid(_HybridBase):
    """Approximate hybrid: first-fit greedy over encoded leaves."""

    name = "ap-hybrid"
    exact = False

    def _join_common(self, vectors_b, vectors_a, trace):
        state = self._prepare(vectors_b, vectors_a)
        state["used_b"] = np.zeros(len(vectors_b), dtype=bool)
        state["used_a"] = np.zeros(len(vectors_a), dtype=bool)
        state["pairs"] = []
        self._recurse(state, 0, len(vectors_b), 0, len(vectors_a), trace)
        order_b, order_a = state["order_b"], state["order_a"]
        return [(int(order_b[i]), int(order_a[j])) for i, j in state["pairs"]]

    def _leaf_join(self, state, lo_b, hi_b, lo_a, hi_a, trace):
        used_b, used_a = state["used_b"], state["used_a"]
        for i, j in self._leaf_candidates(state, lo_b, hi_b, lo_a, hi_a, trace):
            if used_b[i] or used_a[j]:
                continue
            used_b[i] = True
            used_a[j] = True
            state["pairs"].append((i, j))


class ExHybrid(_HybridBase):
    """Exact hybrid: collect all encoded-leaf candidates, one CSF call."""

    name = "ex-hybrid"
    exact = True

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
        t: int = 64,
        n_parts: int = 4,
        matcher: str = "csf",
    ) -> None:
        super().__init__(
            epsilon,
            engine=engine,
            record_trace=record_trace,
            t=t,
            n_parts=n_parts,
        )
        self.matcher_name = matcher
        self._matcher = get_matcher(matcher)

    def _join_common(self, vectors_b, vectors_a, trace):
        state = self._prepare(vectors_b, vectors_a)
        state["pairs"] = []
        self._recurse(state, 0, len(vectors_b), 0, len(vectors_a), trace)
        order_b, order_a = state["order_b"], state["order_a"]
        raw_pairs = [(int(order_b[i]), int(order_a[j])) for i, j in state["pairs"]]
        if not raw_pairs:
            return []
        matched_b, matched_a = build_adjacency(raw_pairs)
        trace.note(f"CSF over {len(raw_pairs)} candidate pairs")
        return self._matcher(matched_b, matched_a)

    def _leaf_join(self, state, lo_b, hi_b, lo_a, hi_a, trace):
        state["pairs"].extend(
            self._leaf_candidates(state, lo_b, hi_b, lo_a, hi_a, trace)
        )
