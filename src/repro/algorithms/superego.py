"""The SuperEGO competitor methods (Section 5.2), adapted for CSJ.

SuperEGO [Kalashnikov, VLDBJ 2013] is the state of the art for the
classic epsilon-join.  The paper adapts it to CSJ as follows:

* all data is **normalised** into ``[0, 1]^d`` ("since else the
  algorithm does not work"), and epsilon becomes an **aggregate**
  distance over all d dimensions: ``27 * (1/152532)`` for VK and
  ``27 * (15000/500000)`` for Synthetic — i.e. the join condition turns
  into ``sum_i |b_i - a_i| <= d * eps / max`` instead of the CSJ
  per-dimension test;
* the framework stays a divide-and-conquer recursion: the
  ``EGO-Strategy`` prunes a ``<B, A>`` rectangle when it provably holds
  no joinable pair, segments smaller than the predefined threshold ``t``
  fall through to a nested-loop join, and larger segments split in half;
* ``Ap-SuperEGO`` swaps the leaf nested loop for the Ap-Baseline one
  (first-fit greedy with globally shared "used" flags); ``Ex-SuperEGO``
  collects all leaf matches and calls CSF once at the end.

Why SuperEGO loses accuracy (the paper's Tables 3–6 vs 7–10): every true
CSJ pair satisfies the aggregate condition (``|b_i - a_i| <= eps`` for
every ``i`` implies the sum is at most ``d * eps``), but the aggregate
condition also admits pairs that violate the per-dimension test.  Such
*false candidates* participate in the one-to-one matching and consume
users; since they are not genuinely similar they do not count towards
Eq. (1), so the reported similarity drops.  On the skewed VK data false
candidates are plentiful (many low-activity users sit within a small
aggregate distance of each other) and the loss is visible; on the
uniform Synthetic data the aggregate ball is so selective that false
candidates essentially never appear, and the exact variant agrees with
Ex-Baseline/Ex-MinMax to the last pair — both effects exactly as the
paper reports.

Pass ``use_normalized=False`` for the "theoretic case" the paper's
conclusion discusses — SuperEGO running directly on numeric data with
the true per-dimension condition (no conversion, no accuracy loss).

Implementation notes (see DESIGN.md): rows are sorted in **epsilon grid
order** (dimensions reordered by cell spread, lexicographic by cell);
the EGO-Strategy prunes a rectangle from the segments' value-space
bounding boxes — per-dimension gap above epsilon in raw mode, summed
gaps above ``d * epsilon`` in aggregate mode — which is exactly the
active join condition, so no joinable pair is ever lost.  Pruned
rectangles are counted as MIN PRUNE events.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError
from ..core.events import EventTrace, EventType
from ..core.matching import build_adjacency, get_matcher, linf_match_mask
from .base import CSJAlgorithm

__all__ = ["ApSuperEGO", "ExSuperEGO", "ego_order", "grid_cells"]


def grid_cells(vectors: np.ndarray, cell_width: int) -> np.ndarray:
    """Epsilon-grid cell coordinates of integer counter vectors.

    The width is clamped at 1 so a zero epsilon degenerates to one cell
    per counter value, keeping the pruning sound.
    """
    width = max(int(cell_width), 1)
    return vectors // width


def ego_order(cells: np.ndarray, dim_order: np.ndarray) -> np.ndarray:
    """Row order sorting by grid cells, most selective dimension first.

    ``numpy.lexsort`` sorts by the *last* key first, so the dimension
    order is reversed when building the key list.
    """
    keys = [cells[:, dim] for dim in dim_order[::-1]]
    return np.lexsort(keys)


class _SuperEGOBase(CSJAlgorithm):
    """Shared recursion framework of both SuperEGO variants."""

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
        t: int = 32,
        max_value: int | None = None,
        use_normalized: bool = True,
    ) -> None:
        super().__init__(epsilon, engine=engine, record_trace=record_trace)
        if t < 2:
            raise ConfigurationError(f"threshold t must be >= 2, got {t}")
        self.t = int(t)
        self.max_value = max_value
        self.use_normalized = bool(use_normalized)

    # -- preparation ---------------------------------------------------
    def _prepare(self, vectors_b: np.ndarray, vectors_a: np.ndarray) -> dict:
        """Sort both sides in EGO order and build the leaf-test arrays."""
        n_dims = vectors_b.shape[1]
        # Grid cells are only used for the EGO *ordering* (locality), so
        # the epsilon-wide grid is right in both modes; pruning happens
        # on exact value-space bounding boxes in _ego_strategy_prunes.
        cells_b = grid_cells(vectors_b, self.epsilon)
        cells_a = grid_cells(vectors_a, self.epsilon)
        # Most selective dimension first: widest spread in grid cells.
        spread = np.maximum(
            cells_b.max(axis=0) - cells_b.min(axis=0),
            cells_a.max(axis=0) - cells_a.min(axis=0),
        )
        dim_order = np.argsort(-spread, kind="stable")
        order_b = ego_order(cells_b, dim_order)
        order_a = ego_order(cells_a, dim_order)

        if self.use_normalized:
            max_value = self.max_value
            if max_value is None:
                max_value = int(max(vectors_b.max(), vectors_a.max(), 1))
            values_b = (vectors_b / max_value).astype(np.float32)
            values_a = (vectors_a / max_value).astype(np.float32)
            threshold = np.float32(n_dims * self.epsilon / max_value)
        else:
            values_b = vectors_b
            values_a = vectors_a
            threshold = self.epsilon
        return {
            "raw_b": vectors_b[order_b],
            "raw_a": vectors_a[order_a],
            "values_b": values_b[order_b],
            "values_a": values_a[order_a],
            "order_b": order_b,
            "order_a": order_a,
            "threshold": threshold,
        }

    # -- leaf join condition --------------------------------------------
    def _condition_row(
        self, value_b: np.ndarray, block_a: np.ndarray, threshold: object
    ) -> np.ndarray:
        """Join condition of one ``b`` against a block of ``a`` rows."""
        if self.use_normalized:
            return np.abs(block_a - value_b).sum(axis=1) <= threshold
        return linf_match_mask(value_b, block_a, self.epsilon)

    def _condition_block(
        self, block_b: np.ndarray, block_a: np.ndarray, threshold: object
    ) -> np.ndarray:
        """Join condition of a whole leaf rectangle at once.

        Returns the boolean ``(len_b, len_a)`` match matrix; leaves are
        at most ``t`` x ``2t`` rows so the broadcast stays tiny.
        """
        diff = np.abs(block_b[:, None, :] - block_a[None, :, :])
        if self.use_normalized:
            return diff.sum(axis=2) <= threshold
        return (diff <= self.epsilon).all(axis=2)

    # -- EGO strategy ----------------------------------------------------
    def _ego_strategy_prunes(self, raw_b: np.ndarray, raw_a: np.ndarray) -> bool:
        """True when the two segments are provably non-joinable.

        Computes the per-dimension gap between the segments' value-space
        bounding boxes: any pair drawn from the two segments differs by
        at least that gap in that dimension.  In raw mode the rectangle
        is dead once some gap exceeds epsilon; in the normalised
        (aggregate) mode once the *sum* of gaps exceeds ``d * epsilon``
        — the exact counterpart of the active join condition, so the
        pruning never loses a joinable pair.
        """
        min_b = raw_b.min(axis=0)
        max_b = raw_b.max(axis=0)
        min_a = raw_a.min(axis=0)
        max_a = raw_a.max(axis=0)
        gaps = np.maximum(min_b - max_a, min_a - max_b)
        np.maximum(gaps, 0, out=gaps)
        if self.use_normalized:
            return bool(gaps.sum() > raw_b.shape[1] * self.epsilon)
        return bool((gaps > self.epsilon).any())

    # -- recursion -------------------------------------------------------
    def _recurse(
        self,
        state: dict,
        lo_b: int,
        hi_b: int,
        lo_a: int,
        hi_a: int,
        trace: EventTrace,
    ) -> None:
        if lo_b >= hi_b or lo_a >= hi_a:
            return
        if self._ego_strategy_prunes(
            state["raw_b"][lo_b:hi_b], state["raw_a"][lo_a:hi_a]
        ):
            trace.emit_bulk(EventType.MIN_PRUNE, 1)
            return
        len_b = hi_b - lo_b
        len_a = hi_a - lo_a
        if len_b < self.t and len_a < self.t:
            self._leaf_join(state, lo_b, hi_b, lo_a, hi_a, trace)
            return
        if len_b < self.t:
            mid_a = lo_a + len_a // 2
            self._recurse(state, lo_b, hi_b, lo_a, mid_a, trace)
            self._recurse(state, lo_b, hi_b, mid_a, hi_a, trace)
            return
        if len_a < self.t:
            mid_b = lo_b + len_b // 2
            self._recurse(state, lo_b, mid_b, lo_a, hi_a, trace)
            self._recurse(state, mid_b, hi_b, lo_a, hi_a, trace)
            return
        mid_b = lo_b + len_b // 2
        mid_a = lo_a + len_a // 2
        self._recurse(state, lo_b, mid_b, lo_a, mid_a, trace)
        self._recurse(state, lo_b, mid_b, mid_a, hi_a, trace)
        self._recurse(state, mid_b, hi_b, lo_a, mid_a, trace)
        self._recurse(state, mid_b, hi_b, mid_a, hi_a, trace)

    def _leaf_join(
        self,
        state: dict,
        lo_b: int,
        hi_b: int,
        lo_a: int,
        hi_a: int,
        trace: EventTrace,
    ) -> None:
        raise NotImplementedError

    def _init_state(self, state: dict, n_b: int, n_a: int) -> None:
        raise NotImplementedError

    def _run(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> dict:
        state = self._prepare(vectors_b, vectors_a)
        self._init_state(state, len(vectors_b), len(vectors_a))
        self._recurse(state, 0, len(vectors_b), 0, len(vectors_a), trace)
        return state

    def _verify_pairs(
        self,
        pairs: list[tuple[int, int]],
        vectors_b: np.ndarray,
        vectors_a: np.ndarray,
    ) -> list[tuple[int, int]]:
        """Keep only pairs that satisfy the true per-dimension condition.

        The method matched them under its aggregate condition, but only
        genuinely similar pairs count towards Eq. (1); users consumed by
        false candidates are simply lost — the source of SuperEGO's
        accuracy gap.  In raw (non-normalised) mode the join condition is
        already exact and this is the identity.
        """
        if not self.use_normalized:
            return pairs
        return [
            (b, a)
            for b, a in pairs
            if bool((np.abs(vectors_b[b] - vectors_a[a]) <= self.epsilon).all())
        ]

    # Both engines share the recursion; they differ only in the leaf
    # implementation, selected via self.engine inside _leaf_join.
    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        return self._join_common(vectors_b, vectors_a, trace)

    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        return self._join_common(vectors_b, vectors_a, trace)

    def _join_common(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        raise NotImplementedError


class ApSuperEGO(_SuperEGOBase):
    """Approximate SuperEGO: first-fit greedy leaves, shared used flags."""

    name = "ap-superego"
    exact = False

    def _init_state(self, state: dict, n_b: int, n_a: int) -> None:
        state["used_b"] = np.zeros(n_b, dtype=bool)
        state["used_a"] = np.zeros(n_a, dtype=bool)
        state["pairs"] = []

    def _leaf_join(
        self,
        state: dict,
        lo_b: int,
        hi_b: int,
        lo_a: int,
        hi_a: int,
        trace: EventTrace,
    ) -> None:
        values_b = state["values_b"]
        values_a = state["values_a"]
        used_b = state["used_b"]
        used_a = state["used_a"]
        threshold = state["threshold"]
        if self.engine == "numpy":
            free_b = [i for i in range(lo_b, hi_b) if not used_b[i]]
            if not free_b:
                return
            matrix = self._condition_block(
                values_b[free_b], values_a[lo_a:hi_a], threshold
            )
            for row, i in enumerate(free_b):
                mask = matrix[row] & ~used_a[lo_a:hi_a]
                hits = np.flatnonzero(mask)
                if hits.size:
                    j = lo_a + int(hits[0])
                    used_b[i] = True
                    used_a[j] = True
                    state["pairs"].append((i, j))
                    trace.emit_bulk(EventType.MATCH, 1)
            return
        for i in range(lo_b, hi_b):
            if used_b[i]:
                continue
            for j in range(lo_a, hi_a):
                if used_a[j]:
                    continue
                row = values_a[j : j + 1]
                if bool(self._condition_row(values_b[i], row, threshold)[0]):
                    trace.emit(EventType.MATCH, f"b#{i}", f"a#{j}")
                    used_b[i] = True
                    used_a[j] = True
                    state["pairs"].append((i, j))
                    break
                trace.emit(EventType.NO_MATCH, f"b#{i}", f"a#{j}")

    def _join_common(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        state = self._run(vectors_b, vectors_a, trace)
        order_b = state["order_b"]
        order_a = state["order_a"]
        pairs = [(int(order_b[i]), int(order_a[j])) for i, j in state["pairs"]]
        return self._verify_pairs(pairs, vectors_b, vectors_a)


class ExSuperEGO(_SuperEGOBase):
    """Exact SuperEGO: collect all leaf matches, then one CSF call."""

    name = "ex-superego"
    exact = True

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
        t: int = 32,
        max_value: int | None = None,
        use_normalized: bool = True,
        matcher: str = "csf",
        n_jobs: int = 1,
    ) -> None:
        super().__init__(
            epsilon,
            engine=engine,
            record_trace=record_trace,
            t=t,
            max_value=max_value,
            use_normalized=use_normalized,
        )
        self.matcher_name = matcher
        self._matcher = get_matcher(matcher)
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)

    def _init_state(self, state: dict, n_b: int, n_a: int) -> None:
        state["pairs"] = []

    def _leaf_join(
        self,
        state: dict,
        lo_b: int,
        hi_b: int,
        lo_a: int,
        hi_a: int,
        trace: EventTrace,
    ) -> None:
        values_b = state["values_b"]
        values_a = state["values_a"]
        threshold = state["threshold"]
        if self.engine == "numpy":
            matrix = self._condition_block(
                values_b[lo_b:hi_b], values_a[lo_a:hi_a], threshold
            )
            rows, cols = np.nonzero(matrix)
            trace.emit_bulk(EventType.MATCH, int(rows.size))
            trace.emit_bulk(EventType.NO_MATCH, int(matrix.size - rows.size))
            state["pairs"].extend(
                zip((rows + lo_b).tolist(), (cols + lo_a).tolist())
            )
            return
        for i in range(lo_b, hi_b):
            for j in range(lo_a, hi_a):
                row = values_a[j : j + 1]
                if bool(self._condition_row(values_b[i], row, threshold)[0]):
                    trace.emit(EventType.MATCH, f"b#{i}", f"a#{j}")
                    state["pairs"].append((i, j))
                else:
                    trace.emit(EventType.NO_MATCH, f"b#{i}", f"a#{j}")

    def _join_common(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        if self.n_jobs > 1 and self.engine == "numpy":
            state = self._prepare(vectors_b, vectors_a)
            self._init_state(state, len(vectors_b), len(vectors_a))
            state["pairs"] = self._parallel_collect(
                state, len(vectors_b), len(vectors_a), trace
            )
        else:
            state = self._run(vectors_b, vectors_a, trace)
        order_b = state["order_b"]
        order_a = state["order_a"]
        raw_pairs = [(int(order_b[i]), int(order_a[j])) for i, j in state["pairs"]]
        if not raw_pairs:
            return []
        matched_b, matched_a = build_adjacency(raw_pairs)
        trace.note(f"CSF over {len(raw_pairs)} candidate pairs")
        matched = self._matcher(matched_b, matched_a)
        return self._verify_pairs(matched, vectors_b, vectors_a)

    def _parallel_collect(
        self, state: dict, n_b: int, n_a: int, trace: EventTrace
    ) -> list[tuple[int, int]]:
        """Collect candidate pairs over ``n_jobs`` B-range slices.

        The paper notes SuperEGO "can run in parallel" (its experiments
        pin one thread for fairness).  The exact variant parallelises
        naturally: each worker recurses over a contiguous slice of the
        EGO-sorted ``B`` against all of ``A`` and candidate collection
        is order-independent — the single CSF call afterwards makes the
        final matching identical to the serial run.
        """
        import concurrent.futures

        bounds = np.linspace(0, n_b, self.n_jobs + 1, dtype=int)

        def collect(lo_b: int, hi_b: int) -> tuple[list, EventTrace]:
            local_state = dict(state)
            local_state["pairs"] = []
            local_trace = EventTrace(record=False)
            self._recurse(local_state, lo_b, hi_b, 0, n_a, local_trace)
            return local_state["pairs"], local_trace

        pairs: list[tuple[int, int]] = []
        with concurrent.futures.ThreadPoolExecutor(self.n_jobs) as pool:
            futures = [
                pool.submit(collect, int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if lo < hi
            ]
            for future in futures:
                chunk_pairs, chunk_trace = future.result()
                pairs.extend(chunk_pairs)
                trace.absorb(chunk_trace.counts)
        return pairs
