"""The Baseline competitor methods (Section 5.1).

``Ap-Baseline`` is a nested-loop join: for every ``b`` it scans ``A`` in
order and commits to the first user within per-dimension epsilon, then
moves on (first-fit greedy).  ``skip``/``offset`` bookkeeping — here the
offset simply advances over the leading already-matched ``a`` entries —
speeds up the scan exactly as in Ap-MinMax.

``Ex-Baseline`` first materialises *all* matches between ``B`` and ``A``
with a nested loop, then builds the four structures ``matched_B``,
``matched_A``, ``sortedM_B``, ``sortedM_A`` and calls the CSF function
once (Section 5.1), i.e. it solves the same join without any encoding-
based pruning.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError
from ..core.events import EventTrace, EventType
from ..core.matching import (
    build_adjacency,
    enumerate_candidate_pairs,
    get_matcher,
    linf_match,
    linf_match_mask,
)
from .base import CSJAlgorithm

__all__ = ["ApBaseline", "ExBaseline"]


class ApBaseline(CSJAlgorithm):
    """Approximate Baseline: first-fit greedy nested-loop join."""

    name = "ap-baseline"
    exact = False

    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        n_b, n_a = len(vectors_b), len(vectors_a)
        used_a = np.zeros(n_a, dtype=bool)
        offset = 0
        pairs: list[tuple[int, int]] = []
        for b_index in range(n_b):
            while offset < n_a and used_a[offset]:
                offset += 1
            for a_index in range(offset, n_a):
                if used_a[a_index]:
                    continue
                if linf_match(vectors_b[b_index], vectors_a[a_index], self.epsilon):
                    trace.emit(
                        EventType.MATCH, f"b{b_index + 1}", f"a{a_index + 1}"
                    )
                    pairs.append((b_index, a_index))
                    used_a[a_index] = True
                    break
                trace.emit(EventType.NO_MATCH, f"b{b_index + 1}", f"a{a_index + 1}")
        return pairs

    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        n_a = len(vectors_a)
        used_a = np.zeros(n_a, dtype=bool)
        offset = 0
        pairs: list[tuple[int, int]] = []
        for b_index, vector_b in enumerate(vectors_b):
            while offset < n_a and used_a[offset]:
                offset += 1
            mask = linf_match_mask(vector_b, vectors_a, self.epsilon)
            mask &= ~used_a
            candidates = np.flatnonzero(mask)
            if candidates.size:
                a_index = int(candidates[0])
                # The python engine scans free slots in order and fails
                # on every free a before the first fit.
                trace.emit_bulk(
                    EventType.NO_MATCH, int(np.count_nonzero(~used_a[offset:a_index]))
                )
                used_a[a_index] = True
                pairs.append((b_index, a_index))
                trace.emit_bulk(EventType.MATCH, 1)
            else:
                trace.emit_bulk(
                    EventType.NO_MATCH, int(np.count_nonzero(~used_a[offset:]))
                )
        return pairs


class ExBaseline(CSJAlgorithm):
    """Exact Baseline: full nested-loop join followed by one CSF call."""

    name = "ex-baseline"
    exact = True

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
        matcher: str = "csf",
        block_size: int = 512,
    ) -> None:
        super().__init__(epsilon, engine=engine, record_trace=record_trace)
        self.matcher_name = matcher
        self._matcher = get_matcher(matcher)
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)

    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        raw_pairs: list[tuple[int, int]] = []
        for b_index in range(len(vectors_b)):
            for a_index in range(len(vectors_a)):
                if linf_match(vectors_b[b_index], vectors_a[a_index], self.epsilon):
                    trace.emit(
                        EventType.MATCH, f"b{b_index + 1}", f"a{a_index + 1}"
                    )
                    raw_pairs.append((b_index, a_index))
                else:
                    trace.emit(
                        EventType.NO_MATCH, f"b{b_index + 1}", f"a{a_index + 1}"
                    )
        return self._select(raw_pairs, trace)

    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        with trace.stage("enumerate"):
            raw_pairs = enumerate_candidate_pairs(
                vectors_b,
                vectors_a,
                self.epsilon,
                block_size=self.block_size,
                metrics=trace.metrics,
            )
        trace.emit_bulk(EventType.MATCH, len(raw_pairs))
        trace.emit_bulk(
            EventType.NO_MATCH, len(vectors_b) * len(vectors_a) - len(raw_pairs)
        )
        return self._select(raw_pairs, trace)

    def _select(
        self, raw_pairs: list[tuple[int, int]], trace: EventTrace
    ) -> list[tuple[int, int]]:
        """Build matched_B / matched_A and call the matcher once."""
        if not raw_pairs:
            return []
        with trace.stage("matching"):
            matched_b, matched_a = build_adjacency(raw_pairs)
            trace.note(f"CSF over {len(raw_pairs)} candidate pairs")
            return self._matcher(matched_b, matched_a)
