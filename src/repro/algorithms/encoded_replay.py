"""Encoded-level replay of the MinMax algorithms (Figures 2 and 3).

The paper illustrates Ap-MinMax and Ex-MinMax with hand-picked encoded
values: every ``a`` is shown as ``a3:(42, 72)`` (encoded Min/Max) and
every ``b`` as ``b2:48`` (encoded ID), and the runs unfold as numbered
*instances* — snapshots of the remaining ``Encd_A``/``Encd_B`` columns
followed by the events the current ``b`` produces.

This module replays the algorithms at exactly that level of
abstraction: the inputs are encoded entries plus an *outcome oracle*
that decides, for each in-window comparison, whether it is a NO
OVERLAP, NO MATCH or MATCH (in the real algorithms those outcomes come
from the part ranges and the d-dimensional vectors; the figures fix
them by construction).  The replays reproduce the two figures verbatim
— the tests assert the full instance-by-instance text — and double as
an executable specification of the control flow: ``skip``/``offset``
handling, maxV maintenance and the CSF segment flushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError, ValidationError
from ..core.matching import build_adjacency, cover_smallest_first

__all__ = [
    "EncodedB",
    "EncodedA",
    "Outcome",
    "ReplayInstance",
    "ReplayResult",
    "replay_ap_minmax",
    "replay_ex_minmax",
    "FIGURE2_B",
    "FIGURE2_A",
    "FIGURE2_ORACLE",
    "FIGURE3_B",
    "FIGURE3_A",
    "FIGURE3_ORACLE",
]


@dataclass(frozen=True)
class EncodedB:
    """One ``Encd_B`` entry as the figures draw it (``b2:48``)."""

    label: str
    encoded_id: int

    def render(self) -> str:
        return f"{self.label}:{self.encoded_id}"


@dataclass(frozen=True)
class EncodedA:
    """One ``Encd_A`` entry as the figures draw it (``a3:(42, 72)``)."""

    label: str
    encoded_min: int
    encoded_max: int

    def render(self) -> str:
        return f"{self.label}:({self.encoded_min}, {self.encoded_max})"


#: Oracle outcomes for in-window comparisons.
Outcome = str
NO_OVERLAP: Outcome = "NO OVERLAP"
NO_MATCH: Outcome = "NO MATCH"
MATCH: Outcome = "MATCH"
_VALID_OUTCOMES = (NO_OVERLAP, NO_MATCH, MATCH)

Oracle = dict[tuple[str, str], Outcome]


@dataclass
class ReplayInstance:
    """One numbered instance: the remaining columns plus event lines."""

    number: int
    column_a: list[str]
    column_b: list[str]
    lines: list[str] = field(default_factory=list)
    max_v: int | None = None  # shown by the Figure 3 style only

    def render(self) -> str:
        width = max([len(entry) for entry in self.column_a], default=0)
        rows = []
        for position in range(max(len(self.column_a), len(self.column_b))):
            left = self.column_a[position] if position < len(self.column_a) else ""
            right = self.column_b[position] if position < len(self.column_b) else ""
            rows.append(f"{left.ljust(width)}  {right}".rstrip())
        body = [f"<< {self.number} >>"] + rows + ["====="]
        if self.max_v is not None:
            body.append(f"* maxV = {self.max_v}")
        body.extend(self.lines)
        return "\n".join(body)


@dataclass
class ReplayResult:
    """The full replay: instances plus the final matched pairs."""

    instances: list[ReplayInstance]
    matches: list[tuple[str, str]]

    def render(self) -> str:
        blocks = [instance.render() for instance in self.instances]
        pairs = ", ".join(f"<{b}, {a}>" for b, a in self.matches)
        blocks.append(f"MATCHES = {{{pairs}}}")
        return "\n\n".join(blocks)


def _validate(
    entries_b: list[EncodedB], entries_a: list[EncodedA], oracle: Oracle
) -> None:
    ids = [entry.encoded_id for entry in entries_b]
    if ids != sorted(ids):
        raise ValidationError("Encd_B must ascend on encoded_ID")
    mins = [entry.encoded_min for entry in entries_a]
    if mins != sorted(mins):
        raise ValidationError("Encd_A must ascend on encoded_Min")
    for outcome in oracle.values():
        if outcome not in _VALID_OUTCOMES:
            raise ConfigurationError(f"unknown oracle outcome {outcome!r}")


def _lookup(oracle: Oracle, entry_b: EncodedB, entry_a: EncodedA) -> Outcome:
    try:
        return oracle[(entry_b.label, entry_a.label)]
    except KeyError:
        raise ConfigurationError(
            f"oracle has no outcome for in-window pair "
            f"({entry_b.label}, {entry_a.label})"
        ) from None


def replay_ap_minmax(
    entries_b: list[EncodedB],
    entries_a: list[EncodedA],
    oracle: Oracle,
) -> ReplayResult:
    """Replay Algorithm Ap-MinMax at the encoded level (Figure 2)."""
    _validate(entries_b, entries_a, oracle)
    n_a = len(entries_a)
    used = [False] * n_a
    offset = 0
    matches: list[tuple[str, str]] = []
    instances: list[ReplayInstance] = []

    for entry_b in entries_b:
        while offset < n_a and used[offset]:
            offset += 1
        remaining_b = entries_b[entries_b.index(entry_b):]
        instance = ReplayInstance(
            number=len(instances) + 1,
            column_a=[
                entries_a[j].render() for j in range(offset, n_a) if not used[j]
            ],
            column_b=[entry.render() for entry in remaining_b],
        )
        skip = True
        j = offset
        while j < n_a:
            if used[j]:
                j += 1
                continue
            entry_a = entries_a[j]
            pair = f"* {entry_b.render()}"
            if entry_b.encoded_id < entry_a.encoded_min:
                instance.lines.append(
                    f"{pair} < {entry_a.render()} => MIN PRUNE"
                )
                break
            if entry_b.encoded_id <= entry_a.encoded_max:
                skip = False
                outcome = _lookup(oracle, entry_b, entry_a)
                instance.lines.append(f"{pair} IN {entry_a.render()} => {outcome}")
                if outcome == MATCH:
                    matches.append((entry_b.label, entry_a.label))
                    used[j] = True
                    break
                j += 1
                continue
            if skip:
                instance.lines.append(
                    f"{pair} > {entry_a.render()} => MAX PRUNE"
                )
                offset = j + 1
                # The figure dedicates one instance to each offset advance.
                instances.append(instance)
                remaining_b = entries_b[entries_b.index(entry_b):]
                instance = ReplayInstance(
                    number=len(instances) + 1,
                    column_a=[
                        entries_a[p].render()
                        for p in range(j + 1, n_a)
                        if not used[p]
                    ],
                    column_b=[entry.render() for entry in remaining_b],
                )
            j += 1
        instances.append(instance)
    # Drop empty trailing snapshots (a fully pruned b adds no lines).
    instances = [inst for inst in instances if inst.lines]
    for number, instance in enumerate(instances, start=1):
        instance.number = number
    return ReplayResult(instances=instances, matches=matches)


def replay_ex_minmax(
    entries_b: list[EncodedB],
    entries_a: list[EncodedA],
    oracle: Oracle,
) -> ReplayResult:
    """Replay Algorithm Ex-MinMax at the encoded level (Figure 3).

    Matched entries accumulate in ``matched_B``/``matched_A``; when the
    current ``b`` finishes (MIN PRUNE or exhausted scan) and the next
    ``b``'s encoded ID exceeds ``maxV``, the segment is flushed through
    CSF and the covered entries leave the columns.
    """
    _validate(entries_b, entries_a, oracle)
    n_a = len(entries_a)
    consumed_a = [False] * n_a  # left the columns via a CSF flush
    offset = 0
    max_v = 0
    matched_pairs: list[tuple[int, int]] = []  # indices into entries
    matches: list[tuple[str, str]] = []
    instances: list[ReplayInstance] = []

    def flush(instance: ReplayInstance) -> None:
        nonlocal matched_pairs, max_v
        if matched_pairs:
            adjacency_b, adjacency_a = build_adjacency(matched_pairs)
            selected = cover_smallest_first(adjacency_b, adjacency_a)
            matches.extend(
                (entries_b[bi].label, entries_a[ai].label) for bi, ai in selected
            )
            rendered = ", ".join(
                f"<{entries_b[bi].label}, {entries_a[ai].label}>"
                for bi, ai in sorted(matched_pairs)
            )
            instance.lines.append(f"  => CSF({rendered})")
            for _, ai in matched_pairs:
                consumed_a[ai] = True
        matched_pairs = []
        max_v = 0

    for index_b, entry_b in enumerate(entries_b):
        while offset < n_a and consumed_a[offset]:
            offset += 1
        instance = ReplayInstance(
            number=len(instances) + 1,
            column_a=[
                entries_a[j].render()
                for j in range(offset, n_a)
                if not consumed_a[j]
            ],
            column_b=[entry.render() for entry in entries_b[index_b:]],
            max_v=max_v,
        )
        next_id = (
            entries_b[index_b + 1].encoded_id
            if index_b + 1 < len(entries_b)
            else None
        )
        skip = True
        j = offset
        exhausted = True
        while j < n_a:
            if consumed_a[j]:
                j += 1
                continue
            entry_a = entries_a[j]
            pair = f"* {entry_b.render()}"
            if entry_b.encoded_id < entry_a.encoded_min:
                exhausted = False
                if next_id is None or next_id > max_v:
                    instance.lines.append(
                        f"{pair} < {entry_a.render()} => MIN PRUNE "
                        f"({'end' if next_id is None else f'{_next_label(entries_b, index_b)} > maxV'})"
                    )
                    flush(instance)
                else:
                    instance.lines.append(
                        f"{pair} < {entry_a.render()} => MIN PRUNE "
                        f"({_next_label(entries_b, index_b)} < maxV)"
                    )
                break
            if entry_b.encoded_id <= entry_a.encoded_max:
                skip = False
                outcome = _lookup(oracle, entry_b, entry_a)
                if outcome == MATCH:
                    matched_pairs.append((index_b, j))
                    if entry_a.encoded_max > max_v:
                        max_v = entry_a.encoded_max
                    instance.lines.append(
                        f"{pair} IN {entry_a.render()} => MATCH (maxV = {max_v})"
                    )
                else:
                    is_last = all(
                        consumed_a[p] for p in range(j + 1, n_a)
                    )
                    if outcome == NO_MATCH and is_last and next_id is not None:
                        relation = ">" if next_id > max_v else "<"
                        instance.lines.append(
                            f"{pair} IN {entry_a.render()} => {outcome} "
                            f"({_next_label(entries_b, index_b)} {relation} maxV)"
                        )
                    else:
                        instance.lines.append(
                            f"{pair} IN {entry_a.render()} => {outcome}"
                        )
                j += 1
                continue
            if skip:
                instance.lines.append(
                    f"{pair} > {entry_a.render()} => MAX PRUNE"
                )
                offset = j + 1
                instances.append(instance)
                instance = ReplayInstance(
                    number=len(instances) + 1,
                    column_a=[
                        entries_a[p].render()
                        for p in range(j + 1, n_a)
                        if not consumed_a[p]
                    ],
                    column_b=[entry.render() for entry in entries_b[index_b:]],
                    max_v=max_v,
                )
            j += 1
        if exhausted and (next_id is None or next_id > max_v):
            flush(instance)
        instances.append(instance)
    instances = [inst for inst in instances if inst.lines]
    for number, instance in enumerate(instances, start=1):
        instance.number = number
    return ReplayResult(instances=instances, matches=matches)


def _next_label(entries_b: list[EncodedB], index_b: int) -> str:
    if index_b + 1 < len(entries_b):
        return entries_b[index_b + 1].label
    return "end"


# ----------------------------------------------------------------------
# the paper's exact scenarios
# ----------------------------------------------------------------------

#: Figure 2 inputs (Ap-MinMax).
FIGURE2_B = [
    EncodedB("b1", 40),
    EncodedB("b2", 48),
    EncodedB("b3", 67),
    EncodedB("b4", 71),
    EncodedB("b5", 74),
]
FIGURE2_A = [
    EncodedA("a1", 30, 55),
    EncodedA("a2", 33, 60),
    EncodedA("a3", 42, 72),
    EncodedA("a4", 45, 73),
    EncodedA("a5", 50, 80),
]
FIGURE2_ORACLE: Oracle = {
    ("b1", "a1"): NO_OVERLAP,
    ("b1", "a2"): NO_OVERLAP,
    ("b2", "a1"): NO_MATCH,
    ("b2", "a2"): NO_MATCH,
    ("b2", "a3"): MATCH,
    ("b3", "a4"): NO_MATCH,
    ("b3", "a5"): NO_OVERLAP,
    ("b4", "a4"): NO_OVERLAP,
    ("b4", "a5"): NO_MATCH,
    ("b5", "a5"): MATCH,
}

#: Figure 3 inputs (Ex-MinMax).
FIGURE3_B = [
    EncodedB("b1", 40),
    EncodedB("b2", 58),
    EncodedB("b3", 67),
    EncodedB("b4", 74),
    EncodedB("b5", 81),
]
FIGURE3_A = [
    EncodedA("a1", 30, 55),
    EncodedA("a2", 33, 60),
    EncodedA("a3", 38, 57),
    EncodedA("a4", 45, 73),
    EncodedA("a5", 50, 80),
]
FIGURE3_ORACLE: Oracle = {
    ("b1", "a1"): MATCH,
    ("b1", "a2"): NO_OVERLAP,
    ("b1", "a3"): MATCH,
    ("b2", "a2"): MATCH,
    ("b2", "a4"): MATCH,
    ("b2", "a5"): NO_MATCH,
    ("b3", "a4"): MATCH,
    ("b3", "a5"): NO_MATCH,
    ("b4", "a5"): NO_OVERLAP,
}
