"""The six CSJ join methods of the paper.

Approximate: :class:`~repro.algorithms.baseline.ApBaseline`,
:class:`~repro.algorithms.minmax.ApMinMax`,
:class:`~repro.algorithms.superego.ApSuperEGO`.
Exact: :class:`~repro.algorithms.baseline.ExBaseline`,
:class:`~repro.algorithms.minmax.ExMinMax`,
:class:`~repro.algorithms.superego.ExSuperEGO`.
"""

from .base import CSJAlgorithm, ENGINES
from .baseline import ApBaseline, ExBaseline
from .hybrid import ApHybrid, ExHybrid
from .encoded_replay import (
    FIGURE2_A,
    FIGURE2_B,
    FIGURE2_ORACLE,
    FIGURE3_A,
    FIGURE3_B,
    FIGURE3_ORACLE,
    EncodedA,
    EncodedB,
    ReplayResult,
    replay_ap_minmax,
    replay_ex_minmax,
)
from .minmax import ApMinMax, ExMinMax
from .registry import (
    ALGORITHMS,
    ALL_METHODS,
    HYBRID_METHODS,
    APPROXIMATE_METHODS,
    EXACT_METHODS,
    get_algorithm,
    method_display_name,
)
from .superego import ApSuperEGO, ExSuperEGO

__all__ = [
    "CSJAlgorithm",
    "ENGINES",
    "EncodedA",
    "EncodedB",
    "ReplayResult",
    "replay_ap_minmax",
    "replay_ex_minmax",
    "FIGURE2_A",
    "FIGURE2_B",
    "FIGURE2_ORACLE",
    "FIGURE3_A",
    "FIGURE3_B",
    "FIGURE3_ORACLE",
    "ApBaseline",
    "ExBaseline",
    "ApHybrid",
    "ExHybrid",
    "HYBRID_METHODS",
    "ApMinMax",
    "ExMinMax",
    "ApSuperEGO",
    "ExSuperEGO",
    "ALGORITHMS",
    "ALL_METHODS",
    "APPROXIMATE_METHODS",
    "EXACT_METHODS",
    "get_algorithm",
    "method_display_name",
]
