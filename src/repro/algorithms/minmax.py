"""The MinMax methods (Section 4) — the paper's primary contribution.

Both variants encode community ``B`` into the sorted ``Encd_B`` buffer
(encoded ID + part sums) and community ``A`` into the sorted ``Encd_A``
buffer (encoded Min/Max + part ranges), then pair entries with a
double loop that exploits the sort orders:

* ``MIN PRUNE`` — once ``eB.encd_ID < eA.encd_Min`` no later ``eA`` can
  match either (``Encd_A`` ascends on ``encd_Min``), so the scan for the
  current ``b`` stops;
* ``MAX PRUNE`` — while ``skip`` is still active, every leading ``eA``
  with ``encd_Max < eB.encd_ID`` can be skipped for *all* later ``b``
  too (``Encd_B`` ascends on ``encd_ID``), operated via ``offset``;
* ``NO OVERLAP`` — the cheap part/range test fails, skipping the full
  d-dimensional comparison.

``Ap-MinMax`` (Algorithm Ap-MinMax) commits to the first match per ``b``.
``Ex-MinMax`` (Algorithm Ex-MinMax) instead records *all* matches of the
current ``b`` and tracks ``maxV`` — the largest ``encoded_Max`` among the
matched ``a``'s.  When the current ``b`` is min-pruned and the *next*
``b``'s encoded ID exceeds ``maxV``, no future user can touch the
accumulated matches (a segment boundary), so the CSF function is called
on the segment and the structures reset.  Segments are vertex-disjoint
unions of connected components of the candidate graph, which is why
per-segment CSF selects exactly the same pairs as one global CSF call —
the cross-method tests assert this equality against Ex-Baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.encoding import MinMaxEncoder
from ..core.events import EventTrace, EventType
from ..core.matching import build_adjacency, get_matcher, linf_match
from .base import CSJAlgorithm

__all__ = ["ApMinMax", "ExMinMax"]


class _MinMaxBase(CSJAlgorithm):
    """Shared construction and helpers for both MinMax variants."""

    def __init__(
        self,
        epsilon: int,
        *,
        n_parts: int = 4,
        engine: str = "numpy",
        record_trace: bool = False,
    ) -> None:
        super().__init__(epsilon, engine=engine, record_trace=record_trace)
        self.n_parts = int(n_parts)

    def _encoder(self, n_dims: int) -> MinMaxEncoder:
        # The paper fixes 4 parts for d = 27; for lower-dimensional data
        # the segmentation degrades gracefully to at most one part per
        # dimension.
        return MinMaxEncoder(self.epsilon, min(self.n_parts, n_dims))

    def _candidate_positions(
        self,
        encoded_id: int,
        candidates_min: np.ndarray,
        candidates_max: np.ndarray,
        parts_row: np.ndarray,
        range_min: np.ndarray,
        range_max: np.ndarray,
    ) -> np.ndarray:
        """Vectorised window + part/range filter for one ``b`` entry.

        Returns the positions (ascending) in ``Encd_A`` that survive the
        encoded-window and complete part-overlap tests; the caller still
        has to run the full d-dimensional comparison.
        """
        hi = int(np.searchsorted(candidates_min, encoded_id, side="right"))
        if hi == 0:
            return np.empty(0, dtype=np.int64)
        window = candidates_max[:hi] >= encoded_id
        if not window.any():
            return np.empty(0, dtype=np.int64)
        overlap = (
            (parts_row >= range_min[:hi]) & (parts_row <= range_max[:hi])
        ).all(axis=1)
        return np.flatnonzero(window & overlap).astype(np.int64)


class ApMinMax(_MinMaxBase):
    """Approximate MinMax (Algorithm Ap-MinMax)."""

    name = "ap-minmax"
    exact = False

    # ------------------------------------------------------------------
    # faithful reference engine
    # ------------------------------------------------------------------
    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        with trace.stage("encode"):
            encoder = self._encoder(vectors_b.shape[1])
            targets = encoder.encode_targets(vectors_b)
            candidates = encoder.encode_candidates(vectors_a)
        n_a = candidates.n_users
        used = np.zeros(n_a, dtype=bool)
        offset = 0
        pairs: list[tuple[int, int]] = []
        for i in range(targets.n_users):
            while offset < n_a and used[offset]:
                offset += 1
            encoded_id = int(targets.encoded_id[i])
            b_label = targets.entry_label(i)
            skip = True
            j = offset
            while j < n_a:
                if used[j]:
                    j += 1
                    continue
                a_label = candidates.entry_label(j)
                if encoded_id < candidates.encoded_min[j]:
                    trace.emit(EventType.MIN_PRUNE, b_label, a_label)
                    break
                if encoded_id <= candidates.encoded_max[j]:
                    skip = False
                    if not MinMaxEncoder.parts_overlap(
                        targets.parts[i],
                        candidates.range_min[j],
                        candidates.range_max[j],
                    ):
                        trace.emit(EventType.NO_OVERLAP, b_label, a_label)
                        j += 1
                        continue
                    b_real = int(targets.real_ids[i])
                    a_real = int(candidates.real_ids[j])
                    if linf_match(vectors_b[b_real], vectors_a[a_real], self.epsilon):
                        trace.emit(EventType.MATCH, b_label, a_label)
                        pairs.append((b_real, a_real))
                        used[j] = True
                        break
                    trace.emit(EventType.NO_MATCH, b_label, a_label)
                    j += 1
                    continue
                # encoded_id > encoded_Max: this a can never match a later
                # (larger) b either, but only while skip is still active
                # may the global offset advance past it.
                if skip:
                    trace.emit(EventType.MAX_PRUNE, b_label, a_label)
                    offset = j + 1
                j += 1
        return pairs

    # ------------------------------------------------------------------
    # vectorised engine (identical matching)
    # ------------------------------------------------------------------
    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        with trace.stage("encode"):
            encoder = self._encoder(vectors_b.shape[1])
            targets = encoder.encode_targets(vectors_b)
            candidates = encoder.encode_candidates(vectors_a)
        used = np.zeros(candidates.n_users, dtype=bool)
        pairs: list[tuple[int, int]] = []
        for i in range(targets.n_users):
            positions = self._candidate_positions(
                int(targets.encoded_id[i]),
                candidates.encoded_min,
                candidates.encoded_max,
                targets.parts[i],
                candidates.range_min,
                candidates.range_max,
            )
            if positions.size == 0:
                continue
            positions = positions[~used[positions]]
            if positions.size == 0:
                continue
            b_real = int(targets.real_ids[i])
            rows = candidates.real_ids[positions]
            diff = np.abs(vectors_a[rows] - vectors_b[b_real])
            full = (diff <= self.epsilon).all(axis=1)
            hits = np.flatnonzero(full)
            if hits.size:
                position = int(positions[hits[0]])
                used[position] = True
                pairs.append((b_real, int(candidates.real_ids[position])))
                trace.emit_bulk(EventType.MATCH, 1)
                trace.emit_bulk(EventType.NO_MATCH, int(hits[0]))
            else:
                trace.emit_bulk(EventType.NO_MATCH, int(full.size))
        return pairs


class ExMinMax(_MinMaxBase):
    """Exact MinMax (Algorithm Ex-MinMax) with maxV segmentation."""

    name = "ex-minmax"
    exact = True

    def __init__(
        self,
        epsilon: int,
        *,
        n_parts: int = 4,
        engine: str = "numpy",
        record_trace: bool = False,
        matcher: str = "csf",
    ) -> None:
        super().__init__(
            epsilon, n_parts=n_parts, engine=engine, record_trace=record_trace
        )
        self.matcher_name = matcher
        self._matcher = get_matcher(matcher)

    # ------------------------------------------------------------------
    # faithful reference engine
    # ------------------------------------------------------------------
    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        with trace.stage("encode"):
            encoder = self._encoder(vectors_b.shape[1])
            targets = encoder.encode_targets(vectors_b)
            candidates = encoder.encode_candidates(vectors_a)
        n_a = candidates.n_users
        matched_b: dict[int, set[int]] = {}
        matched_a: dict[int, set[int]] = {}
        offset = 0
        max_v = 0
        pairs: list[tuple[int, int]] = []

        def flush_segment() -> None:
            nonlocal matched_b, matched_a, max_v
            if matched_b:
                segment_pairs = self._matcher(matched_b, matched_a)
                trace.note(
                    "CSF("
                    + ", ".join(
                        f"<b{b + 1}, a{a + 1}>"
                        for b in sorted(matched_b)
                        for a in sorted(matched_b[b])
                    )
                    + ")"
                )
                pairs.extend(segment_pairs)
            matched_b, matched_a = {}, {}
            max_v = 0

        for i in range(targets.n_users):
            encoded_id = int(targets.encoded_id[i])
            b_label = targets.entry_label(i)
            skip = True
            j = offset
            while j < n_a:
                a_label = candidates.entry_label(j)
                if encoded_id < candidates.encoded_min[j]:
                    trace.emit(EventType.MIN_PRUNE, b_label, a_label)
                    next_id = (
                        int(targets.encoded_id[i + 1])
                        if i + 1 < targets.n_users
                        else None
                    )
                    if next_id is None or next_id > max_v:
                        # MAX PRUNE applies to every match of the current
                        # segment: no later b can reach them.
                        flush_segment()
                    break
                if encoded_id <= candidates.encoded_max[j]:
                    skip = False
                    if not MinMaxEncoder.parts_overlap(
                        targets.parts[i],
                        candidates.range_min[j],
                        candidates.range_max[j],
                    ):
                        trace.emit(EventType.NO_OVERLAP, b_label, a_label)
                        j += 1
                        continue
                    b_real = int(targets.real_ids[i])
                    a_real = int(candidates.real_ids[j])
                    if linf_match(vectors_b[b_real], vectors_a[a_real], self.epsilon):
                        matched_b.setdefault(b_real, set()).add(a_real)
                        matched_a.setdefault(a_real, set()).add(b_real)
                        if candidates.encoded_max[j] > max_v:
                            max_v = int(candidates.encoded_max[j])
                        trace.emit(
                            EventType.MATCH, b_label, a_label, f"maxV = {max_v}"
                        )
                    else:
                        trace.emit(EventType.NO_MATCH, b_label, a_label)
                    j += 1
                    continue
                if skip:
                    trace.emit(EventType.MAX_PRUNE, b_label, a_label)
                    offset = j + 1
                j += 1
            else:
                # The scan exhausted Encd_A without a MIN PRUNE; the
                # same safety test applies (Figure 3, instance 4): once
                # the next b overshoots maxV, the segment is closed.
                next_id = (
                    int(targets.encoded_id[i + 1])
                    if i + 1 < targets.n_users
                    else None
                )
                if next_id is None or next_id > max_v:
                    flush_segment()
        # Whatever accumulated without hitting a safe boundary is
        # flushed at the end.
        flush_segment()
        return pairs

    # ------------------------------------------------------------------
    # vectorised engine (identical matching via one global CSF)
    # ------------------------------------------------------------------
    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        with trace.stage("encode"):
            encoder = self._encoder(vectors_b.shape[1])
            targets = encoder.encode_targets(vectors_b)
            candidates = encoder.encode_candidates(vectors_a)
        raw_pairs: list[tuple[int, int]] = []
        for i in range(targets.n_users):
            positions = self._candidate_positions(
                int(targets.encoded_id[i]),
                candidates.encoded_min,
                candidates.encoded_max,
                targets.parts[i],
                candidates.range_min,
                candidates.range_max,
            )
            if positions.size == 0:
                continue
            b_real = int(targets.real_ids[i])
            rows = candidates.real_ids[positions]
            diff = np.abs(vectors_a[rows] - vectors_b[b_real])
            full = (diff <= self.epsilon).all(axis=1)
            hits = rows[full]
            trace.emit_bulk(EventType.MATCH, int(full.sum()))
            trace.emit_bulk(EventType.NO_MATCH, int(full.size - full.sum()))
            raw_pairs.extend((b_real, int(a_real)) for a_real in hits)
        if not raw_pairs:
            return []
        with trace.stage("matching"):
            matched_b, matched_a = build_adjacency(raw_pairs)
            return self._matcher(matched_b, matched_a)
