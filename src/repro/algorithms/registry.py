"""Name-based registry of the six CSJ methods.

The paper's suite: three approximate (Ap-Baseline, Ap-MinMax,
Ap-SuperEGO) and three exact (Ex-Baseline, Ex-MinMax, Ex-SuperEGO)
solutions.  :func:`get_algorithm` builds a configured instance from the
lower-case registry name used throughout the benchmarks and the CLI.
"""

from __future__ import annotations

from ..core.errors import UnknownAlgorithmError
from .base import CSJAlgorithm
from .baseline import ApBaseline, ExBaseline
from .hybrid import ApHybrid, ExHybrid
from .minmax import ApMinMax, ExMinMax
from .superego import ApSuperEGO, ExSuperEGO

__all__ = [
    "ALGORITHMS",
    "APPROXIMATE_METHODS",
    "EXACT_METHODS",
    "ALL_METHODS",
    "HYBRID_METHODS",
    "get_algorithm",
    "method_display_name",
]

ALGORITHMS: dict[str, type[CSJAlgorithm]] = {
    ApBaseline.name: ApBaseline,
    ExBaseline.name: ExBaseline,
    ApMinMax.name: ApMinMax,
    ExMinMax.name: ExMinMax,
    ApSuperEGO.name: ApSuperEGO,
    ExSuperEGO.name: ExSuperEGO,
    ApHybrid.name: ApHybrid,
    ExHybrid.name: ExHybrid,
}

#: The paper's six methods (Tables 3–10 run over these).
APPROXIMATE_METHODS = ("ap-baseline", "ap-minmax", "ap-superego")
EXACT_METHODS = ("ex-baseline", "ex-minmax", "ex-superego")
ALL_METHODS = APPROXIMATE_METHODS + EXACT_METHODS
#: The Section 6.2 MinMax-SuperEGO combination (an extra, see hybrid.py).
HYBRID_METHODS = ("ap-hybrid", "ex-hybrid")

_DISPLAY = {
    "ap-baseline": "Ap-Baseline",
    "ex-baseline": "Ex-Baseline",
    "ap-minmax": "Ap-MinMax",
    "ex-minmax": "Ex-MinMax",
    "ap-superego": "Ap-SuperEGO",
    "ex-superego": "Ex-SuperEGO",
    "ap-hybrid": "Ap-Hybrid",
    "ex-hybrid": "Ex-Hybrid",
}


def get_algorithm(name: str, epsilon: int, **options: object) -> CSJAlgorithm:
    """Instantiate a CSJ method by registry name.

    ``options`` are forwarded to the method constructor (``engine``,
    ``n_parts``, ``matcher``, ``t`` ... whichever the method accepts).
    """
    key = name.strip().lower()
    try:
        cls = ALGORITHMS[key]
    except KeyError:
        raise UnknownAlgorithmError(name, tuple(ALGORITHMS)) from None
    return cls(epsilon, **options)  # type: ignore[arg-type]


def method_display_name(name: str) -> str:
    """Paper-style capitalisation (``ex-minmax`` -> ``Ex-MinMax``)."""
    return _DISPLAY.get(name.strip().lower(), name)
