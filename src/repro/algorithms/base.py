"""Common driver shared by every CSJ algorithm.

:class:`CSJAlgorithm` owns the cross-cutting concerns — input
validation, the ``B``/``A`` orientation convention, wall-clock timing,
event tracing and result packaging — so the concrete algorithms
(baseline, MinMax, SuperEGO) only implement the pairing itself.

Every algorithm offers two engines:

``python``
    A faithful, line-by-line transcription of the paper's pseudo-code.
    It emits all five pairing events and can record full Figure 2/3-style
    traces.  Intended for study, testing and small inputs.
``numpy``
    A vectorised implementation that returns the *same* matching (the
    tests assert this) but runs orders of magnitude faster.  Bulk pruning
    means only NO MATCH / MATCH events are counted.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..core.errors import ConfigurationError
from ..core.events import EventTrace
from ..core.types import Community, CSJResult, MatchedPair
from ..core.validation import validate_epsilon, validate_pair

__all__ = ["CSJAlgorithm", "ENGINES"]

ENGINES = ("python", "numpy")


class CSJAlgorithm(abc.ABC):
    """Abstract base of the six CSJ methods.

    Parameters
    ----------
    epsilon:
        Per-dimension absolute-difference threshold (kept minimal in
        practice: 1 for the VK dataset, 15000 for the Synthetic one).
    engine:
        ``"python"`` (faithful reference) or ``"numpy"`` (vectorised).
    record_trace:
        When true, the python engine records every pairing event; the
        trace of the last join is available as :attr:`last_trace`.

    Attributes
    ----------
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        set (by the batch engine or directly), every join mirrors its
        pairing events into the registry, times its stages, and stamps
        the per-stage wall times onto the result's ``stage_seconds``.
        ``None`` (the default) keeps the join on the uninstrumented
        fast path.
    """

    #: registry name, e.g. ``"ap-minmax"`` — set by subclasses.
    name: str = ""
    #: whether the method computes the maximum-matching similarity.
    exact: bool = False
    #: observability registry; assign to enable instrumentation.
    metrics = None

    def __init__(
        self,
        epsilon: int,
        *,
        engine: str = "numpy",
        record_trace: bool = False,
    ) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
            )
        self.engine = engine
        self.record_trace = bool(record_trace)
        self.last_trace: EventTrace | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def join(
        self,
        first: Community,
        second: Community,
        *,
        auto_orient: bool = True,
        enforce_size_ratio: bool = True,
    ) -> CSJResult:
        """Run the CSJ join and return a :class:`CSJResult`.

        Inputs may be passed in either order; with ``auto_orient`` the
        smaller community takes the paper's ``B`` role and the result's
        ``swapped`` flag records a reversal.  Matched pair indices always
        refer to the oriented ``(B, A)`` pair.
        """
        metrics = self.metrics
        trace = EventTrace(
            record=self.record_trace and self.engine == "python",
            metrics=metrics,
        )
        with trace.stage("join"):
            with trace.stage("validate"):
                community_b, community_a, swapped = validate_pair(
                    first,
                    second,
                    auto_orient=auto_orient,
                    enforce_size_ratio=enforce_size_ratio,
                )
            started = time.perf_counter()
            with trace.stage("pairing"):
                pairs = self._join(community_b.vectors, community_a.vectors, trace)
            elapsed = time.perf_counter() - started
        self.last_trace = trace
        if metrics is not None:
            metrics.inc("repro_algo_joins_total", 1, method=self.name, engine=self.engine)
            metrics.observe("repro_algo_join_seconds", elapsed, method=self.name)
        result = CSJResult(
            method=self.name,
            exact=self.exact,
            size_b=community_b.n_users,
            size_a=community_a.n_users,
            epsilon=self.epsilon,
            pairs=[MatchedPair(int(b), int(a)) for b, a in pairs],
            events=trace.counts,
            elapsed_seconds=elapsed,
            engine=self.engine,
            swapped=swapped,
            stage_seconds=trace.stage_seconds,
        )
        return result

    def similarity(self, first: Community, second: Community, **kwargs: object) -> float:
        """Convenience wrapper returning only the Eq. (1) fraction."""
        return self.join(first, second, **kwargs).similarity  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # engine dispatch
    # ------------------------------------------------------------------
    def _join(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        if self.engine == "python":
            return self._join_python(vectors_b, vectors_a, trace)
        return self._join_numpy(vectors_b, vectors_a, trace)

    @abc.abstractmethod
    def _join_python(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        """Faithful reference engine; must emit pairing events."""

    @abc.abstractmethod
    def _join_numpy(
        self, vectors_b: np.ndarray, vectors_a: np.ndarray, trace: EventTrace
    ) -> list[tuple[int, int]]:
        """Vectorised engine returning the identical matching."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon}, engine={self.engine!r})"
        )
