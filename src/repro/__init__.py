"""repro — reproduction of "Community Similarity based on User Profile
Joins" (EDBT 2024).

The package implements the CSJ join operator (a one-to-one matching
variant of the classic epsilon-join with a per-dimension threshold), the
paper's six solution methods, the dataset simulators behind its
evaluation, and a harness that regenerates every table and figure.

Quick start::

    from repro import VKGenerator, build_couple, csj_similarity
    from repro.datasets import PAPER_COUPLES

    b, a = build_couple(PAPER_COUPLES[0], VKGenerator(seed=7), scale=1 / 256)
    result = csj_similarity(b, a, epsilon=1, method="ex-minmax")
    print(result.summary())
"""

from __future__ import annotations

from .algorithms import (
    ALL_METHODS,
    APPROXIMATE_METHODS,
    EXACT_METHODS,
    ApBaseline,
    ApMinMax,
    ApSuperEGO,
    CSJAlgorithm,
    ExBaseline,
    ExMinMax,
    ExSuperEGO,
    get_algorithm,
    method_display_name,
)
from .core import (
    Community,
    CSJResult,
    DeltaJoinMaintainer,
    EventCounts,
    EventTrace,
    EventType,
    IncrementalCommunity,
    MatchedPair,
    MinMaxEncoder,
    ReproError,
    SizeRatioError,
    ValidationError,
)
from .catalog import PersistentCatalog
from .datasets import (
    SYNTHETIC_EPSILON,
    VK_EPSILON,
    SyntheticGenerator,
    VKGenerator,
    build_couple,
)
from .engine import (
    BatchEngine,
    CheckpointLog,
    Disposition,
    FaultPolicy,
    JoinResultCache,
    PairJob,
    PairOutcome,
    community_fingerprint,
)
from .obs import JoinTelemetry, MetricsRegistry, StageClock, stage_timer
from .sketch import (
    RecallEstimator,
    RecallReport,
    SketchConfig,
    SketchIndex,
    SketchPrefilter,
)
from .serve import (
    AdmissionPolicy,
    CommunityStore,
    CSJServer,
    ServeClient,
    ServeConfig,
    ServerThread,
)
from .shard import (
    PartitionPlan,
    ShardCoordinator,
    ShardFleet,
    partition_catalog,
    plan_partition,
)

from ._version import __version__  # noqa: E402

__all__ = [
    "__version__",
    "csj_similarity",
    "Community",
    "CSJResult",
    "EventCounts",
    "EventTrace",
    "EventType",
    "IncrementalCommunity",
    "DeltaJoinMaintainer",
    "MatchedPair",
    "MinMaxEncoder",
    "ReproError",
    "ValidationError",
    "SizeRatioError",
    "CSJAlgorithm",
    "ApBaseline",
    "ExBaseline",
    "ApMinMax",
    "ExMinMax",
    "ApSuperEGO",
    "ExSuperEGO",
    "get_algorithm",
    "method_display_name",
    "ALL_METHODS",
    "APPROXIMATE_METHODS",
    "EXACT_METHODS",
    "VKGenerator",
    "SyntheticGenerator",
    "build_couple",
    "PersistentCatalog",
    "VK_EPSILON",
    "SYNTHETIC_EPSILON",
    "BatchEngine",
    "CheckpointLog",
    "Disposition",
    "FaultPolicy",
    "JoinResultCache",
    "PairJob",
    "PairOutcome",
    "community_fingerprint",
    "JoinTelemetry",
    "MetricsRegistry",
    "StageClock",
    "stage_timer",
    "SketchConfig",
    "SketchIndex",
    "SketchPrefilter",
    "RecallEstimator",
    "RecallReport",
    "CSJServer",
    "ServeConfig",
    "ServerThread",
    "ServeClient",
    "CommunityStore",
    "AdmissionPolicy",
    "PartitionPlan",
    "ShardCoordinator",
    "ShardFleet",
    "plan_partition",
    "partition_catalog",
]


def csj_similarity(
    first: Community,
    second: Community,
    *,
    epsilon: int,
    method: str = "ex-minmax",
    **options: object,
) -> CSJResult:
    """One-call CSJ join: build the named method and run it.

    ``options`` are forwarded to the method constructor (``engine``,
    ``n_parts``, ``matcher``, ``t``, ...).  Returns the full
    :class:`~repro.core.types.CSJResult`; its ``similarity`` attribute is
    Eq. (1) of the paper.
    """
    algorithm = get_algorithm(method, epsilon, **options)
    return algorithm.join(first, second)
