"""Admission control: bounded concurrency, rate limiting, deadlines.

The serving layer never queues without bound.  Every request passes
:meth:`AdmissionController.try_admit` before any work happens, and the
controller answers one of two ways:

* an :class:`AdmissionTicket` — the request is in flight; the caller
  must :meth:`~AdmissionTicket.release` it exactly once when done; or
* a :class:`Rejection` — the request is **shed** with an explicit
  ``overloaded`` response carrying ``retry_after_ms``, so a client can
  back off instead of piling on.

Two independent gates shed load:

1. **Pending bound** — at most ``max_pending`` admitted-but-unfinished
   requests.  This caps the executor backlog (and therefore memory):
   request ``max_pending + 1`` is rejected immediately, never parked.
2. **Token bucket** — a sustained-rate limiter with burst capacity.
   Tokens refill continuously at ``rate`` per second up to ``burst``;
   a request needs one token.  ``rate=None`` disables the gate.

Deadlines ride on the ticket: admission stamps ``now + deadline_ms``
(request value, falling back to the policy default) and the server
checks :meth:`Deadline.expired` before starting expensive work and
again before writing the response.

The controller is driven from the event loop thread only, so it keeps
no lock; every time source is the injected ``clock`` (monotonic
seconds), which is how the tests make shedding and expiry
deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "AdmissionPolicy",
    "AdmissionTicket",
    "Rejection",
    "Deadline",
    "AdmissionController",
]

Clock = Callable[[], float]

#: Shed reasons (the ``reason`` label of ``repro_serve_shed_total``).
REASON_QUEUE_FULL = "queue_full"
REASON_RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission controller.

    Parameters
    ----------
    max_pending:
        Bound on admitted-but-unfinished requests (the request "queue"
        in the loose sense: in-flight handlers plus executor backlog).
    rate / burst:
        Token-bucket sustained rate (requests/second) and capacity.
        ``rate=None`` disables rate limiting; ``burst`` then only sizes
        the initial bucket, which is never drained below refill.
    default_deadline_ms:
        Deadline applied when a request carries none.  ``None`` means
        no implicit deadline.
    queue_retry_after_ms:
        ``retry_after_ms`` hint attached to queue-full rejections (the
        bucket computes an exact hint for rate rejections).
    """

    max_pending: int = 64
    rate: float | None = None
    burst: int = 16
    default_deadline_ms: float | None = None
    queue_retry_after_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.default_deadline_ms is not None and self.default_deadline_ms < 0:
            raise ConfigurationError(
                f"default_deadline_ms must be >= 0, got {self.default_deadline_ms}"
            )
        if self.queue_retry_after_ms < 0:
            raise ConfigurationError(
                f"queue_retry_after_ms must be >= 0, got {self.queue_retry_after_ms}"
            )


@dataclass(frozen=True)
class Rejection:
    """A shed request: the reason and how long to back off."""

    reason: str
    retry_after_ms: float
    message: str


class Deadline:
    """A latency budget stamped at admission time.

    ``expires_at`` is in the controller's clock domain; ``None`` means
    the request has no deadline and never expires.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: float | None, clock: Clock) -> None:
        self.expires_at = expires_at
        self._clock = clock

    def expired(self) -> bool:
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining_ms(self) -> float | None:
        if self.expires_at is None:
            return None
        return max(0.0, (self.expires_at - self._clock()) * 1000.0)


class AdmissionTicket:
    """Proof of admission; release exactly once when the request ends."""

    __slots__ = ("deadline", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", deadline: Deadline) -> None:
        self.deadline = deadline
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release()


class AdmissionController:
    """Bounded-pending + token-bucket admission with deadline stamping."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        *,
        clock: Clock = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.clock = clock
        self.metrics = metrics
        self.pending = 0
        self.admitted_total = 0
        self.shed_total = 0
        self._tokens = float(self.policy.burst)
        self._last_refill = clock()

    # -- token bucket --------------------------------------------------
    def _refill(self, now: float) -> None:
        rate = self.policy.rate
        if rate is None:
            return
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.policy.burst, self._tokens + elapsed * rate)
        self._last_refill = now

    # -- admission -----------------------------------------------------
    def try_admit(
        self, op: str, *, deadline_ms: float | None = None
    ) -> AdmissionTicket | Rejection:
        """Admit one request or shed it with a back-off hint."""
        now = self.clock()
        if self.pending >= self.policy.max_pending:
            return self._shed(
                op,
                REASON_QUEUE_FULL,
                self.policy.queue_retry_after_ms,
                f"server at capacity ({self.pending}/{self.policy.max_pending} "
                "requests pending)",
            )
        rate = self.policy.rate
        if rate is not None:
            self._refill(now)
            if self._tokens < 1.0:
                retry_after_ms = (1.0 - self._tokens) / rate * 1000.0
                return self._shed(
                    op,
                    REASON_RATE_LIMITED,
                    retry_after_ms,
                    f"rate limit of {rate:g} requests/s exceeded",
                )
            self._tokens -= 1.0
        if deadline_ms is None:
            deadline_ms = self.policy.default_deadline_ms
        expires_at = None if deadline_ms is None else now + deadline_ms / 1000.0
        self.pending += 1
        self.admitted_total += 1
        if self.metrics is not None:
            self.metrics.set_gauge("repro_serve_queue_depth", self.pending)
        return AdmissionTicket(self, Deadline(expires_at, self.clock))

    def _shed(
        self, op: str, reason: str, retry_after_ms: float, message: str
    ) -> Rejection:
        self.shed_total += 1
        if self.metrics is not None:
            self.metrics.inc("repro_serve_shed_total", reason=reason)
        return Rejection(
            reason=reason, retry_after_ms=retry_after_ms, message=message
        )

    def _release(self) -> None:
        self.pending -= 1
        if self.metrics is not None:
            self.metrics.set_gauge("repro_serve_queue_depth", self.pending)

    # -- introspection -------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Snapshot for the ``stats`` endpoint."""
        return {
            "pending": self.pending,
            "max_pending": self.policy.max_pending,
            "rate": self.policy.rate,
            "burst": self.policy.burst,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
        }
