"""Versioned community registry of the similarity service.

The store layers frozen :class:`~repro.core.types.Community` snapshots
over mutable :class:`~repro.core.incremental.IncrementalCommunity`
state.  Every registered community is held as an ``IncrementalCommunity``
(so subscribe / unsubscribe / like traffic is always absorbable) and
every read path — joins, top-k — goes through :meth:`snapshot`, which
freezes the current state into an immutable ``Community`` tagged with
the mutable's monotonic version.

Coordination is per community: a mutation and a snapshot of the *same*
community serialise on that community's lock, while different
communities proceed independently.  Snapshots are cached per version,
so a read-heavy workload between mutations freezes each state exactly
once and then hands out the same immutable object — safe to share
across executor threads because ``Community`` matrices are read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Iterable

from ..core.delta import DeltaJoinMaintainer
from ..core.errors import ValidationError
from ..core.incremental import IncrementalCommunity
from ..core.types import Community

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "UnknownCommunityError",
    "CommunityStore",
    "CatalogBackedStore",
    "StoreSnapshot",
    "MutationRecord",
    "DeltaJoinPool",
    "init_delta_metrics",
]

#: Per-community mutation-log capacity.  A maintainer that falls more
#: than this many mutations behind cannot replay and rebuilds instead —
#: the log is a catch-up window, not a durable history.
MUTATION_LOG_CAPACITY = 4096


class UnknownCommunityError(ValidationError):
    """A request named a community the store has never registered."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        known = sorted(known)
        listed = ", ".join(known[:8]) + (", ..." if len(known) > 8 else "")
        super().__init__(
            f"community {name!r} is not registered"
            + (f" (registered: {listed})" if known else " (store is empty)")
        )


class StoreSnapshot:
    """One frozen read of a community: ``(community, version)``.

    ``user_ids`` maps snapshot rows back to stable store user ids (row
    ``k`` of the matrix is user ``user_ids[k]``) — the delta layer needs
    it to translate like events into matrix rows.  ``generation``
    identifies the registration the snapshot came from: replacing a
    community restarts its version counter, so version comparisons are
    only meaningful within one generation.
    """

    __slots__ = ("community", "version", "user_ids", "generation")

    def __init__(
        self,
        community: Community,
        version: int,
        user_ids: tuple[int, ...] = (),
        generation: int = 0,
    ) -> None:
        self.community = community
        self.version = version
        self.user_ids = user_ids
        self.generation = generation


@dataclass(frozen=True)
class MutationRecord:
    """One logged mutation; ``version`` is the state *after* applying.

    ``structural`` marks membership changes (subscribe / unsubscribe)
    that re-shape the snapshot matrix — the delta layer cannot replay
    those locally and rebuilds instead.
    """

    version: int
    action: str
    user_id: int
    dimension: int = -1
    count: int = 0

    @property
    def structural(self) -> bool:
        return self.action != "record_like"


#: Distinguishes registrations of the same name across ``replace=True``
#: (``itertools.count.__next__`` is atomic under the GIL).
_generations = count(1)


class _Entry:
    """One registered community: mutable state + snapshot cache + lock."""

    __slots__ = (
        "mutable",
        "lock",
        "log",
        "generation",
        "_cached_version",
        "_cached_snapshot",
        "_cached_user_ids",
    )

    def __init__(self, mutable: IncrementalCommunity) -> None:
        self.mutable = mutable
        self.lock = threading.RLock()
        self.log: deque[MutationRecord] = deque(maxlen=MUTATION_LOG_CAPACITY)
        self.generation = next(_generations)
        self._cached_version = -1
        self._cached_snapshot: Community | None = None
        self._cached_user_ids: tuple[int, ...] = ()

    def snapshot(self) -> StoreSnapshot:
        with self.lock:
            version = self.mutable.version
            if self._cached_snapshot is None or self._cached_version != version:
                self._cached_snapshot = self.mutable.snapshot()
                self._cached_user_ids = tuple(self.mutable.user_ids())
                self._cached_version = version
            return StoreSnapshot(
                self._cached_snapshot,
                version,
                self._cached_user_ids,
                self.generation,
            )


class CommunityStore:
    """Named, versioned communities behind per-community locks.

    The registry map itself is guarded by one lock (registration is
    rare); all per-community work — mutations and snapshot freezing —
    takes only that community's lock.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self._registry_lock = threading.Lock()

    # -- registration --------------------------------------------------
    def register(
        self,
        name: str,
        vectors: object,
        *,
        category: str = "",
        page_id: int = 0,
        replace: bool = False,
    ) -> StoreSnapshot:
        """Register (or with ``replace`` overwrite) a community.

        ``vectors`` is any array-like accepted by
        :func:`~repro.core.types.as_counter_matrix`; the initial state
        gets version 0 and every subsequent mutation bumps it.
        """
        if not isinstance(name, str) or not name:
            raise ValidationError("community name must be a non-empty string")
        mutable = IncrementalCommunity(
            name,
            _n_dims_of(vectors),
            category=category,
            page_id=int(page_id),
            vectors=vectors,
        )
        entry = _Entry(mutable)
        with self._registry_lock:
            if name in self._entries and not replace:
                raise ValidationError(
                    f"community {name!r} is already registered "
                    "(pass replace=true to overwrite)"
                )
            self._entries[name] = entry
        return entry.snapshot()

    def register_community(
        self, community: Community, *, replace: bool = False
    ) -> StoreSnapshot:
        """Register an existing frozen community (CLI preload path)."""
        return self.register(
            community.name,
            community.vectors,
            category=community.category,
            page_id=community.page_id,
            replace=replace,
        )

    # -- reads ---------------------------------------------------------
    def names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return name in self._entries

    def _entry(self, name: str) -> _Entry:
        with self._registry_lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownCommunityError(name, self._entries)
            return entry

    def snapshot(self, name: str) -> StoreSnapshot:
        """The current frozen state of one community (cached per version)."""
        return self._entry(name).snapshot()

    def snapshots(self, names: Iterable[str]) -> list[StoreSnapshot]:
        return [self.snapshot(name) for name in names]

    def candidate_pairs(self, epsilon: int) -> list[tuple[str, str]]:
        """All unordered name pairs surviving the envelope screen.

        The vector-free half of a distributed ranking: the coordinator
        asks every shard for its local candidate pairs and unions them,
        so only the surviving couples ever carry join work.  Pairs are
        ``(a, b)`` with ``a < b``, sorted; communities of different
        dimensionality never pair (their similarity is undefined, and
        the screen matrices require a common ``d``).
        """
        from ..engine.envelope import (
            community_envelope,
            separation_matrix,
            stack_envelopes,
        )

        epsilon = int(epsilon)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        names = self.names()
        communities = {name: self.snapshot(name).community for name in names}
        by_dims: dict[int, list[str]] = {}
        for name in names:
            by_dims.setdefault(communities[name].n_dims, []).append(name)
        pairs: list[tuple[str, str]] = []
        for dims in sorted(by_dims):
            group = by_dims[dims]
            if len(group) < 2:
                continue
            mins, maxs = stack_envelopes(
                [community_envelope(communities[name]) for name in group]
            )
            separated = separation_matrix(mins, maxs, epsilon)
            pairs.extend(
                (group[i], group[j])
                for i in range(len(group))
                for j in range(i + 1, len(group))
                if not separated[i, j]
            )
        return sorted(pairs)

    def describe(self) -> dict[str, dict[str, object]]:
        """Per-community metadata for the ``stats`` endpoint."""
        with self._registry_lock:
            entries = dict(self._entries)
        out: dict[str, dict[str, object]] = {}
        for name in sorted(entries):
            mutable = entries[name].mutable
            with entries[name].lock:
                out[name] = {
                    "version": mutable.version,
                    "n_users": mutable.n_users,
                    "n_dims": mutable.n_dims,
                    "category": mutable.category,
                }
        return out

    # -- mutations -----------------------------------------------------
    def subscribe(self, name: str, profile: object | None = None) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            user_id = entry.mutable.subscribe(profile)
            entry.log.append(
                MutationRecord(entry.mutable.version, "subscribe", user_id)
            )
            return self._mutation_info(entry, user_id=user_id)

    def unsubscribe(self, name: str, user_id: int) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            entry.mutable.unsubscribe(user_id)
            entry.log.append(
                MutationRecord(entry.mutable.version, "unsubscribe", user_id)
            )
            return self._mutation_info(entry, user_id=user_id)

    def record_like(
        self, name: str, user_id: int, dimension: int, count: int = 1
    ) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            entry.mutable.record_like(user_id, dimension, count)
            entry.log.append(
                MutationRecord(
                    entry.mutable.version,
                    "record_like",
                    user_id,
                    dimension=dimension,
                    count=count,
                )
            )
            return self._mutation_info(entry, user_id=user_id)

    # -- delta catch-up ------------------------------------------------
    def mutations_since(
        self, name: str, version: int, generation: int
    ) -> tuple[list[MutationRecord] | None, int]:
        """Mutations applied to ``name`` after store version ``version``.

        ``generation`` must be the :class:`StoreSnapshot` generation the
        caller's state was built from.  Returns
        ``(records, current_version)``.  ``records`` is ``None`` when
        the log cannot prove continuity — the caller fell out of the
        bounded log window, or the community was replaced (new
        generation, restarted version counter) — in which case the
        caller must rebuild from a fresh snapshot.  An empty list means
        the caller is already current.
        """
        entry = self._entry(name)
        with entry.lock:
            current = entry.mutable.version
            if entry.generation != generation or version > current:
                return None, current  # replaced community
            if version == current:
                return [], current
            records = [
                record for record in entry.log if record.version > version
            ]
            if len(records) != current - version:
                return None, current  # gap: log window no longer covers
            return records, current

    @staticmethod
    def _mutation_info(entry: _Entry, **extra: object) -> dict[str, object]:
        mutable = entry.mutable
        info: dict[str, object] = {
            "name": mutable.name,
            "version": mutable.version,
            "n_users": mutable.n_users,
        }
        info.update(extra)
        return info


class CatalogBackedStore(CommunityStore):
    """A community store that faults entries in from a persistent catalog.

    ``repro-csj serve --catalog <db>`` preloads *lazily*: at startup
    the store knows every catalog key (metadata only — no vectors), and
    a community's vectors load from the catalog the first time a
    request names it.  Cold start therefore touches only the rows that
    are actually requested; an idle server over a 100k-community
    catalog holds zero vector bytes.

    Once faulted in, a community behaves exactly like a registered one
    (mutable, versioned, delta-maintainable); the catalog is the *seed*
    state, not a write-through backend — mutations stay in the store.
    """

    def __init__(self, catalog: "PersistentCatalog") -> None:
        super().__init__()
        self._catalog = catalog

    # -- lazy materialisation ------------------------------------------
    def _entry(self, name: str) -> _Entry:
        with self._registry_lock:
            entry = self._entries.get(name)
        if entry is not None:
            return entry
        if name not in self._catalog:
            raise UnknownCommunityError(name, self.names())
        # The only vector load of the path, outside every store lock.
        community = self._catalog.get(name)
        mutable = IncrementalCommunity(
            name,
            community.n_dims,
            category=community.category,
            page_id=community.page_id,
            vectors=community.vectors,
        )
        fresh = _Entry(mutable)
        with self._registry_lock:
            # Another thread may have faulted the same key in; keep the
            # first registration so versions stay monotonic.
            entry = self._entries.setdefault(name, fresh)
        return entry

    # -- reads spanning catalog + materialised entries ------------------
    def names(self) -> list[str]:
        with self._registry_lock:
            registered = set(self._entries)
        return sorted(registered | set(self._catalog.keys()))

    def loaded_names(self) -> list[str]:
        """Only the communities whose vectors are materialised."""
        return super().names()

    def candidate_pairs(self, epsilon: int) -> list[tuple[str, str]]:
        """Candidate pairs over catalog rows *and* materialised entries.

        Keys never faulted in are screened entirely inside the
        catalog's indexed query (no vector loads); keys that live in
        the store — faulted in, re-registered or freshly registered,
        any of which may have drifted from the catalog row — are
        screened from their current snapshots against the clean keys
        (one window query each) and against each other pairwise.
        """
        from ..engine.envelope import community_envelope, envelopes_separated

        epsilon = int(epsilon)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        with self._registry_lock:
            dirty = sorted(self._entries)
        clean = sorted(set(self._catalog.keys()) - set(dirty))
        pairs = set(self._catalog.candidate_pairs(epsilon, keys=clean))
        clean_set = set(clean)
        dirty_envelopes = {
            name: community_envelope(self.snapshot(name).community)
            for name in dirty
        }
        for name in dirty:
            for other in self._catalog.window_candidates(
                dirty_envelopes[name], epsilon, exclude=name
            ):
                if other in clean_set:
                    pairs.add((min(name, other), max(name, other)))
        for index, name in enumerate(dirty):
            for other in dirty[index + 1 :]:
                first_env = dirty_envelopes[name]
                second_env = dirty_envelopes[other]
                if first_env.n_dims != second_env.n_dims:
                    continue
                if not envelopes_separated(first_env, second_env, epsilon):
                    pairs.add((name, other))
        return sorted(pairs)

    def __len__(self) -> int:
        return len(self.names())

    def __contains__(self, name: str) -> bool:
        return super().__contains__(name) or name in self._catalog


if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..catalog import PersistentCatalog


#: Counter families of the delta layer, zero-initialised at server
#: startup so stats/scrapes expose them before the first update.
DELTA_COUNTERS = (
    "repro_delta_updates_total",
    "repro_delta_skips_total",
    "repro_delta_pairs_rechecked_total",
    "repro_delta_edges_added_total",
    "repro_delta_edges_removed_total",
    "repro_delta_augment_phases_total",
    "repro_delta_rebuilds_total",
    "repro_delta_refreshes_total",
    "repro_delta_evictions_total",
    "repro_delta_fallbacks_total",
)


def init_delta_metrics(metrics: "MetricsRegistry") -> None:
    """Create the ``repro_delta_*`` family at zero in ``metrics``."""
    for name in DELTA_COUNTERS:
        metrics.inc(name, 0)


class _CoupleState:
    """One maintained couple: maintainer + synced versions + row maps."""

    __slots__ = ("lock", "maintainer", "versions", "generations", "row_maps")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.maintainer: DeltaJoinMaintainer | None = None
        self.versions: dict[str, int] = {}
        self.generations: dict[str, int] = {}
        self.row_maps: dict[str, dict[int, int]] = {}


class DeltaJoinPool:
    """Version-aware :class:`DeltaJoinMaintainer` cache over a store.

    One maintainer per ``(couple, epsilon, size-ratio flag)`` key, LRU
    bounded.  :meth:`refresh` brings a couple's maintainer up to the
    store's current versions: like mutations replay through the
    maintainer's local repair path, while structural changes
    (subscribe / unsubscribe / community replacement / log gaps)
    discard the maintainer and rebuild it from fresh snapshots — row
    indices and the B/A orientation are only stable between membership
    changes.

    Thread-safety: the pool map takes its own lock; each couple's state
    takes a per-couple lock for the whole refresh, so concurrent
    ``update`` requests for the same couple serialise while different
    couples repair in parallel.  Metric emission goes to the
    caller-provided scratch registry (executor threads never touch the
    server's shared registry).
    """

    def __init__(
        self,
        store: CommunityStore,
        *,
        max_couples: int = 64,
    ) -> None:
        if max_couples < 1:
            raise ValidationError(
                f"max_couples must be >= 1, got {max_couples}"
            )
        self._store = store
        self._max_couples = int(max_couples)
        self._couples: OrderedDict[
            tuple[str, str, int, bool], _CoupleState
        ] = OrderedDict()
        self._lock = threading.Lock()
        self.refreshes = 0
        self.rebuilds = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._couples)

    def _state_for(
        self,
        key: tuple[str, str, int, bool],
        metrics: "MetricsRegistry | None" = None,
    ) -> _CoupleState:
        evicted = 0
        with self._lock:
            state = self._couples.get(key)
            if state is None:
                state = _CoupleState()
                self._couples[key] = state
                while len(self._couples) > self._max_couples:
                    self._couples.popitem(last=False)
                    self.evictions += 1
                    evicted += 1
            self._couples.move_to_end(key)
        if metrics is not None:
            for _ in range(evicted):
                metrics.inc("repro_delta_evictions_total")
        return state

    def invalidate(self, name: str) -> None:
        """Drop every maintainer involving ``name`` (re-registration)."""
        with self._lock:
            stale = [key for key in self._couples if name in key[:2]]
            for key in stale:
                del self._couples[key]

    def refresh(
        self,
        first: str,
        second: str,
        epsilon: int,
        *,
        enforce_size_ratio: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ) -> dict[str, object]:
        """Sync the couple's maintainer with the store; return a summary.

        ``mode`` in the summary is ``"delta"`` when the catch-up
        replayed like mutations through local repair (also when there
        was nothing to replay) and ``"rebuild"`` when the maintainer was
        (re)built from fresh snapshots.
        """
        if first == second:
            raise ValidationError(
                "update needs two distinct communities, got "
                f"{first!r} twice"
            )
        key = (
            min(first, second),
            max(first, second),
            int(epsilon),
            bool(enforce_size_ratio),
        )
        state = self._state_for(key, metrics)
        with state.lock:
            summary = self._refresh_locked(state, key, metrics)
        with self._lock:
            self.refreshes += 1
        if metrics is not None:
            metrics.inc("repro_delta_refreshes_total")
        return summary

    def _refresh_locked(
        self,
        state: _CoupleState,
        key: tuple[str, str, int, bool],
        metrics: "MetricsRegistry | None",
    ) -> dict[str, object]:
        name_one, name_two = key[0], key[1]
        maintainer = state.maintainer
        mode = "delta"
        pending: dict[str, list[MutationRecord]] = {}
        if maintainer is None:
            mode = "rebuild"
        else:
            for name in (name_one, name_two):
                records, current = self._store.mutations_since(
                    name, state.versions[name], state.generations[name]
                )
                if records is None or any(
                    record.structural for record in records
                ):
                    mode = "rebuild"
                    break
                pending[name] = records
        if mode == "rebuild":
            maintainer = self._rebuild(state, key, metrics)
        else:
            assert maintainer is not None
            maintainer.metrics = metrics
            try:
                for name in (name_one, name_two):
                    side = "first" if name == name_one else "second"
                    rows = state.row_maps[name]
                    for record in pending[name]:
                        maintainer.record_like(
                            side,
                            rows[record.user_id],
                            record.dimension,
                            record.count,
                        )
                        state.versions[name] = record.version
            finally:
                maintainer.metrics = None
        return {
            "mode": mode,
            "similarity": maintainer.similarity,
            "n_matched": maintainer.n_matched,
            "size_b": maintainer.size_b,
            "size_a": maintainer.size_a,
            "events": maintainer.events.as_dict(),
            "versions": dict(state.versions),
            "stats": maintainer.stats.as_dict(),
        }

    def _rebuild(
        self,
        state: _CoupleState,
        key: tuple[str, str, int, bool],
        metrics: "MetricsRegistry | None",
    ) -> DeltaJoinMaintainer:
        name_one, name_two, epsilon, enforce = key
        snap_one = self._store.snapshot(name_one)
        snap_two = self._store.snapshot(name_two)
        if state.maintainer is None:
            maintainer = DeltaJoinMaintainer(
                snap_one.community,
                snap_two.community,
                epsilon,
                enforce_size_ratio=enforce,
            )
            state.maintainer = maintainer
            if metrics is not None:
                metrics.inc("repro_delta_rebuilds_total")
        else:
            maintainer = state.maintainer
            maintainer.metrics = metrics
            try:
                maintainer.rebuild(snap_one.community, snap_two.community)
            finally:
                maintainer.metrics = None
        with self._lock:
            self.rebuilds += 1
        state.versions = {
            name_one: snap_one.version,
            name_two: snap_two.version,
        }
        state.generations = {
            name_one: snap_one.generation,
            name_two: snap_two.generation,
        }
        state.row_maps = {
            name_one: {
                user_id: row for row, user_id in enumerate(snap_one.user_ids)
            },
            name_two: {
                user_id: row for row, user_id in enumerate(snap_two.user_ids)
            },
        }
        return maintainer

    def stats(self) -> dict[str, object]:
        # All counter reads under the lock: a snapshot taken between two
        # mutations must be one consistent state, not a torn mix.
        with self._lock:
            return {
                "couples": len(self._couples),
                "max_couples": self._max_couples,
                "refreshes": self.refreshes,
                "rebuilds": self.rebuilds,
                "evictions": self.evictions,
            }


def _n_dims_of(vectors: object) -> int:
    """Dimensionality of an array-like without importing numpy here."""
    try:
        first = vectors[0]  # type: ignore[index]
    except (TypeError, IndexError, KeyError) as exc:
        raise ValidationError(
            "community vectors must be a non-empty (n, d) matrix"
        ) from exc
    try:
        return len(first)
    except TypeError as exc:
        raise ValidationError(
            "community vectors must be a 2-D (n, d) matrix"
        ) from exc
