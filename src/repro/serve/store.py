"""Versioned community registry of the similarity service.

The store layers frozen :class:`~repro.core.types.Community` snapshots
over mutable :class:`~repro.core.incremental.IncrementalCommunity`
state.  Every registered community is held as an ``IncrementalCommunity``
(so subscribe / unsubscribe / like traffic is always absorbable) and
every read path — joins, top-k — goes through :meth:`snapshot`, which
freezes the current state into an immutable ``Community`` tagged with
the mutable's monotonic version.

Coordination is per community: a mutation and a snapshot of the *same*
community serialise on that community's lock, while different
communities proceed independently.  Snapshots are cached per version,
so a read-heavy workload between mutations freezes each state exactly
once and then hands out the same immutable object — safe to share
across executor threads because ``Community`` matrices are read-only.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..core.errors import ValidationError
from ..core.incremental import IncrementalCommunity
from ..core.types import Community

__all__ = ["UnknownCommunityError", "CommunityStore", "StoreSnapshot"]


class UnknownCommunityError(ValidationError):
    """A request named a community the store has never registered."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        known = sorted(known)
        listed = ", ".join(known[:8]) + (", ..." if len(known) > 8 else "")
        super().__init__(
            f"community {name!r} is not registered"
            + (f" (registered: {listed})" if known else " (store is empty)")
        )


class StoreSnapshot:
    """One frozen read of a community: ``(community, version)``."""

    __slots__ = ("community", "version")

    def __init__(self, community: Community, version: int) -> None:
        self.community = community
        self.version = version


class _Entry:
    """One registered community: mutable state + snapshot cache + lock."""

    __slots__ = ("mutable", "lock", "_cached_version", "_cached_snapshot")

    def __init__(self, mutable: IncrementalCommunity) -> None:
        self.mutable = mutable
        self.lock = threading.RLock()
        self._cached_version = -1
        self._cached_snapshot: Community | None = None

    def snapshot(self) -> StoreSnapshot:
        with self.lock:
            version = self.mutable.version
            if self._cached_snapshot is None or self._cached_version != version:
                self._cached_snapshot = self.mutable.snapshot()
                self._cached_version = version
            return StoreSnapshot(self._cached_snapshot, version)


class CommunityStore:
    """Named, versioned communities behind per-community locks.

    The registry map itself is guarded by one lock (registration is
    rare); all per-community work — mutations and snapshot freezing —
    takes only that community's lock.
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self._registry_lock = threading.Lock()

    # -- registration --------------------------------------------------
    def register(
        self,
        name: str,
        vectors: object,
        *,
        category: str = "",
        page_id: int = 0,
        replace: bool = False,
    ) -> StoreSnapshot:
        """Register (or with ``replace`` overwrite) a community.

        ``vectors`` is any array-like accepted by
        :func:`~repro.core.types.as_counter_matrix`; the initial state
        gets version 0 and every subsequent mutation bumps it.
        """
        if not isinstance(name, str) or not name:
            raise ValidationError("community name must be a non-empty string")
        mutable = IncrementalCommunity(
            name,
            _n_dims_of(vectors),
            category=category,
            page_id=int(page_id),
            vectors=vectors,
        )
        entry = _Entry(mutable)
        with self._registry_lock:
            if name in self._entries and not replace:
                raise ValidationError(
                    f"community {name!r} is already registered "
                    "(pass replace=true to overwrite)"
                )
            self._entries[name] = entry
        return entry.snapshot()

    def register_community(
        self, community: Community, *, replace: bool = False
    ) -> StoreSnapshot:
        """Register an existing frozen community (CLI preload path)."""
        return self.register(
            community.name,
            community.vectors,
            category=community.category,
            page_id=community.page_id,
            replace=replace,
        )

    # -- reads ---------------------------------------------------------
    def names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return name in self._entries

    def _entry(self, name: str) -> _Entry:
        with self._registry_lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownCommunityError(name, self._entries)
            return entry

    def snapshot(self, name: str) -> StoreSnapshot:
        """The current frozen state of one community (cached per version)."""
        return self._entry(name).snapshot()

    def snapshots(self, names: Iterable[str]) -> list[StoreSnapshot]:
        return [self.snapshot(name) for name in names]

    def describe(self) -> dict[str, dict[str, object]]:
        """Per-community metadata for the ``stats`` endpoint."""
        with self._registry_lock:
            entries = dict(self._entries)
        out: dict[str, dict[str, object]] = {}
        for name in sorted(entries):
            mutable = entries[name].mutable
            with entries[name].lock:
                out[name] = {
                    "version": mutable.version,
                    "n_users": mutable.n_users,
                    "n_dims": mutable.n_dims,
                    "category": mutable.category,
                }
        return out

    # -- mutations -----------------------------------------------------
    def subscribe(self, name: str, profile: object | None = None) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            user_id = entry.mutable.subscribe(profile)
            return self._mutation_info(entry, user_id=user_id)

    def unsubscribe(self, name: str, user_id: int) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            entry.mutable.unsubscribe(user_id)
            return self._mutation_info(entry, user_id=user_id)

    def record_like(
        self, name: str, user_id: int, dimension: int, count: int = 1
    ) -> dict[str, object]:
        entry = self._entry(name)
        with entry.lock:
            entry.mutable.record_like(user_id, dimension, count)
            return self._mutation_info(entry, user_id=user_id)

    @staticmethod
    def _mutation_info(entry: _Entry, **extra: object) -> dict[str, object]:
        mutable = entry.mutable
        info: dict[str, object] = {
            "name": mutable.name,
            "version": mutable.version,
            "n_users": mutable.n_users,
        }
        info.update(extra)
        return info


def _n_dims_of(vectors: object) -> int:
    """Dimensionality of an array-like without importing numpy here."""
    try:
        first = vectors[0]  # type: ignore[index]
    except (TypeError, IndexError, KeyError) as exc:
        raise ValidationError(
            "community vectors must be a non-empty (n, d) matrix"
        ) from exc
    try:
        return len(first)
    except TypeError as exc:
        raise ValidationError(
            "community vectors must be a 2-D (n, d) matrix"
        ) from exc
