"""Wire protocol of the CSJ similarity service.

Newline-delimited JSON over TCP: each request and each response is one
JSON object on one line, UTF-8 encoded, terminated by ``\\n``.  The
framing is deliberately primitive — any language with a socket and a
JSON parser is a client, and a session is inspectable with ``nc``.

Requests::

    {"v": 1, "id": 7, "op": "join", "args": {...}, "deadline_ms": 250}

``v`` is the protocol version (required, must equal
:data:`PROTOCOL_VERSION`); ``id`` is an opaque client token echoed back
verbatim (string, number or null); ``op`` names an endpoint from
:data:`OPS`; ``args`` is the endpoint's argument object; ``deadline_ms``
is an optional per-request latency budget — when it expires the server
answers ``deadline_exceeded`` instead of (or despite) doing the work.

Responses::

    {"v": 1, "id": 7, "ok": true,  "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "overloaded",
        "message": "...", "retry_after_ms": 40.0}}

``retry_after_ms`` is only present on admission-control rejections; a
well-behaved client backs off at least that long before retrying.

Schema violations raise :class:`ProtocolError`, which carries the error
code the server answers with — the decode layer never crashes the
connection handler.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from ..core.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "Request",
    "decode_request",
    "encode_request",
    "ok_response",
    "error_response",
    "encode_response",
    "decode_response",
]

#: Version stamped on (and required in) every request and response.
PROTOCOL_VERSION = 1

#: Hard bound on one protocol line.  ``register`` payloads carry whole
#: counter matrices, so the limit is generous; anything larger must be
#: split into ``register`` + ``mutate`` calls.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: The service's endpoints.  ``candidates`` and ``join_batch`` are the
#: shard-fleet ops the distributed coordinator fans out (see
#: ``docs/sharding.md``); they are ordinary endpoints any client may
#: call.
OPS = frozenset(
    {
        "register",
        "join",
        "topk",
        "mutate",
        "update",
        "stats",
        "health",
        "candidates",
        "join_batch",
    }
)

#: Error codes a response may carry.
ERROR_CODES = frozenset(
    {
        "bad_request",  # unparseable or schema-violating request line
        "unknown_op",  # op not in OPS
        "not_found",  # named community is not registered
        "invalid",  # well-formed request with invalid arguments
        "overloaded",  # admission control shed the request
        "deadline_exceeded",  # the request's latency budget expired
        "internal",  # unexpected server-side failure
    }
)


class ProtocolError(ReproError):
    """A request line violated the wire protocol.

    ``code`` is the :data:`ERROR_CODES` entry the server responds with;
    ``request_id`` preserves the client token when it could be parsed,
    so even a rejection is routable client-side.
    """

    def __init__(
        self, code: str, message: str, *, request_id: object = None
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        self.request_id = request_id
        super().__init__(message)


@dataclass(frozen=True)
class Request:
    """One decoded, schema-valid request."""

    op: str
    args: Mapping[str, object]
    id: object = None
    deadline_ms: float | None = None


def _require_id(value: object) -> object:
    if value is None or isinstance(value, (str, int, float)):
        return value
    raise ProtocolError(
        "bad_request", "request 'id' must be a string, number or null"
    )


def decode_request(line: bytes | str) -> Request:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` (never anything else) on any
    violation: non-JSON input, a non-object payload, a missing or
    mismatched version, an unknown op, malformed args or deadline.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                "bad_request", f"request line is not valid UTF-8: {exc}"
            ) from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad_request", f"request line is not valid JSON: {exc.msg}"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad_request",
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    request_id = _require_id(payload.get("id"))
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad_request",
            f"protocol version must be v={PROTOCOL_VERSION}, got {version!r}",
            request_id=request_id,
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(
            "bad_request", "request 'op' must be a non-empty string",
            request_id=request_id,
        )
    if op not in OPS:
        known = ", ".join(sorted(OPS))
        raise ProtocolError(
            "unknown_op", f"unknown op {op!r} (known: {known})",
            request_id=request_id,
        )
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(
            "bad_request", "request 'args' must be a JSON object",
            request_id=request_id,
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError(
                "bad_request", "'deadline_ms' must be a number",
                request_id=request_id,
            )
        if deadline_ms < 0:
            raise ProtocolError(
                "bad_request",
                f"'deadline_ms' must be >= 0, got {deadline_ms}",
                request_id=request_id,
            )
        deadline_ms = float(deadline_ms)
    return Request(op=op, args=args, id=request_id, deadline_ms=deadline_ms)


def encode_request(
    op: str,
    args: Mapping[str, object] | None = None,
    *,
    request_id: object = None,
    deadline_ms: float | None = None,
) -> bytes:
    """Serialise one request to its wire line (clients use this)."""
    payload: dict[str, object] = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
    if args:
        payload["args"] = dict(args)
    if deadline_ms is not None:
        payload["deadline_ms"] = float(deadline_ms)
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def ok_response(request_id: object, result: Mapping[str, object]) -> dict:
    """A success response payload echoing the client's token."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": dict(result)}


def error_response(
    request_id: object,
    code: str,
    message: str,
    *,
    retry_after_ms: float | None = None,
) -> dict:
    """An error response payload; ``retry_after_ms`` marks shed requests."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    error: dict[str, object] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = round(float(retry_after_ms), 3)
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False, "error": error}


def encode_response(payload: Mapping[str, object]) -> bytes:
    """Serialise one response payload to its wire line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_response(line: bytes | str) -> dict:
    """Parse one response line (clients use this).

    Raises :class:`ProtocolError` when the server (or a middlebox) sent
    something that is not a valid response object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad_request", f"response line is not valid JSON: {exc.msg}"
        ) from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("bad_request", "response must be an object with 'ok'")
    return payload
