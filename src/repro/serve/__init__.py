"""repro.serve — asyncio CSJ similarity service.

A pure-stdlib JSON-over-TCP service exposing the CSJ join machinery:

* :mod:`~repro.serve.protocol` — newline-delimited JSON wire format;
* :mod:`~repro.serve.store` — versioned community registry;
* :mod:`~repro.serve.admission` — bounded queue, token-bucket rate
  limiting, per-request deadlines, explicit load shedding;
* :mod:`~repro.serve.server` — the asyncio server (heavy joins run on
  a thread executor through the batch engine);
* :mod:`~repro.serve.client` — blocking and asyncio clients.

See ``docs/serving.md`` for the protocol and an example session.
"""

from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionTicket,
    Deadline,
    Rejection,
)
from .client import (
    AsyncServeClient,
    DeadlineExceededError,
    OverloadedError,
    ReconnectingClient,
    ServeClient,
    ServeError,
)
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
    ok_response,
)
from .server import CSJServer, ServeConfig, ServerThread
from .store import (
    CatalogBackedStore,
    CommunityStore,
    DeltaJoinPool,
    MutationRecord,
    StoreSnapshot,
    UnknownCommunityError,
)

__all__ = [
    # server
    "CSJServer",
    "ServeConfig",
    "ServerThread",
    # store
    "CatalogBackedStore",
    "CommunityStore",
    "StoreSnapshot",
    "UnknownCommunityError",
    "DeltaJoinPool",
    "MutationRecord",
    # admission
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionTicket",
    "Deadline",
    "Rejection",
    # protocol
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_response",
    "ok_response",
    # clients
    "ServeClient",
    "AsyncServeClient",
    "ReconnectingClient",
    "ServeError",
    "OverloadedError",
    "DeadlineExceededError",
]
