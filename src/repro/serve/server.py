"""The asyncio CSJ similarity server.

One event-loop thread owns every piece of shared mutable state — the
:class:`~repro.serve.store.CommunityStore` registry, the
:class:`~repro.serve.admission.AdmissionController`, and the server's
:class:`~repro.obs.MetricsRegistry` — while heavy join work runs on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` via
``run_in_executor``.  The only objects that cross the thread boundary
are immutable community snapshots going out and result payloads (plus
scratch metric snapshots) coming back, so no lock guards the loop-side
state; the shared :class:`~repro.engine.JoinResultCache` takes its own
internal lock.

Request lifecycle::

    line -> decode -> [health/stats: answer inline]
                   -> admission (shed with retry_after on overload)
                   -> deadline check -> plan (validate + freeze snapshots)
                   -> run_in_executor(BatchEngine) -> deadline check
                   -> respond

``health`` and ``stats`` bypass admission on purpose: an overloaded
server must still answer its monitoring plane, and a shed client needs
``stats`` to observe the shedding it just experienced.

Connections are handled concurrently; requests on one connection are
processed in order (responses are never interleaved within a
connection — pipeline across connections for parallelism).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from .._version import __version__
from ..catalog import init_catalog_metrics
from ..core.errors import ReproError
from ..engine import FaultPolicy, JoinResultCache
from ..obs import MetricsRegistry
from ..sketch import init_sketch_metrics

# Submodule-direct import on purpose: repro.shard's package init pulls
# in the coordinator, which imports repro.serve.client — going through
# the repro.shard package here would close that cycle.  metrics.py is
# dependency-light, so the direct import is always safe.
from ..shard.metrics import init_shard_metrics
from .admission import AdmissionController, AdmissionPolicy, Rejection
from .handlers import (
    execute_candidates_work,
    execute_join_batch_work,
    execute_join_work,
    execute_topk_work,
    execute_update_work,
    handle_mutate,
    handle_register,
    plan_candidates,
    plan_join,
    plan_join_batch,
    plan_topk,
    plan_update,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from .store import (
    CommunityStore,
    DeltaJoinPool,
    UnknownCommunityError,
    init_delta_metrics,
)

__all__ = ["ServeConfig", "CSJServer", "ServerThread"]


@dataclass
class ServeConfig:
    """Knobs of one similarity-server instance.

    ``port=0`` binds an ephemeral port (the default for tests and
    benches); :meth:`CSJServer.start` returns the bound address.
    ``executor_threads`` bounds concurrent joins; together with
    ``admission.max_pending`` it caps the executor backlog.
    ``cache_entries`` sizes the shared join-result cache (0 disables
    it).  ``fault_policy`` supervises every served join exactly as it
    would a batch run.
    """

    host: str = "127.0.0.1"
    port: int = 0
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    executor_threads: int = 4
    cache_entries: int = 1024
    screen: bool = True
    enforce_size_ratio: bool = True
    fault_policy: FaultPolicy | None = None
    #: Maintain per-couple delta joins for the ``update`` endpoint; off
    #: by default (updates then fall back to full recompute per call).
    delta_maintenance: bool = False
    #: LRU bound on concurrently maintained couples.
    delta_couples: int = 64


class CSJServer:
    """JSON-over-TCP similarity service over a community store.

    Parameters
    ----------
    config:
        Server knobs; defaults throughout.
    store:
        Optional pre-populated :class:`CommunityStore` (the CLI preload
        path); a fresh empty store otherwise.
    metrics:
        Registry for the ``repro_serve_*`` metric family; created
        internally when omitted so ``stats`` always has data.
    clock:
        Monotonic time source for admission, deadlines and latency
        accounting; injected by the tests for determinism.
    executor:
        Optional pre-built executor (the overload tests inject one with
        an occupied worker); the server otherwise builds and owns a
        ``ThreadPoolExecutor(config.executor_threads)``.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        store: CommunityStore | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.store = store if store is not None else CommunityStore()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Zero-initialise the sketch and delta families so stats/scrapes
        # expose them before the first approximate topk / update request.
        init_sketch_metrics(self.metrics)
        init_delta_metrics(self.metrics)
        init_catalog_metrics(self.metrics)
        init_shard_metrics(self.metrics)
        self.delta_pool: DeltaJoinPool | None = None
        if self.config.delta_maintenance:
            self.delta_pool = DeltaJoinPool(
                self.store, max_couples=self.config.delta_couples
            )
        self.clock = clock
        self.admission = AdmissionController(
            self.config.admission, clock=clock, metrics=self.metrics
        )
        self.cache: JoinResultCache | None = None
        if self.config.cache_entries > 0:
            self.cache = JoinResultCache(max_entries=self.config.cache_entries)
            # Cache counters go to the server registry; the cache's
            # internal lock serialises those updates across executor
            # threads (see satellite note in engine/cache.py).
            self.cache.metrics = self.metrics
        self._executor = executor
        self._owns_executor = executor is None
        self._server: asyncio.AbstractServer | None = None
        self._address: tuple[str, int] | None = None
        self._started_at: float | None = None
        self.deadline_exceeded_total = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.executor_threads,
                thread_name_prefix="repro-serve",
            )
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        self._started_at = self.clock()
        return self._address

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI foreground path)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- connection handling -------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("repro_serve_connections_total")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: answer once, then drop the
                    # connection (framing is lost beyond the limit).
                    writer.write(
                        encode_response(
                            error_response(
                                None,
                                "bad_request",
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client closed its side
                if not line.strip():
                    continue  # keep-alive blank line
                response = await self.handle_line(line)
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # already torn down on the client side
            except asyncio.CancelledError:
                # Loop shutdown cancelled us mid-teardown; the transport
                # is already closed and the task ends right here, so
                # re-raising would only produce shutdown noise.
                pass

    # -- dispatch ------------------------------------------------------
    async def handle_line(self, line: bytes) -> dict:
        """Decode, dispatch and answer one request line.

        Never raises: every failure mode maps to an error response.
        Public because the protocol tests (and the load generator's
        in-process mode) drive it directly.
        """
        started = self.clock()
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self._observe("unknown", exc.code, started)
            return error_response(exc.request_id, exc.code, str(exc))
        try:
            response = await self._dispatch(request)
        except ProtocolError as exc:
            response = error_response(request.id, exc.code, str(exc))
        except UnknownCommunityError as exc:
            response = error_response(request.id, "not_found", str(exc))
        except ReproError as exc:
            response = error_response(request.id, "invalid", str(exc))
        except Exception as exc:
            # The connection must survive handler bugs: translate to an
            # internal-error response instead of crashing the loop.
            response = error_response(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            )
        status = "ok" if response.get("ok") else response["error"]["code"]
        self._observe(request.op, status, started)
        return response

    def _observe(self, op: str, status: str, started: float) -> None:
        self.metrics.inc("repro_serve_requests_total", op=op, status=status)
        self.metrics.observe(
            "repro_serve_request_seconds", self.clock() - started, op=op
        )

    async def _dispatch(self, request: Request) -> dict:
        op = request.op
        if op == "health":
            return ok_response(request.id, self._health_result())
        if op == "stats":
            return ok_response(request.id, self._stats_result())
        admitted = self.admission.try_admit(op, deadline_ms=request.deadline_ms)
        if isinstance(admitted, Rejection):
            return error_response(
                request.id,
                "overloaded",
                admitted.message,
                retry_after_ms=admitted.retry_after_ms,
            )
        ticket = admitted
        try:
            if ticket.deadline.expired():
                return self._deadline_exceeded(request, "before execution")
            if op == "register":
                return ok_response(
                    request.id, handle_register(self.store, request.args)
                )
            if op == "mutate":
                return ok_response(
                    request.id, handle_mutate(self.store, request.args)
                )
            # Heavy ops: plan on the loop, execute on the thread pool.
            if op == "join":
                result, snapshot = await self._run_in_executor(
                    execute_join_work, plan_join(self, request.args)
                )
            elif op == "update":
                # plan_update applies the mutation inline (loop thread,
                # store locks); only the read-side sync runs off-loop.
                result, snapshot = await self._run_in_executor(
                    execute_update_work, plan_update(self, request.args)
                )
            elif op == "candidates":
                result, snapshot = await self._run_in_executor(
                    execute_candidates_work, plan_candidates(self, request.args)
                )
            elif op == "join_batch":
                result, snapshot = await self._run_in_executor(
                    execute_join_batch_work, plan_join_batch(self, request.args)
                )
            else:  # topk — decode_request guarantees op is in OPS
                result, snapshot = await self._run_in_executor(
                    execute_topk_work, plan_topk(self, request.args)
                )
            if snapshot is not None:
                self.metrics.merge(snapshot)
            if ticket.deadline.expired():
                return self._deadline_exceeded(
                    request, "during execution (result discarded)"
                )
            return ok_response(request.id, result)
        finally:
            ticket.release()

    async def _run_in_executor(self, runner, work):
        assert self._executor is not None, "server used before start()"
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, runner, work)

    def _deadline_exceeded(self, request: Request, phase: str) -> dict:
        self.deadline_exceeded_total += 1
        self.metrics.inc("repro_serve_deadline_exceeded_total", op=request.op)
        budget = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.admission.default_deadline_ms
        )
        return error_response(
            request.id,
            "deadline_exceeded",
            f"deadline of {budget:g} ms expired {phase}",
        )

    # -- monitoring plane ----------------------------------------------
    def _health_result(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "communities": len(self.store),
        }

    def _stats_result(self) -> dict:
        uptime = (
            self.clock() - self._started_at if self._started_at is not None else 0.0
        )
        result: dict[str, object] = {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(uptime, 6),
            "communities": self.store.describe(),
            "admission": self.admission.stats(),
            "deadline_exceeded_total": self.deadline_exceeded_total,
            "requests_by_op": self.metrics.counters_by_label(
                "repro_serve_requests_total", "op"
            ),
            "requests_by_status": self.metrics.counters_by_label(
                "repro_serve_requests_total", "status"
            ),
            "shed_by_reason": self.metrics.counters_by_label(
                "repro_serve_shed_total", "reason"
            ),
            "sketch": {
                "pairs_checked": self.metrics.counter(
                    "repro_sketch_pairs_checked_total"
                ),
                "pairs_skipped": self.metrics.counter(
                    "repro_sketch_pairs_skipped_total"
                ),
            },
            "delta": {
                "enabled": self.delta_pool is not None,
                "updates": self.metrics.counter("repro_delta_updates_total"),
                "skips": self.metrics.counter("repro_delta_skips_total"),
                "rebuilds": self.metrics.counter(
                    "repro_delta_rebuilds_total"
                ),
                "fallbacks": self.metrics.counter(
                    "repro_delta_fallbacks_total"
                ),
                **(
                    self.delta_pool.stats()
                    if self.delta_pool is not None
                    else {}
                ),
            },
            "shard": {
                # Zero on a standalone shard server; live when a
                # coordinator shares this registry (the self-hosted
                # fleet path), where they count its fan-out traffic.
                "requests": self.metrics.counter("repro_shard_requests_total"),
                "failures": self.metrics.counter("repro_shard_failures_total"),
                "degraded": self.metrics.counter("repro_shard_degraded_total"),
            },
        }
        if self.cache is not None:
            result["cache"] = self.cache.stats()
        return result


class ServerThread:
    """A :class:`CSJServer` on a dedicated event-loop thread.

    The embedding used by the tests, the load benchmark and examples:
    the caller's thread stays synchronous, the server runs on its own
    ``asyncio`` loop, and ``stop()``/context-manager exit shut it down
    cleanly.  Constructor arguments are forwarded to :class:`CSJServer`.
    """

    def __init__(self, config: ServeConfig | None = None, **kwargs: object) -> None:
        self.server = CSJServer(config, **kwargs)  # type: ignore[arg-type]
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: Exception | None = None

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread failed to start within 30 s")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.address = await self.server.start()
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()
