"""Endpoint handlers of the CSJ similarity service.

Light endpoints (``register``, ``mutate``, ``stats``, ``health``) run
inline on the event loop — they are registry and numpy-copy work,
microseconds to low milliseconds.  Heavy endpoints (``join``, ``topk``)
are split in two:

* a **plan** step on the loop that validates arguments and freezes the
  involved communities into versioned snapshots (:class:`JoinWork` /
  :class:`TopkWork`); and
* an **execute** step (:func:`execute_join_work` /
  :func:`execute_topk_work`) that the server dispatches onto its thread
  executor via ``run_in_executor``.

Execution reuses the batch layer wholesale: each request runs a
short-lived serial :class:`~repro.engine.BatchEngine` over the frozen
snapshots, sharing the server's thread-safe
:class:`~repro.engine.JoinResultCache` (so repeated couples are served
from memory across requests and across threads), the envelope
pre-screen, and — when configured — :class:`~repro.engine.FaultPolicy`
supervision.  Engine-side metrics are collected into a scratch registry
that travels back with the result; the server merges it on the loop, so
the shared registry is only ever written from one thread.

Argument errors raise :class:`~repro.serve.protocol.ProtocolError`
(mapped to ``invalid``); unknown community names raise
:class:`~repro.serve.store.UnknownCommunityError` (mapped to
``not_found``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..algorithms.baseline import ExBaseline
from ..algorithms.registry import ALGORITHMS
from ..apps import top_k_pairs
from ..core.types import Community
from ..engine import (
    BatchEngine,
    FaultPolicy,
    JoinResultCache,
    PairJob,
    PairOutcome,
    canonical_options,
)
from ..obs import MetricsRegistry
from ..sketch import SketchPrefilter
from .protocol import ProtocolError
from .store import CommunityStore, DeltaJoinPool, StoreSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import CSJServer

__all__ = [
    "JoinWork",
    "TopkWork",
    "UpdateWork",
    "CandidatesWork",
    "JoinBatchWork",
    "plan_join",
    "plan_topk",
    "plan_update",
    "plan_candidates",
    "plan_join_batch",
    "execute_join_work",
    "execute_topk_work",
    "execute_update_work",
    "execute_candidates_work",
    "execute_join_batch_work",
    "handle_register",
    "handle_mutate",
]

#: Ops whose execute step runs on the thread executor.
HEAVY_OPS = frozenset({"join", "topk", "update", "candidates", "join_batch"})

#: JSON-representable option value types accepted in ``args.options``.
_OPTION_TYPES = (bool, int, float, str, type(None))


# ----------------------------------------------------------------------
# argument validation
# ----------------------------------------------------------------------
def _arg_str(args: Mapping[str, object], key: str) -> str:
    value = args.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError("invalid", f"'{key}' must be a non-empty string")
    return value


def _arg_int(
    args: Mapping[str, object], key: str, *, minimum: int | None = None,
    default: int | None = None, required: bool = False,
) -> int | None:
    value = args.get(key, default)
    if value is None:
        if required:
            raise ProtocolError("invalid", f"'{key}' is required")
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("invalid", f"'{key}' must be an integer")
    if minimum is not None and value < minimum:
        raise ProtocolError("invalid", f"'{key}' must be >= {minimum}, got {value}")
    return value


def _arg_method(args: Mapping[str, object], key: str, default: str) -> str:
    value = args.get(key, default)
    if not isinstance(value, str):
        raise ProtocolError("invalid", f"'{key}' must be a string")
    method = value.strip().lower()
    if method not in ALGORITHMS:
        known = ", ".join(sorted(ALGORITHMS))
        raise ProtocolError(
            "invalid", f"unknown method {value!r} (known: {known})"
        )
    return method


def _arg_options(args: Mapping[str, object]) -> dict[str, object]:
    options = args.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("invalid", "'options' must be a JSON object")
    for key, value in options.items():
        if not isinstance(value, _OPTION_TYPES):
            raise ProtocolError(
                "invalid",
                f"option {key!r} must be a JSON primitive, "
                f"got {type(value).__name__}",
            )
    return dict(options)


def _arg_bool(args: Mapping[str, object], key: str, default: bool) -> bool:
    value = args.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError("invalid", f"'{key}' must be a boolean")
    return value


def _arg_float(
    args: Mapping[str, object], key: str, default: float,
    *, minimum: float | None = None, maximum: float | None = None,
) -> float:
    value = args.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("invalid", f"'{key}' must be a number")
    value = float(value)
    if minimum is not None and value < minimum:
        raise ProtocolError("invalid", f"'{key}' must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ProtocolError("invalid", f"'{key}' must be <= {maximum}, got {value}")
    return value


def _arg_prefilter(
    args: Mapping[str, object], seed: int = 7
) -> "SketchPrefilter | None":
    """Build the optional sketch pre-filter from ``topk`` arguments."""
    choice = args.get("prefilter", "none")
    if choice not in ("none", "sketch"):
        raise ProtocolError(
            "invalid", f"'prefilter' must be 'none' or 'sketch', got {choice!r}"
        )
    target_recall = _arg_float(
        args, "target_recall", 1.0, minimum=1e-6, maximum=1.0
    )
    if choice == "none":
        return None
    return SketchPrefilter(target_recall=target_recall, seed=seed)


# ----------------------------------------------------------------------
# heavy-op work descriptions (planned on the loop, run on the executor)
# ----------------------------------------------------------------------
@dataclass
class JoinWork:
    """One planned CSJ couple, frozen at specific store versions."""

    first: StoreSnapshot
    second: StoreSnapshot
    method: str
    epsilon: int
    options: dict[str, object]
    cache: JoinResultCache | None
    screen: bool
    enforce_size_ratio: bool
    fault_policy: FaultPolicy | None
    collect_metrics: bool = False


@dataclass
class TopkWork:
    """One planned top-k ranking over frozen snapshots."""

    snapshots: list[StoreSnapshot]
    epsilon: int
    k: int
    screen_method: str
    refine_method: str
    options: dict[str, object]
    cache: JoinResultCache | None
    screen: bool
    fault_policy: FaultPolicy | None
    collect_metrics: bool = False
    names: list[str] = field(default_factory=list)
    prefilter: SketchPrefilter | None = None


def plan_join(server: "CSJServer", args: Mapping[str, object]) -> JoinWork:
    """Validate ``join`` arguments and freeze both communities."""
    first = _arg_str(args, "first")
    second = _arg_str(args, "second")
    epsilon = _arg_int(args, "epsilon", minimum=0, required=True)
    assert epsilon is not None
    config = server.config
    return JoinWork(
        first=server.store.snapshot(first),
        second=server.store.snapshot(second),
        method=_arg_method(args, "method", "ex-minmax"),
        epsilon=epsilon,
        options=_arg_options(args),
        cache=server.cache,
        screen=_arg_bool(args, "screen", config.screen),
        enforce_size_ratio=_arg_bool(
            args, "enforce_size_ratio", config.enforce_size_ratio
        ),
        fault_policy=config.fault_policy,
        collect_metrics=True,
    )


def plan_topk(server: "CSJServer", args: Mapping[str, object]) -> TopkWork:
    """Validate ``topk`` arguments and freeze the ranked communities."""
    epsilon = _arg_int(args, "epsilon", minimum=0, required=True)
    k = _arg_int(args, "k", minimum=1, default=5)
    assert epsilon is not None and k is not None
    names_arg = args.get("names")
    if names_arg is None:
        names = server.store.names()
    elif isinstance(names_arg, list) and all(
        isinstance(name, str) for name in names_arg
    ):
        names = list(names_arg)
    else:
        raise ProtocolError("invalid", "'names' must be a list of strings")
    if len(names) < 2:
        raise ProtocolError(
            "invalid", f"topk needs at least 2 communities, got {len(names)}"
        )
    if len(set(names)) != len(names):
        raise ProtocolError("invalid", "'names' must not repeat communities")
    config = server.config
    return TopkWork(
        snapshots=server.store.snapshots(names),
        epsilon=epsilon,
        k=k,
        screen_method=_arg_method(args, "screen_method", "ap-minmax"),
        refine_method=_arg_method(args, "method", "ex-minmax"),
        options=_arg_options(args),
        cache=server.cache,
        screen=_arg_bool(args, "screen", config.screen),
        fault_policy=config.fault_policy,
        collect_metrics=True,
        names=names,
        prefilter=_arg_prefilter(args),
    )


@dataclass
class UpdateWork:
    """One planned live update: mutation already applied on the loop.

    The execute step only *reads*: it syncs (or, with delta maintenance
    disabled, recomputes) the couple's similarity at the store versions
    current after the mutation.
    """

    store: CommunityStore
    pool: DeltaJoinPool | None
    first: str
    second: str
    epsilon: int
    enforce_size_ratio: bool
    mutation: dict[str, object] | None
    collect_metrics: bool = False


def plan_update(server: "CSJServer", args: Mapping[str, object]) -> UpdateWork:
    """Validate ``update`` arguments and apply the mutation inline.

    The mutation (optional — an update without one just refreshes the
    couple) is applied on the event loop exactly like a ``mutate``
    request, so the store's per-community lock and mutation log see it
    before the executor syncs the maintainer.  The mutation must target
    one of the couple's two communities.
    """
    first = _arg_str(args, "first")
    second = _arg_str(args, "second")
    if first == second:
        raise ProtocolError(
            "invalid", "update needs two distinct communities"
        )
    epsilon = _arg_int(args, "epsilon", minimum=0, required=True)
    assert epsilon is not None
    config = server.config
    mutation_args = args.get("mutation")
    mutation: dict[str, object] | None = None
    if mutation_args is not None:
        if not isinstance(mutation_args, dict):
            raise ProtocolError("invalid", "'mutation' must be a JSON object")
        target = _arg_str(mutation_args, "name")
        if target not in (first, second):
            raise ProtocolError(
                "invalid",
                f"mutation targets {target!r}, which is neither "
                f"{first!r} nor {second!r}",
            )
        mutation = handle_mutate(server.store, mutation_args)
    return UpdateWork(
        store=server.store,
        pool=server.delta_pool,
        first=first,
        second=second,
        epsilon=epsilon,
        enforce_size_ratio=_arg_bool(
            args, "enforce_size_ratio", config.enforce_size_ratio
        ),
        mutation=mutation,
        collect_metrics=True,
    )


@dataclass
class CandidatesWork:
    """One planned local candidate scan (vector-free where possible)."""

    store: CommunityStore
    epsilon: int


@dataclass
class JoinBatchWork:
    """One planned batch of joins over frozen snapshots.

    The distributed coordinator's workhorse: a shard evaluates many
    couples in one round trip, through one short-lived engine over the
    union roster — the exact execution shape of the single-host
    catalog ranking, so the returned similarities are byte-identical
    to it.
    """

    snapshots: dict[str, StoreSnapshot]
    pairs: list[tuple[str, str]]
    method: str
    epsilon: int
    options: dict[str, object]
    include_results: bool
    cache: JoinResultCache | None
    screen: bool
    fault_policy: FaultPolicy | None
    collect_metrics: bool = False


def plan_candidates(
    server: "CSJServer", args: Mapping[str, object]
) -> CandidatesWork:
    """Validate ``candidates`` arguments (the scan itself runs off-loop)."""
    epsilon = _arg_int(args, "epsilon", minimum=0, required=True)
    assert epsilon is not None
    return CandidatesWork(store=server.store, epsilon=epsilon)


def plan_join_batch(
    server: "CSJServer", args: Mapping[str, object]
) -> JoinBatchWork:
    """Validate ``join_batch`` arguments and freeze every named community."""
    epsilon = _arg_int(args, "epsilon", minimum=0, required=True)
    assert epsilon is not None
    pairs_arg = args.get("pairs")
    if not isinstance(pairs_arg, list) or not pairs_arg:
        raise ProtocolError(
            "invalid", "'pairs' must be a non-empty list of [first, second]"
        )
    pairs: list[tuple[str, str]] = []
    for entry in pairs_arg:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(name, str) and name for name in entry)
        ):
            raise ProtocolError(
                "invalid",
                "each pair must be a [first, second] list of non-empty "
                "strings",
            )
        if entry[0] == entry[1]:
            raise ProtocolError(
                "invalid", f"pair names must differ, got {entry[0]!r} twice"
            )
        pairs.append((entry[0], entry[1]))
    names = sorted({name for pair in pairs for name in pair})
    config = server.config
    return JoinBatchWork(
        snapshots={name: server.store.snapshot(name) for name in names},
        pairs=pairs,
        method=_arg_method(args, "method", "ap-minmax"),
        epsilon=epsilon,
        options=_arg_options(args),
        include_results=_arg_bool(args, "include_results", False),
        cache=server.cache,
        screen=_arg_bool(args, "screen", config.screen),
        fault_policy=config.fault_policy,
        collect_metrics=True,
    )


def execute_candidates_work(work: CandidatesWork) -> tuple[dict, dict | None]:
    """Run one local candidate scan (executor thread).

    A catalog-backed store answers from its indexed envelope screen
    (zero vector loads for never-materialised keys); a plain store
    screens its snapshots' envelopes.  Either way the result is the
    store's local slice of the surviving-pair set.
    """
    pairs = work.store.candidate_pairs(work.epsilon)
    result = {
        "epsilon": work.epsilon,
        "count": len(pairs),
        "pairs": [[first, second] for first, second in pairs],
    }
    return result, None


def execute_join_batch_work(work: JoinBatchWork) -> tuple[dict, dict | None]:
    """Run one batch of joins (executor thread).

    Mirrors the single-host catalog ranking's engine call exactly —
    one serial :class:`~repro.engine.BatchEngine` over the union
    roster, canonical options, default size-ratio handling — so a
    similarity computed here is bit-for-bit the one
    :func:`~repro.apps.top_k_pairs` computes for the same couple.
    Entries come back ranked by ``(-similarity, first, second)`` in
    request orientation, ready for the coordinator's k-way merge.
    """
    scratch = MetricsRegistry() if work.collect_metrics else None
    roster_names = sorted(work.snapshots)
    roster = [work.snapshots[name].community for name in roster_names]
    index_of = {name: index for index, name in enumerate(roster_names)}
    job_options = canonical_options(work.options)
    jobs = [
        PairJob(index_of[first], index_of[second], work.method, work.epsilon, job_options)
        for first, second in work.pairs
    ]
    with BatchEngine(
        roster,
        n_jobs=1,
        screen=work.screen,
        cache=work.cache,
        metrics=scratch,
        fault_policy=work.fault_policy,
    ) as engine:
        outcomes = engine.run(jobs)
    entries: list[dict[str, object]] = []
    for (first, second), outcome in zip(work.pairs, outcomes):
        result = outcome.result
        entry: dict[str, object] = {
            "first": first,
            "second": second,
            "similarity": result.similarity,
            "n_matched": result.n_matched,
            "swapped": result.swapped,
        }
        if work.include_results:
            entry["result"] = result.to_dict()
        entries.append(entry)
    entries.sort(
        key=lambda entry: (-entry["similarity"], entry["first"], entry["second"])  # type: ignore[operator]
    )
    result_payload = {
        "epsilon": work.epsilon,
        "method": work.method,
        "count": len(entries),
        "pairs": entries,
    }
    return result_payload, (scratch.snapshot() if scratch is not None else None)


def execute_update_work(work: UpdateWork) -> tuple[dict, dict | None]:
    """Sync or recompute one couple after a mutation (executor thread).

    With delta maintenance enabled the couple's maintainer replays the
    mutation log through local augmenting-path repair (``mode`` is
    ``"delta"``, or ``"rebuild"`` after structural changes / log gaps).
    Without it, every update pays a full
    ``ExBaseline(matcher="hopcroft_karp")`` join (``mode`` is
    ``"recompute"``) — the reference computation the delta path is
    byte-identical to.
    """
    scratch = MetricsRegistry() if work.collect_metrics else None
    if work.pool is not None:
        summary = work.pool.refresh(
            work.first,
            work.second,
            work.epsilon,
            enforce_size_ratio=work.enforce_size_ratio,
            metrics=scratch,
        )
    else:
        first = work.store.snapshot(work.first)
        second = work.store.snapshot(work.second)
        result = ExBaseline(work.epsilon, matcher="hopcroft_karp").join(
            first.community,
            second.community,
            enforce_size_ratio=work.enforce_size_ratio,
        )
        if scratch is not None:
            scratch.inc("repro_delta_fallbacks_total")
        summary = {
            "mode": "recompute",
            "similarity": result.similarity,
            "n_matched": result.n_matched,
            "size_b": result.size_b,
            "size_a": result.size_a,
            "events": result.events.as_dict(),
            "versions": {
                work.first: first.version,
                work.second: second.version,
            },
        }
    payload: dict[str, object] = {"epsilon": work.epsilon, **summary}
    if work.mutation is not None:
        payload["mutation"] = work.mutation
    return payload, (scratch.snapshot() if scratch is not None else None)


def execute_join_work(work: JoinWork) -> tuple[dict, dict | None]:
    """Run one planned join (executor thread).

    Returns the endpoint's ``result`` object plus the scratch metrics
    snapshot for the loop to merge.  The short-lived engine takes the
    exact same path as a direct :class:`~repro.engine.BatchEngine` call
    over the same two communities — the parity tests assert the served
    similarity and matching are identical to that direct computation.
    """
    scratch = MetricsRegistry() if work.collect_metrics else None
    engine = BatchEngine(
        [work.first.community, work.second.community],
        n_jobs=1,
        screen=work.screen,
        cache=work.cache,
        enforce_size_ratio=work.enforce_size_ratio,
        metrics=scratch,
        fault_policy=work.fault_policy,
    )
    try:
        job = PairJob.build(0, 1, work.method, work.epsilon, work.options)
        outcome: PairOutcome = engine.run([job])[0]
    finally:
        engine.close()
    result: dict[str, object] = {
        "disposition": outcome.disposition.value,
        "result": outcome.result.to_dict(),
        "first": _snapshot_info(work.first),
        "second": _snapshot_info(work.second),
    }
    if outcome.error is not None:
        result["error"] = outcome.error
    return result, (scratch.snapshot() if scratch is not None else None)


def execute_topk_work(work: TopkWork) -> tuple[dict, dict | None]:
    """Run one planned top-k ranking (executor thread)."""
    scratch = MetricsRegistry() if work.collect_metrics else None
    communities: list[Community] = [
        snapshot.community for snapshot in work.snapshots
    ]
    scores = top_k_pairs(
        communities,
        epsilon=work.epsilon,
        k=work.k,
        screen_method=work.screen_method,
        refine_method=work.refine_method,
        cache=work.cache,
        envelope_screen=work.screen,
        metrics=scratch,
        fault_policy=work.fault_policy,
        prefilter=work.prefilter,
        **work.options,
    )
    versions = {
        snapshot.community.name: snapshot.version for snapshot in work.snapshots
    }
    result = {
        "k": work.k,
        "epsilon": work.epsilon,
        "candidates": len(communities),
        "versions": versions,
        "ranking": [
            {
                "rank": rank,
                "name_b": score.name_b,
                "name_a": score.name_a,
                "similarity": score.similarity,
                "n_matched": score.result.n_matched,
            }
            for rank, score in enumerate(scores, start=1)
        ],
    }
    if work.prefilter is not None:
        # Approximate rankings carry their own error bar: the measured
        # per-epsilon recall already folded into each similarity.
        result["prefilter"] = work.prefilter.stats()
    return result, (scratch.snapshot() if scratch is not None else None)


def _snapshot_info(snapshot: StoreSnapshot) -> dict[str, object]:
    return {
        "name": snapshot.community.name,
        "version": snapshot.version,
        "n_users": snapshot.community.n_users,
    }


# ----------------------------------------------------------------------
# light endpoints (run inline on the event loop)
# ----------------------------------------------------------------------
def handle_register(store: CommunityStore, args: Mapping[str, object]) -> dict:
    name = _arg_str(args, "name")
    vectors = args.get("vectors")
    if not isinstance(vectors, list) or not vectors:
        raise ProtocolError(
            "invalid", "'vectors' must be a non-empty list of counter rows"
        )
    category = args.get("category", "")
    if not isinstance(category, str):
        raise ProtocolError("invalid", "'category' must be a string")
    page_id = _arg_int(args, "page_id", default=0)
    assert page_id is not None
    snapshot = store.register(
        name,
        vectors,
        category=category,
        page_id=page_id,
        replace=_arg_bool(args, "replace", False),
    )
    return {
        "name": name,
        "version": snapshot.version,
        "n_users": snapshot.community.n_users,
        "n_dims": snapshot.community.n_dims,
    }


#: ``mutate`` actions and their required integer arguments.
_MUTATE_ACTIONS = frozenset({"subscribe", "unsubscribe", "record_like"})


def handle_mutate(store: CommunityStore, args: Mapping[str, object]) -> dict:
    name = _arg_str(args, "name")
    action = _arg_str(args, "action")
    if action not in _MUTATE_ACTIONS:
        known = ", ".join(sorted(_MUTATE_ACTIONS))
        raise ProtocolError(
            "invalid", f"unknown mutate action {action!r} (known: {known})"
        )
    if action == "subscribe":
        profile = args.get("profile")
        if profile is not None and not isinstance(profile, list):
            raise ProtocolError(
                "invalid", "'profile' must be a list of counters"
            )
        info = store.subscribe(name, profile)
    elif action == "unsubscribe":
        user_id = _arg_int(args, "user_id", minimum=0, required=True)
        assert user_id is not None
        info = store.unsubscribe(name, user_id)
    else:  # record_like
        user_id = _arg_int(args, "user_id", minimum=0, required=True)
        dimension = _arg_int(args, "dimension", minimum=0, required=True)
        count = _arg_int(args, "count", minimum=1, default=1)
        assert user_id is not None and dimension is not None and count is not None
        info = store.record_like(name, user_id, dimension, count)
    info["action"] = action
    return info
