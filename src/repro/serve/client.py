"""Clients for the CSJ similarity service.

:class:`ServeClient` is the blocking client (plain sockets — usable
from any thread, which is what the closed-loop load generator's worker
threads need); :class:`AsyncServeClient` is the asyncio counterpart for
callers already inside an event loop.  Both speak the newline-delimited
JSON protocol of :mod:`repro.serve.protocol` and expose one method per
endpoint plus a generic :meth:`~ServeClient.request`.

Error responses raise :class:`ServeError` subclasses keyed by code:
shed requests raise :class:`OverloadedError` (carrying the server's
``retry_after_ms`` hint) and expired budgets raise
:class:`DeadlineExceededError`, so callers can branch on the exception
type instead of parsing payloads.
"""

from __future__ import annotations

import socket
from typing import Mapping

from ..core.errors import ReproError
from .protocol import decode_response, encode_request

__all__ = [
    "ServeError",
    "OverloadedError",
    "DeadlineExceededError",
    "ServeClient",
    "AsyncServeClient",
]


class ServeError(ReproError):
    """An error response from the similarity service."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after_ms: float | None = None,
        request_id: object = None,
    ) -> None:
        self.code = code
        self.retry_after_ms = retry_after_ms
        self.request_id = request_id
        super().__init__(f"[{code}] {message}")


class OverloadedError(ServeError):
    """Admission control shed the request; back off ``retry_after_ms``."""


class DeadlineExceededError(ServeError):
    """The request's latency budget expired server-side."""


def _raise_for(payload: dict) -> dict:
    """Return the result of an ok response, raise for an error one."""
    if payload.get("ok"):
        result = payload.get("result")
        return result if isinstance(result, dict) else {}
    error = payload.get("error") or {}
    code = str(error.get("code", "internal"))
    message = str(error.get("message", "unknown server error"))
    retry_after = error.get("retry_after_ms")
    kwargs: dict[str, object] = {
        "retry_after_ms": float(retry_after) if retry_after is not None else None,
        "request_id": payload.get("id"),
    }
    if code == "overloaded":
        raise OverloadedError(code, message, **kwargs)  # type: ignore[arg-type]
    if code == "deadline_exceeded":
        raise DeadlineExceededError(code, message, **kwargs)  # type: ignore[arg-type]
    raise ServeError(code, message, **kwargs)  # type: ignore[arg-type]


class _EndpointMixin:
    """Shared endpoint helpers; subclasses provide ``request``."""

    def register(
        self,
        name: str,
        vectors: object,
        *,
        category: str = "",
        page_id: int = 0,
        replace: bool = False,
    ):
        vectors = getattr(vectors, "tolist", lambda: vectors)()
        return self.request(  # type: ignore[attr-defined]
            "register",
            {
                "name": name,
                "vectors": vectors,
                "category": category,
                "page_id": page_id,
                "replace": replace,
            },
        )

    def join(
        self,
        first: str,
        second: str,
        *,
        epsilon: int,
        method: str = "ex-minmax",
        options: Mapping[str, object] | None = None,
        deadline_ms: float | None = None,
    ):
        args: dict[str, object] = {
            "first": first,
            "second": second,
            "epsilon": epsilon,
            "method": method,
        }
        if options:
            args["options"] = dict(options)
        return self.request("join", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def topk(
        self,
        *,
        epsilon: int,
        k: int = 5,
        names: list[str] | None = None,
        method: str = "ex-minmax",
        deadline_ms: float | None = None,
    ):
        args: dict[str, object] = {"epsilon": epsilon, "k": k, "method": method}
        if names is not None:
            args["names"] = names
        return self.request("topk", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def subscribe(self, name: str, profile: list | None = None):
        args: dict[str, object] = {"name": name, "action": "subscribe"}
        if profile is not None:
            args["profile"] = profile
        return self.request("mutate", args)  # type: ignore[attr-defined]

    def unsubscribe(self, name: str, user_id: int):
        return self.request(  # type: ignore[attr-defined]
            "mutate", {"name": name, "action": "unsubscribe", "user_id": user_id}
        )

    def update(
        self,
        first: str,
        second: str,
        *,
        epsilon: int,
        mutation: Mapping[str, object] | None = None,
        enforce_size_ratio: bool | None = None,
        deadline_ms: float | None = None,
    ):
        """Apply one mutation and get the couple's repaired similarity.

        ``mutation`` uses the ``mutate`` argument schema (``name`` must
        be ``first`` or ``second``) and may be omitted to just refresh.
        """
        args: dict[str, object] = {
            "first": first,
            "second": second,
            "epsilon": epsilon,
        }
        if mutation is not None:
            args["mutation"] = dict(mutation)
        if enforce_size_ratio is not None:
            args["enforce_size_ratio"] = enforce_size_ratio
        return self.request("update", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def record_like(self, name: str, user_id: int, dimension: int, count: int = 1):
        return self.request(  # type: ignore[attr-defined]
            "mutate",
            {
                "name": name,
                "action": "record_like",
                "user_id": user_id,
                "dimension": dimension,
                "count": count,
            },
        )

    def stats(self):
        return self.request("stats")  # type: ignore[attr-defined]

    def health(self):
        return self.request("health")  # type: ignore[attr-defined]


class ServeClient(_EndpointMixin):
    """Blocking similarity-service client (one TCP connection)."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------
    def send_raw(self, line: bytes | str) -> dict:
        """Send a raw protocol line and return the raw response payload.

        The malformed-request tests use this to bypass client-side
        validation entirely; a trailing newline is added when missing.
        """
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ServeError("internal", "server closed the connection")
        return decode_response(response)

    def request(
        self,
        op: str,
        args: Mapping[str, object] | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request; return the result or raise a :class:`ServeError`."""
        self._next_id += 1
        payload = self.send_raw(
            encode_request(
                op, args, request_id=self._next_id, deadline_ms=deadline_ms
            )
        )
        return _raise_for(payload)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class AsyncServeClient(_EndpointMixin):
    """Asyncio similarity-service client (one TCP connection).

    Every endpoint helper of the blocking client exists here too and
    returns a coroutine — ``await client.join(...)``.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_raw(self, line: bytes | str) -> dict:
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._writer.write(line)
        await self._writer.drain()
        response = await self._reader.readline()
        if not response:
            raise ServeError("internal", "server closed the connection")
        return decode_response(response)

    async def request(
        self,
        op: str,
        args: Mapping[str, object] | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        self._next_id += 1
        payload = await self.send_raw(
            encode_request(
                op, args, request_id=self._next_id, deadline_ms=deadline_ms
            )
        )
        return _raise_for(payload)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # server already gone; the socket is closed either way

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.close()
