"""Clients for the CSJ similarity service.

:class:`ServeClient` is the blocking client (plain sockets — usable
from any thread, which is what the closed-loop load generator's worker
threads need); :class:`AsyncServeClient` is the asyncio counterpart for
callers already inside an event loop.  Both speak the newline-delimited
JSON protocol of :mod:`repro.serve.protocol` and expose one method per
endpoint plus a generic :meth:`~ServeClient.request`.

Error responses raise :class:`ServeError` subclasses keyed by code:
shed requests raise :class:`OverloadedError` (carrying the server's
``retry_after_ms`` hint) and expired budgets raise
:class:`DeadlineExceededError`, so callers can branch on the exception
type instead of parsing payloads.
"""

from __future__ import annotations

import socket
import time
from typing import Mapping, Sequence

from ..core.errors import ReproError
from .protocol import decode_response, encode_request

__all__ = [
    "ServeError",
    "OverloadedError",
    "DeadlineExceededError",
    "ServeClient",
    "AsyncServeClient",
    "ReconnectingClient",
]


class ServeError(ReproError):
    """An error response from the similarity service."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after_ms: float | None = None,
        request_id: object = None,
    ) -> None:
        self.code = code
        self.retry_after_ms = retry_after_ms
        self.request_id = request_id
        super().__init__(f"[{code}] {message}")


class OverloadedError(ServeError):
    """Admission control shed the request; back off ``retry_after_ms``."""


class DeadlineExceededError(ServeError):
    """The request's latency budget expired server-side."""


def _raise_for(payload: dict) -> dict:
    """Return the result of an ok response, raise for an error one."""
    if payload.get("ok"):
        result = payload.get("result")
        return result if isinstance(result, dict) else {}
    error = payload.get("error") or {}
    code = str(error.get("code", "internal"))
    message = str(error.get("message", "unknown server error"))
    retry_after = error.get("retry_after_ms")
    kwargs: dict[str, object] = {
        "retry_after_ms": float(retry_after) if retry_after is not None else None,
        "request_id": payload.get("id"),
    }
    if code == "overloaded":
        raise OverloadedError(code, message, **kwargs)  # type: ignore[arg-type]
    if code == "deadline_exceeded":
        raise DeadlineExceededError(code, message, **kwargs)  # type: ignore[arg-type]
    raise ServeError(code, message, **kwargs)  # type: ignore[arg-type]


class _EndpointMixin:
    """Shared endpoint helpers; subclasses provide ``request``."""

    def register(
        self,
        name: str,
        vectors: object,
        *,
        category: str = "",
        page_id: int = 0,
        replace: bool = False,
    ):
        vectors = getattr(vectors, "tolist", lambda: vectors)()
        return self.request(  # type: ignore[attr-defined]
            "register",
            {
                "name": name,
                "vectors": vectors,
                "category": category,
                "page_id": page_id,
                "replace": replace,
            },
        )

    def join(
        self,
        first: str,
        second: str,
        *,
        epsilon: int,
        method: str = "ex-minmax",
        options: Mapping[str, object] | None = None,
        deadline_ms: float | None = None,
    ):
        args: dict[str, object] = {
            "first": first,
            "second": second,
            "epsilon": epsilon,
            "method": method,
        }
        if options:
            args["options"] = dict(options)
        return self.request("join", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def topk(
        self,
        *,
        epsilon: int,
        k: int = 5,
        names: list[str] | None = None,
        method: str = "ex-minmax",
        deadline_ms: float | None = None,
    ):
        args: dict[str, object] = {"epsilon": epsilon, "k": k, "method": method}
        if names is not None:
            args["names"] = names
        return self.request("topk", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def subscribe(self, name: str, profile: list | None = None):
        args: dict[str, object] = {"name": name, "action": "subscribe"}
        if profile is not None:
            args["profile"] = profile
        return self.request("mutate", args)  # type: ignore[attr-defined]

    def unsubscribe(self, name: str, user_id: int):
        return self.request(  # type: ignore[attr-defined]
            "mutate", {"name": name, "action": "unsubscribe", "user_id": user_id}
        )

    def update(
        self,
        first: str,
        second: str,
        *,
        epsilon: int,
        mutation: Mapping[str, object] | None = None,
        enforce_size_ratio: bool | None = None,
        deadline_ms: float | None = None,
    ):
        """Apply one mutation and get the couple's repaired similarity.

        ``mutation`` uses the ``mutate`` argument schema (``name`` must
        be ``first`` or ``second``) and may be omitted to just refresh.
        """
        args: dict[str, object] = {
            "first": first,
            "second": second,
            "epsilon": epsilon,
        }
        if mutation is not None:
            args["mutation"] = dict(mutation)
        if enforce_size_ratio is not None:
            args["enforce_size_ratio"] = enforce_size_ratio
        return self.request("update", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def record_like(self, name: str, user_id: int, dimension: int, count: int = 1):
        return self.request(  # type: ignore[attr-defined]
            "mutate",
            {
                "name": name,
                "action": "record_like",
                "user_id": user_id,
                "dimension": dimension,
                "count": count,
            },
        )

    def candidates(self, *, epsilon: int, deadline_ms: float | None = None):
        """The store's local candidate pairs at ``epsilon`` (shard op)."""
        return self.request(  # type: ignore[attr-defined]
            "candidates", {"epsilon": epsilon}, deadline_ms=deadline_ms
        )

    def join_batch(
        self,
        pairs: Sequence[tuple[str, str]] | Sequence[Sequence[str]],
        *,
        epsilon: int,
        method: str = "ap-minmax",
        options: Mapping[str, object] | None = None,
        include_results: bool = False,
        deadline_ms: float | None = None,
    ):
        """Join many couples in one round trip, ranked server-side."""
        args: dict[str, object] = {
            "pairs": [[first, second] for first, second in pairs],
            "epsilon": epsilon,
            "method": method,
        }
        if options:
            args["options"] = dict(options)
        if include_results:
            args["include_results"] = True
        return self.request("join_batch", args, deadline_ms=deadline_ms)  # type: ignore[attr-defined]

    def stats(self):
        return self.request("stats")  # type: ignore[attr-defined]

    def health(self):
        return self.request("health")  # type: ignore[attr-defined]


class ServeClient(_EndpointMixin):
    """Blocking similarity-service client (one TCP connection)."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------
    def send_raw(self, line: bytes | str) -> dict:
        """Send a raw protocol line and return the raw response payload.

        The malformed-request tests use this to bypass client-side
        validation entirely; a trailing newline is added when missing.
        """
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._file.write(line)
        self._file.flush()
        response = self._file.readline()
        if not response:
            raise ServeError("internal", "server closed the connection")
        return decode_response(response)

    def request(
        self,
        op: str,
        args: Mapping[str, object] | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request; return the result or raise a :class:`ServeError`."""
        self._next_id += 1
        payload = self.send_raw(
            encode_request(
                op, args, request_id=self._next_id, deadline_ms=deadline_ms
            )
        )
        return _raise_for(payload)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


#: Ops safe to *resend* after a connection died mid-request: they read
#: or recompute, so a duplicate execution cannot corrupt server state.
#: ``register`` / ``mutate`` / ``update`` are not in the set — if the
#: connection dies after sending one, the client cannot know whether it
#: was applied, and resending could double-apply.
_RETRY_SAFE_OPS = frozenset(
    {"join", "topk", "stats", "health", "candidates", "join_batch"}
)


def _connection_lost(exc: Exception) -> bool:
    """Did this exception mean the TCP connection is gone?"""
    if isinstance(exc, (TimeoutError, OSError)):
        return True
    # A server that is killed mid-request surfaces as an empty read,
    # which ServeClient reports as this specific internal error.
    return (
        isinstance(exc, ServeError)
        and exc.code == "internal"
        and "server closed the connection" in str(exc)
    )


class ReconnectingClient(_EndpointMixin):
    """A :class:`ServeClient` wrapper that survives server restarts.

    The plain client binds one socket for life: a server restart (or an
    idle-timeout RST from a middlebox) kills every subsequent request.
    This wrapper lazily dials on first use, detects connection loss
    (``ECONNRESET`` / broken pipe / EOF-mid-response), reconnects with a
    small backoff, and **resends only retry-safe ops** — a lost
    ``mutate`` or ``register`` is surfaced as an error instead, because
    the client cannot prove the server didn't already apply it; the
    *next* request transparently reconnects either way.

    ``reconnects`` counts successful redials; the shard coordinator
    folds it into ``repro_shard_retries_total``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        retries: int = 1,
        backoff_seconds: float = 0.05,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff = max(0.0, float(backoff_seconds))
        self._client: ServeClient | None = None
        self.reconnects = 0

    @property
    def connected(self) -> bool:
        return self._client is not None

    def _connect(self) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(
                self._host, self._port, timeout=self._timeout
            )
        return self._client

    def _drop(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                client.close()
            except OSError:
                pass  # socket already dead; dropping it is the point

    def request(
        self,
        op: str,
        args: Mapping[str, object] | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        for attempt in range(self._retries + 1):
            final = attempt == self._retries
            if attempt:
                time.sleep(self._backoff)
            try:
                client = self._connect()
            except OSError as exc:
                # Dial failures are always retryable: nothing was sent.
                self._drop()
                if final:
                    raise ServeError(
                        "internal",
                        f"cannot connect to {self._host}:{self._port}: {exc}",
                    ) from exc
                continue
            if attempt:
                self.reconnects += 1
            try:
                return client.request(op, args, deadline_ms=deadline_ms)
            except Exception as exc:
                if not _connection_lost(exc):
                    raise  # a real server response (invalid, overloaded, ...)
                self._drop()
                if op not in _RETRY_SAFE_OPS or final:
                    raise ServeError(
                        "internal",
                        f"connection to {self._host}:{self._port} lost "
                        f"during {op!r}: {exc}",
                    ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ReconnectingClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class AsyncServeClient(_EndpointMixin):
    """Asyncio similarity-service client (one TCP connection).

    Every endpoint helper of the blocking client exists here too and
    returns a coroutine — ``await client.join(...)``.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_raw(self, line: bytes | str) -> dict:
        if isinstance(line, str):
            line = line.encode("utf-8")
        if not line.endswith(b"\n"):
            line += b"\n"
        self._writer.write(line)
        await self._writer.drain()
        response = await self._reader.readline()
        if not response:
            raise ServeError("internal", "server closed the connection")
        return decode_response(response)

    async def request(
        self,
        op: str,
        args: Mapping[str, object] | None = None,
        *,
        deadline_ms: float | None = None,
    ) -> dict:
        self._next_id += 1
        payload = await self.send_raw(
            encode_request(
                op, args, request_id=self._next_id, deadline_ms=deadline_ms
            )
        )
        return _raise_for(payload)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # server already gone; the socket is closed either way

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.close()
