"""SQLite-backed persistent community catalog with indexed screening.

A platform-scale CSJ deployment keeps thousands of communities on disk
and asks, over and over, one cheap question before any expensive join:
*which communities can have nonzero similarity with X at epsilon e?*
The in-memory engine answers it with the per-dimension min/max envelope
screen (:mod:`repro.engine.envelope`); this module pushes that screen
into a real index so it runs without touching any vectors.

Layout — three tables in one WAL-mode database:

* ``communities`` — one row per community: metadata, the dtype-aware
  content fingerprint, the per-dimension Min/Max envelope (two int64
  blobs of ``d`` values) and two *scalar* aggregates ``sum_min`` /
  ``sum_max`` (the envelope summed over dimensions) that make the
  screen indexable;
* ``vectors`` — the ``(n, d)`` counter matrix as a blob, in its own
  table so metadata/envelope reads never page vector data in.  Vectors
  load lazily, one community at a time, only when a join actually
  needs them;
* ``similarity_cache`` — join results keyed by ``(pair, method,
  epsilon, options, both content fingerprints)``, written
  transactionally so a crash mid-write can never corrupt the store
  (the WAL journal rolls the torn transaction back) and two handles on
  the same database never clobber each other's entries.

The window query runs in two stages, both vector-free:

1. **Indexed range scan.**  Envelopes ``A`` and ``B`` survive the
   screen only if *every* dimension ``t`` satisfies
   ``min_A[t] - max_B[t] <= eps`` and ``min_B[t] - max_A[t] <= eps``.
   Summing each inequality over the ``d`` dimensions gives a necessary
   scalar condition::

       sum_min_A <= sum_max_B + eps * d
       sum_min_B <= sum_max_A + eps * d

   which SQLite evaluates as a range scan over the
   ``(sum_min, sum_max)`` index — candidate rows are located in the
   index without a full table walk.
2. **Exact refinement.**  The scalar condition is necessary but not
   sufficient, so the scanned rows' envelope blobs (``d`` integers
   each, still no vectors) are refined with the exact per-dimension
   test of :func:`~repro.engine.envelope.envelopes_separated`.  The
   surviving set is therefore *identical* to the in-memory envelope
   screen — the tests assert it pair for pair.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..algorithms import get_algorithm
from ..core.errors import ValidationError
from ..core.types import Community
from ..engine.cache import canonical_options
from ..engine.envelope import Envelope, community_envelope, envelopes_separated

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.registry import MetricsRegistry

__all__ = [
    "CatalogRecord",
    "CatalogSimilarity",
    "PersistentCatalog",
    "CATALOG_COUNTERS",
    "init_catalog_metrics",
]

#: int64 little-endian — the on-disk encoding of envelopes and vectors.
_INT64 = np.dtype("<i8")

#: Characters rejected in catalog keys.  ``/`` and ``\`` for parity
#: with the filesystem shim, ``|`` because the shim's legacy cache keys
#: are pipe-joined and an embedded delimiter forges cache entries.
_FORBIDDEN_KEY_CHARS = "/\\|"

#: Counter family of the persistent catalog, zero-initialised at every
#: metrics init site so scrapes expose the series before the first use.
CATALOG_COUNTERS = (
    "repro_catalog_registrations_total",
    "repro_catalog_removals_total",
    "repro_catalog_window_queries_total",
    "repro_catalog_rows_scanned_total",
    "repro_catalog_survivors_total",
    "repro_catalog_vector_loads_total",
    "repro_catalog_cache_hits_total",
    "repro_catalog_cache_misses_total",
    "repro_catalog_cache_writes_total",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS communities (
    key         TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    category    TEXT NOT NULL DEFAULT '',
    page_id     INTEGER NOT NULL DEFAULT 0,
    n_users     INTEGER NOT NULL,
    n_dims      INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    env_min     BLOB NOT NULL,
    env_max     BLOB NOT NULL,
    sum_min     INTEGER NOT NULL,
    sum_max     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_communities_window
    ON communities(sum_min, sum_max);
CREATE TABLE IF NOT EXISTS vectors (
    key   TEXT PRIMARY KEY,
    dtype TEXT NOT NULL,
    n     INTEGER NOT NULL,
    d     INTEGER NOT NULL,
    data  BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS similarity_cache (
    key_b         TEXT NOT NULL,
    key_a         TEXT NOT NULL,
    method        TEXT NOT NULL,
    epsilon       INTEGER NOT NULL,
    options       TEXT NOT NULL DEFAULT '()',
    fingerprint_b TEXT NOT NULL,
    fingerprint_a TEXT NOT NULL,
    similarity    REAL NOT NULL,
    n_matched     INTEGER NOT NULL,
    created_at    REAL NOT NULL,
    PRIMARY KEY (
        key_b, key_a, method, epsilon, options,
        fingerprint_b, fingerprint_a
    )
);
"""

#: Stage-1 candidate query: the indexed range scan of the docstring.
#: ``?`` order: n_dims, probe sum_max + eps*d, probe sum_min - eps*d.
#: No ORDER BY — survivors are sorted in Python so the planner is free
#: to drive the scan from the (sum_min, sum_max) window index.
_WINDOW_SQL = (
    "SELECT key, env_min, env_max FROM communities "
    "WHERE n_dims = ? AND sum_min <= ? AND sum_max >= ?"
)


def init_catalog_metrics(metrics: "MetricsRegistry") -> None:
    """Create the ``repro_catalog_*`` family at zero in ``metrics``."""
    for name in CATALOG_COUNTERS:
        metrics.inc(name, 0)


@dataclass(frozen=True)
class CatalogRecord:
    """One community's metadata row — everything but the vectors."""

    key: str
    name: str
    category: str
    page_id: int
    n_users: int
    n_dims: int
    fingerprint: str


@dataclass(frozen=True)
class CatalogSimilarity:
    """One (possibly cached) join outcome, as the catalog reports it."""

    key_b: str
    key_a: str
    method: str
    epsilon: int
    similarity: float
    n_matched: int
    from_cache: bool


def _validate_key(key: str) -> str:
    if not isinstance(key, str) or not key:
        raise ValidationError("catalog key must be a non-empty string")
    if any(ch in key for ch in _FORBIDDEN_KEY_CHARS):
        raise ValidationError(f"invalid catalog key {key!r}")
    return key


def _encode_envelope(bounds: np.ndarray) -> bytes:
    return np.ascontiguousarray(bounds, dtype=_INT64).tobytes()


def _decode_envelope(blob: bytes) -> np.ndarray:
    return np.frombuffer(blob, dtype=_INT64).astype(np.int64, copy=False)


class PersistentCatalog:
    """SQLite-backed store of communities, envelopes and join results.

    Parameters
    ----------
    path:
        Database file (created on demand); ``":memory:"`` is accepted
        for throwaway catalogs.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; every
        internal counter is mirrored into the ``repro_catalog_*``
        family.
    timeout:
        Seconds a writer waits on a locked database before giving up
        (two handles on one file coordinate through WAL + this).

    One handle owns one connection, serialised by an internal lock, so
    a handle may be shared between threads; separate handles (including
    ones in other processes) coordinate through SQLite itself.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        metrics: "MetricsRegistry | None" = None,
        timeout: float = 30.0,
    ) -> None:
        self.path = Path(path) if str(path) != ":memory:" else path
        self.metrics = metrics
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(path),
            timeout=timeout,
            check_same_thread=False,
            isolation_level=None,  # explicit BEGIN/COMMIT below
        )
        self._counters = dict.fromkeys(CATALOG_COUNTERS, 0)
        with self._lock:
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.executescript(_SCHEMA)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "PersistentCatalog":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a ``CATALOG_COUNTERS`` counter (mirrors ``MetricsRegistry.inc``).

        Callers hold ``self._lock``; ``MetricsRegistry`` is not
        thread-safe, so the mirror write happens under the same lock.
        """
        self._counters[name] += amount
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _write(self, statements: list[tuple[str, tuple]]) -> None:
        """Run statements as one immediate (write-locked) transaction."""
        with self._lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                for sql, parameters in statements:
                    self._connection.execute(sql, parameters)
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            self._connection.execute("COMMIT")

    def _community_row(self, key: str, community: Community) -> tuple:
        from .fingerprint import content_fingerprint

        envelope = community_envelope(community)
        return (
            key,
            community.name or key,
            community.category,
            int(community.page_id),
            community.n_users,
            community.n_dims,
            content_fingerprint(community.vectors),
            _encode_envelope(envelope.mins),
            _encode_envelope(envelope.maxs),
            int(envelope.mins.sum()),
            int(envelope.maxs.sum()),
        )

    @staticmethod
    def _vector_row(key: str, community: Community) -> tuple:
        matrix = np.ascontiguousarray(community.vectors, dtype=_INT64)
        return (
            key,
            _INT64.str,
            community.n_users,
            community.n_dims,
            matrix.tobytes(),
        )

    def _registration_statements(
        self, key: str, community: Community
    ) -> list[tuple[str, tuple]]:
        return [
            (
                "INSERT OR REPLACE INTO communities "
                "(key, name, category, page_id, n_users, n_dims, "
                " fingerprint, env_min, env_max, sum_min, sum_max) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._community_row(key, community),
            ),
            (
                "INSERT OR REPLACE INTO vectors (key, dtype, n, d, data) "
                "VALUES (?, ?, ?, ?, ?)",
                self._vector_row(key, community),
            ),
            # Results computed from the replaced content are now
            # unreachable (the fingerprint changed); drop them so the
            # cache only ever holds entries its communities can serve.
            (
                "DELETE FROM similarity_cache WHERE key_b = ? OR key_a = ?",
                (key, key),
            ),
        ]

    # -- registration ----------------------------------------------------
    def register(self, key: str, community: Community) -> None:
        """Store (or replace) a community under ``key``."""
        _validate_key(key)
        self._write(self._registration_statements(key, community))
        with self._lock:
            self.inc("repro_catalog_registrations_total")

    def register_many(self, communities: Mapping[str, Community]) -> None:
        """Bulk-register in one transaction (import and bench path)."""
        statements: list[tuple[str, tuple]] = []
        for key, community in communities.items():
            _validate_key(key)
            statements.extend(self._registration_statements(key, community))
        self._write(statements)
        with self._lock:
            self.inc("repro_catalog_registrations_total", len(communities))

    def remove(self, key: str) -> None:
        """Delete a community, its vectors and every cache entry of it."""
        _validate_key(key)
        with self._lock:
            if key not in self:
                raise ValidationError(f"no community registered under {key!r}")
            self._write(
                [
                    ("DELETE FROM communities WHERE key = ?", (key,)),
                    ("DELETE FROM vectors WHERE key = ?", (key,)),
                    (
                        "DELETE FROM similarity_cache "
                        "WHERE key_b = ? OR key_a = ?",
                        (key, key),
                    ),
                ]
            )
            self.inc("repro_catalog_removals_total")

    # -- metadata reads (never touch vectors) ----------------------------
    def keys(self) -> list[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT key FROM communities ORDER BY key"
            ).fetchall()
        return [row[0] for row in rows]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM communities"
            ).fetchone()
        return int(count)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM communities WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def metadata(self, key: str) -> CatalogRecord:
        """One community's metadata row; no vector bytes are read."""
        with self._lock:
            row = self._connection.execute(
                "SELECT key, name, category, page_id, n_users, n_dims, "
                "fingerprint FROM communities WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            raise ValidationError(f"no community registered under {key!r}")
        return CatalogRecord(
            key=row[0],
            name=row[1],
            category=row[2],
            page_id=int(row[3]),
            n_users=int(row[4]),
            n_dims=int(row[5]),
            fingerprint=row[6],
        )

    def envelope(self, key: str) -> Envelope:
        """The stored per-dimension Min/Max envelope of one community."""
        with self._lock:
            row = self._connection.execute(
                "SELECT env_min, env_max FROM communities WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            raise ValidationError(f"no community registered under {key!r}")
        return Envelope(
            mins=_decode_envelope(row[0]), maxs=_decode_envelope(row[1])
        )

    # -- vector reads ----------------------------------------------------
    def get(self, key: str) -> Community:
        """Load one community's vectors (the only vector-touching read)."""
        record = self.metadata(key)
        with self._lock:
            row = self._connection.execute(
                "SELECT dtype, n, d, data FROM vectors WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                raise ValidationError(f"no vectors stored under {key!r}")
            self.inc("repro_catalog_vector_loads_total")
        dtype, n, d, data = row
        matrix = np.frombuffer(data, dtype=np.dtype(dtype)).reshape(
            int(n), int(d)
        )
        return Community(
            name=record.name,
            vectors=matrix,
            category=record.category,
            page_id=record.page_id,
        )

    # -- the candidate-window query --------------------------------------
    def _refine(
        self,
        probe_mins: np.ndarray,
        probe_maxs: np.ndarray,
        rows: list[tuple],
        epsilon: int,
    ) -> list[str]:
        """Stage 2: exact per-dimension screen over scanned index rows."""
        if not rows:
            return []
        keys = [row[0] for row in rows]
        mins = np.vstack([_decode_envelope(row[1]) for row in rows])
        maxs = np.vstack([_decode_envelope(row[2]) for row in rows])
        separated = ((mins - probe_maxs[None, :]) > epsilon).any(axis=1) | (
            (probe_mins[None, :] - maxs) > epsilon
        ).any(axis=1)
        return [key for key, out in zip(keys, separated) if not out]

    def window_candidates(
        self,
        envelope: Envelope,
        epsilon: int,
        *,
        exclude: str | None = None,
    ) -> list[str]:
        """Keys that survive the envelope screen against ``envelope``.

        Runs entirely on the ``communities`` table — metadata and
        envelope columns, never vectors.  The result is exactly
        ``{k : not envelopes_separated(envelope, envelope_of(k), eps)}``.
        """
        epsilon = int(epsilon)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        d = envelope.n_dims
        slack = epsilon * d
        probe_sum_min = int(envelope.mins.sum())
        probe_sum_max = int(envelope.maxs.sum())
        with self._lock:
            rows = self._connection.execute(
                _WINDOW_SQL, (d, probe_sum_max + slack, probe_sum_min - slack)
            ).fetchall()
            self.inc("repro_catalog_window_queries_total")
            self.inc("repro_catalog_rows_scanned_total", len(rows))
            survivors = self._refine(
                envelope.mins, envelope.maxs, rows, epsilon
            )
            if exclude is not None:
                survivors = [key for key in survivors if key != exclude]
            self.inc("repro_catalog_survivors_total", len(survivors))
        return sorted(survivors)

    def candidate_keys(self, key: str, epsilon: int) -> list[str]:
        """Which communities can have nonzero similarity with ``key``?

        The probe's own envelope comes from its metadata row, so the
        whole query — probe included — loads no vectors.
        """
        return self.window_candidates(
            self.envelope(key), epsilon, exclude=key
        )

    def candidate_pairs(
        self, epsilon: int, *, keys: Sequence[str] | None = None
    ) -> list[tuple[str, str]]:
        """All unordered pairs surviving the envelope screen.

        One indexed self-join emits the stage-1 candidates (the scalar
        sum-envelope condition applied to both orientations), then the
        per-dimension refinement runs vectorised over the emitted rows.
        ``keys`` restricts the sweep to a subset; no vectors load.
        """
        epsilon = int(epsilon)
        if epsilon < 0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        restrict = ""
        parameters: list[object] = [epsilon, epsilon]
        if keys is not None:
            marks = ",".join("?" for _ in keys)
            restrict = (
                f" AND a.key IN ({marks}) AND b.key IN ({marks})"
                if keys
                else " AND 0"
            )
            parameters.extend(keys)
            parameters.extend(keys)
        sql = (
            "SELECT a.key, a.env_min, a.env_max, "
            "       b.key, b.env_min, b.env_max "
            "FROM communities AS a JOIN communities AS b "
            "  ON b.key > a.key AND b.n_dims = a.n_dims "
            " AND b.sum_min <= a.sum_max + ? * a.n_dims "
            " AND a.sum_min <= b.sum_max + ? * a.n_dims"
            + restrict
            + " ORDER BY a.key, b.key"
        )
        with self._lock:
            rows = self._connection.execute(sql, parameters).fetchall()
            self.inc("repro_catalog_window_queries_total")
            self.inc("repro_catalog_rows_scanned_total", len(rows))
            pairs: list[tuple[str, str]] = []
            if rows:
                mins_a = np.vstack([_decode_envelope(row[1]) for row in rows])
                maxs_a = np.vstack([_decode_envelope(row[2]) for row in rows])
                mins_b = np.vstack([_decode_envelope(row[4]) for row in rows])
                maxs_b = np.vstack([_decode_envelope(row[5]) for row in rows])
                separated = ((mins_a - maxs_b) > epsilon).any(axis=1) | (
                    (mins_b - maxs_a) > epsilon
                ).any(axis=1)
                pairs = [
                    (row[0], row[3])
                    for row, out in zip(rows, separated)
                    if not out
                ]
            self.inc("repro_catalog_survivors_total", len(pairs))
        return pairs

    def pair_screened(self, key_b: str, key_a: str, epsilon: int) -> bool:
        """True when the stored envelopes prove zero similarity."""
        return envelopes_separated(
            self.envelope(key_b), self.envelope(key_a), int(epsilon)
        )

    def window_query_plan(self) -> str:
        """``EXPLAIN QUERY PLAN`` of the stage-1 scan (index audit)."""
        with self._lock:
            rows = self._connection.execute(
                "EXPLAIN QUERY PLAN " + _WINDOW_SQL, (0, 0, 0)
            ).fetchall()
        return "\n".join(str(row[-1]) for row in rows)

    # -- cached similarity -----------------------------------------------
    def similarity(
        self,
        key_b: str,
        key_a: str,
        *,
        epsilon: int,
        method: str = "ex-minmax",
        **options: object,
    ) -> CatalogSimilarity:
        """Join two registered communities, reusing cached results.

        The cache key embeds both content fingerprints, so replacing
        either community invalidates its entries; a hit is served from
        the metadata and cache tables alone — zero vector reads.
        """
        epsilon = int(epsilon)
        record_b = self.metadata(key_b)
        record_a = self.metadata(key_a)
        options_repr = repr(canonical_options(options))
        lookup = (
            key_b,
            key_a,
            method,
            epsilon,
            options_repr,
            record_b.fingerprint,
            record_a.fingerprint,
        )
        with self._lock:
            row = self._connection.execute(
                "SELECT similarity, n_matched FROM similarity_cache "
                "WHERE key_b = ? AND key_a = ? AND method = ? "
                "AND epsilon = ? AND options = ? "
                "AND fingerprint_b = ? AND fingerprint_a = ?",
                lookup,
            ).fetchone()
            if row is not None:
                self.inc("repro_catalog_cache_hits_total")
                return CatalogSimilarity(
                    key_b=key_b,
                    key_a=key_a,
                    method=method,
                    epsilon=epsilon,
                    similarity=float(row[0]),
                    n_matched=int(row[1]),
                    from_cache=True,
                )
            self.inc("repro_catalog_cache_misses_total")
        result = get_algorithm(method, epsilon, **options).join(
            self.get(key_b), self.get(key_a)
        )
        self._write(
            [
                (
                    "INSERT OR REPLACE INTO similarity_cache "
                    "(key_b, key_a, method, epsilon, options, "
                    " fingerprint_b, fingerprint_a, similarity, n_matched, "
                    " created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    lookup + (result.similarity, result.n_matched, time.time()),
                )
            ]
        )
        with self._lock:
            self.inc("repro_catalog_cache_writes_total")
        return CatalogSimilarity(
            key_b=key_b,
            key_a=key_a,
            method=method,
            epsilon=epsilon,
            similarity=result.similarity,
            n_matched=result.n_matched,
            from_cache=False,
        )

    def cache_size(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM similarity_cache"
            ).fetchone()
        return int(count)

    def clear_cache(self) -> None:
        self._write([("DELETE FROM similarity_cache", ())])

    # -- interop with the filesystem catalog ------------------------------
    def import_directory(self, root: str | Path) -> list[str]:
        """Import every community of a ``CommunityCatalog`` directory."""
        from ..datasets.catalog import CommunityCatalog

        legacy = CommunityCatalog(root)
        imported = {key: legacy.get(key) for key in legacy.keys()}
        if imported:
            self.register_many(imported)
        return sorted(imported)

    def export_directory(
        self, root: str | Path, *, keys: Iterable[str] | None = None
    ) -> list[str]:
        """Export communities into a ``CommunityCatalog`` directory."""
        from ..datasets.catalog import CommunityCatalog

        legacy = CommunityCatalog(root)
        exported = sorted(keys) if keys is not None else self.keys()
        for key in exported:
            legacy.register(key, self.get(key))
        return exported

    # -- accounting --------------------------------------------------------
    def io_stats(self) -> dict[str, int]:
        """Snapshot of the handle's IO/query counters (plain ints)."""
        with self._lock:
            return dict(self._counters)

    def storage_stats(self) -> dict[str, int]:
        """On-disk accounting: row counts and total vector bytes."""
        with self._lock:
            (communities,) = self._connection.execute(
                "SELECT COUNT(*) FROM communities"
            ).fetchone()
            (vector_bytes,) = self._connection.execute(
                "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM vectors"
            ).fetchone()
            (cache_entries,) = self._connection.execute(
                "SELECT COUNT(*) FROM similarity_cache"
            ).fetchone()
        return {
            "communities": int(communities),
            "vector_bytes": int(vector_bytes),
            "cache_entries": int(cache_entries),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PersistentCatalog(path={str(self.path)!r}, communities={len(self)})"
