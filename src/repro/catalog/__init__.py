"""Persistent community catalog: SQLite-backed storage with indexed
envelope screening, lazy vector loads and a crash-safe join-result
cache.  See ``docs/catalog.md`` for the schema and the window-query
SQL; :class:`~repro.datasets.catalog.CommunityCatalog` remains as a
thin filesystem-format shim sharing this package's fingerprinting.
"""

from .fingerprint import content_fingerprint
from .store import (
    CATALOG_COUNTERS,
    CatalogRecord,
    CatalogSimilarity,
    PersistentCatalog,
    init_catalog_metrics,
)

__all__ = [
    "CATALOG_COUNTERS",
    "CatalogRecord",
    "CatalogSimilarity",
    "PersistentCatalog",
    "content_fingerprint",
    "init_catalog_metrics",
]
