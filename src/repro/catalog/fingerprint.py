"""Dtype-aware content fingerprints for catalog storage layers.

Both persistent catalogs key their similarity caches by the *content*
of the joined communities, so a fingerprint collision serves one
community's cached result for another.  Hashing shape + raw bytes is
not enough: the same byte buffer reinterpreted under a different dtype
is a different matrix (``float64 1.0`` and ``int64
4607182418800017408`` share all eight bytes), so the dtype — including
endianness — is part of the content and belongs in the digest.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["content_fingerprint"]


def content_fingerprint(matrix: object) -> str:
    """SHA-256 hex digest over dtype + shape + row-major bytes."""
    array = np.ascontiguousarray(matrix)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()
