"""Public testing utilities: oracles and validators for CSJ results.

These helpers power the library's own test suite and are exported so
downstream users can validate the system on *their* data (or validate
their own CSJ implementations against this one):

* :func:`brute_force_candidate_pairs` — the exhaustive per-dimension
  epsilon join, the ground truth candidate graph;
* :func:`maximum_matching_size` — the true CSJ optimum via networkx;
* :func:`assert_valid_matching` — structural validation of any result;
* :func:`random_counter_couple` — structured random inputs whose
  candidate graphs have real matching ambiguity (not just isolated
  vertices), useful for fuzzing;
* :func:`random_counter_matrix` — one counter matrix with near-copy
  structure (the single-community building block);
* :func:`banded_community_fleet` — a fleet of communities in
  well-separated value bands, the canonical batch-engine workload (real
  intra-band similarity, provably-zero inter-band similarity).
"""

from __future__ import annotations

import numpy as np

from .core.errors import ValidationError
from .core.types import Community, CSJResult

__all__ = [
    "brute_force_candidate_pairs",
    "maximum_matching_size",
    "assert_valid_matching",
    "validate_result",
    "random_counter_couple",
    "random_counter_matrix",
    "banded_community_fleet",
]


def brute_force_candidate_pairs(
    vectors_b: np.ndarray, vectors_a: np.ndarray, epsilon: int
) -> set[tuple[int, int]]:
    """All pairs within per-dimension epsilon, by exhaustive check.

    Quadratic — intended for oracle use on small inputs.
    """
    pairs = set()
    for b_index, vector_b in enumerate(np.asarray(vectors_b)):
        diffs = np.abs(np.asarray(vectors_a) - vector_b)
        for a_index in np.flatnonzero((diffs <= epsilon).all(axis=1)):
            pairs.add((int(b_index), int(a_index)))
    return pairs


def maximum_matching_size(pairs: set[tuple[int, int]]) -> int:
    """Maximum bipartite matching size of a candidate set (networkx)."""
    import networkx as nx

    if not pairs:
        return 0
    graph = nx.Graph()
    b_nodes = {("b", b) for b, _ in pairs}
    graph.add_nodes_from(b_nodes, bipartite=0)
    graph.add_nodes_from({("a", a) for _, a in pairs}, bipartite=1)
    graph.add_edges_from((("b", b), ("a", a)) for b, a in pairs)
    matching = nx.bipartite.maximum_matching(graph, top_nodes=b_nodes)
    return len(matching) // 2


def assert_valid_matching(
    pairs: list[tuple[int, int]],
    vectors_b: np.ndarray,
    vectors_a: np.ndarray,
    epsilon: int,
) -> None:
    """Raise AssertionError unless ``pairs`` is a valid CSJ matching."""
    b_side = [b for b, _ in pairs]
    a_side = [a for _, a in pairs]
    assert len(set(b_side)) == len(b_side), "a B user matched twice"
    assert len(set(a_side)) == len(a_side), "an A user matched twice"
    for b_index, a_index in pairs:
        diff = np.abs(
            np.asarray(vectors_b)[b_index] - np.asarray(vectors_a)[a_index]
        ).max()
        assert diff <= epsilon, f"pair ({b_index}, {a_index}) violates epsilon"


def validate_result(
    result: CSJResult, community_b: Community, community_a: Community
) -> None:
    """Full validation of a result against its (oriented) inputs.

    Checks one-to-one structure, the per-dimension condition, index
    bounds and the Eq. (1) bookkeeping.  Raises
    :class:`~repro.core.errors.ValidationError` on the first violation.
    """
    result.check_one_to_one()
    if result.size_b != community_b.n_users or result.size_a != community_a.n_users:
        raise ValidationError("result sizes do not match the supplied communities")
    for pair in result.pairs:
        if not 0 <= pair.b_index < community_b.n_users:
            raise ValidationError(f"b index {pair.b_index} out of range")
        if not 0 <= pair.a_index < community_a.n_users:
            raise ValidationError(f"a index {pair.a_index} out of range")
        diff = np.abs(
            community_b.vectors[pair.b_index] - community_a.vectors[pair.a_index]
        ).max()
        if diff > result.epsilon:
            raise ValidationError(
                f"pair ({pair.b_index}, {pair.a_index}) violates epsilon "
                f"{result.epsilon}"
            )
    if not 0.0 <= result.similarity <= 1.0:
        raise ValidationError(f"similarity {result.similarity} outside [0, 1]")


def random_counter_couple(
    seed: int,
    *,
    n_b: int = 18,
    n_a: int = 24,
    n_dims: int = 6,
    high: int = 7,
) -> tuple[np.ndarray, np.ndarray]:
    """Random counter matrices with built-in near-duplicate structure.

    Roughly a third of the rows are near-copies of earlier rows (within
    one like per dimension), so the epsilon-1 candidate graph contains
    genuine matching ambiguity — far better fuzzing material than
    independent uniform rows, which almost never match.
    """
    rng = np.random.default_rng(seed)

    def matrix(n: int, seed_rows: np.ndarray | None = None) -> np.ndarray:
        base = rng.integers(0, high, size=(n, n_dims))
        for row in range(1, n, 3):
            if seed_rows is not None and row % 2 == 1:
                # Cross-side near-copy: creates real B x A candidates.
                source = seed_rows[rng.integers(0, len(seed_rows))]
            else:
                source = base[rng.integers(0, row)]
            noise = rng.integers(-1, 2, size=n_dims)
            base[row] = np.maximum(source + noise, 0)
        return base.astype(np.int64)

    vectors_b = matrix(n_b)
    vectors_a = matrix(n_a, seed_rows=vectors_b)
    return vectors_b, vectors_a


def random_counter_matrix(
    rng: np.random.Generator, n: int, d: int, high: int
) -> np.ndarray:
    """Counters with duplicates: one matrix with near-copy structure.

    Every third row is a near-copy (within one like per dimension) of an
    earlier row, so the matrix has genuine epsilon-1 self-similarity.
    """
    base = rng.integers(0, high, size=(n, d))
    for row in range(1, n, 3):
        source = rng.integers(0, row)
        noise = rng.integers(-1, 2, size=d)
        base[row] = np.maximum(base[source] + noise, 0)
    return base.astype(np.int64)


def banded_community_fleet(
    n_bands: int = 3,
    per_band: int = 4,
    *,
    users: int = 24,
    dims: int = 5,
    seed: int = 3,
    band_gap: int = 500,
    high: int = 20,
    name_format: str = "band{band}-m{member}",
) -> list[Community]:
    """Communities in well-separated value bands.

    Within a band every community perturbs the same archetype matrix, so
    intra-band pairs have real similarity and real join work; bands sit
    ``band_gap`` counts apart in every dimension, so inter-band pairs
    are provably dissimilar at small epsilon — exactly the envelope
    pre-screen's provably-zero case.  This is the canonical workload for
    the batch-engine tests and benchmarks; ``name_format`` receives
    ``band`` and ``member`` keywords.
    """
    rng = np.random.default_rng(seed)
    fleet: list[Community] = []
    for band in range(n_bands):
        base = rng.integers(0, high, size=(users, dims)) + band_gap * band
        for member in range(per_band):
            noise = rng.integers(-1, 2, size=(users, dims))
            vectors = np.maximum(base + noise, 0)
            fleet.append(
                Community(name_format.format(band=band, member=member), vectors)
            )
    return fleet
