"""The 27 VK categories and the paper's Table 1 calibration numbers.

Every user vector has ``d = 27`` dimensions, one per category.  The VK
column of Table 1 reports the total number of likes aggregated per
category over the paper's 7.8M sampled users; we use those totals as the
popularity weights of the VK-like generator, so the regenerated Table 1
reproduces the paper's ranking by construction and the generated
counters inherit the real dataset's strong skew (Entertainment receives
roughly 4450x the likes of Communication_Services).

``SYNTHETIC_RANKING`` lists the Synthetic column's category order, which
the paper obtained from a uniform generator — i.e. the order is
essentially arbitrary; we keep it for fidelity of the rendered table.
"""

from __future__ import annotations

__all__ = [
    "CATEGORIES",
    "N_CATEGORIES",
    "VK_TOTAL_LIKES",
    "SYNTHETIC_TOTAL_LIKES",
    "SYNTHETIC_RANKING",
    "VK_MAX_LIKES_PER_DIMENSION",
    "SYNTHETIC_MAX_LIKES_PER_DIMENSION",
    "category_index",
]

#: Table 1, VK column: category -> total likes, in rank order.
VK_TOTAL_LIKES: dict[str, int] = {
    "Entertainment": 2_111_519_450,
    "Hobbies": 602_445_614,
    "Relationship_family": 384_993_747,
    "Beauty_health": 318_695_199,
    "Media": 296_466_970,
    "Social_public": 255_007_945,
    "Sport": 245_830_867,
    "Internet": 206_085_821,
    "Education": 197_289_902,
    "Celebrity": 167_468_242,
    "Animals": 159_569_729,
    "Music": 153_686_427,
    "Culture_art": 141_107_189,
    "Food_recipes": 140_212_548,
    "Tourism_leisure": 140_054_637,
    "Auto_motor": 136_991_765,
    "Products_stores": 131_752_523,
    "Home_renovation": 120_091_854,
    "Cities_countries": 74_006_530,
    "Professional_Services": 33_024_545,
    "Medicine": 32_135_820,
    "Finance_insurance": 30_961_892,
    "Restaurants": 6_473_240,
    "Job_search": 1_853_720,
    "Transportation_Services": 1_385_538,
    "Consumer_Services": 810_889,
    "Communication_Services": 474_492,
}

#: The canonical dimension order: the VK ranking of Table 1.
CATEGORIES: tuple[str, ...] = tuple(VK_TOTAL_LIKES)

N_CATEGORIES = len(CATEGORIES)
assert N_CATEGORIES == 27, "the paper fixes d = 27"

#: Table 1, Synthetic column rank order (uniform generator, arbitrary).
SYNTHETIC_RANKING: tuple[str, ...] = (
    "Hobbies",
    "Social_public",
    "Job_search",
    "Medicine",
    "Home_renovation",
    "Celebrity",
    "Education",
    "Entertainment",
    "Sport",
    "Tourism_leisure",
    "Transportation_Services",
    "Finance_insurance",
    "Culture_art",
    "Consumer_Services",
    "Professional_Services",
    "Products_stores",
    "Relationship_family",
    "Cities_countries",
    "Food_recipes",
    "Internet",
    "Animals",
    "Media",
    "Auto_motor",
    "Communication_Services",
    "Restaurants",
    "Music",
    "Beauty_health",
)

#: Table 1, Synthetic column: category -> total likes, in rank order.
#: (The rank-2 value is illegible in the source scan; 3,960,000,000 is a
#: between-neighbours estimate and is only used as a relative weight.)
SYNTHETIC_TOTAL_LIKES: dict[str, int] = {
    "Hobbies": 4_030_521_210,
    "Social_public": 3_960_000_000,
    "Job_search": 3_894_770_484,
    "Medicine": 3_879_329_978,
    "Home_renovation": 3_840_633_803,
    "Celebrity": 3_784_173_891,
    "Education": 3_783_409_580,
    "Entertainment": 3_763_167_129,
    "Sport": 3_718_424_135,
    "Tourism_leisure": 3_702_498_557,
    "Transportation_Services": 3_685_969_155,
    "Finance_insurance": 3_680_184_922,
    "Culture_art": 3_680_041_975,
    "Consumer_Services": 3_668_738_029,
    "Professional_Services": 3_623_780_227,
    "Products_stores": 3_565_053_769,
    "Relationship_family": 3_560_196_074,
    "Cities_countries": 3_552_381_297,
    "Food_recipes": 3_550_668_794,
    "Internet": 3_521_866_267,
    "Animals": 3_517_540_727,
    "Media": 3_514_872_848,
    "Auto_motor": 3_469_592_249,
    "Communication_Services": 3_446_086_841,
    "Restaurants": 3_415_910_481,
    "Music": 3_297_277_125,
    "Beauty_health": 3_292_929_613,
}

#: Section 6.1: maximum likes per dimension over all users.
VK_MAX_LIKES_PER_DIMENSION = 152_532
SYNTHETIC_MAX_LIKES_PER_DIMENSION = 500_000


def category_index(name: str) -> int:
    """Dimension index of a category in the canonical order."""
    try:
        return CATEGORIES.index(name)
    except ValueError:
        raise KeyError(
            f"unknown category {name!r}; see repro.datasets.CATEGORIES"
        ) from None
