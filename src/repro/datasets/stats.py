"""Dataset statistics — the machinery behind Table 1.

Table 1 ranks the 27 categories of each dataset by the total number of
likes aggregated over all sampled users.  :func:`category_totals`
computes those totals for any user matrix and :func:`ranking` returns
the Table 1 row structure, ready for rendering by
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ValidationError
from .categories import CATEGORIES

__all__ = ["CategoryTotal", "category_totals", "ranking", "max_likes_per_dimension"]


@dataclass(frozen=True)
class CategoryTotal:
    """One row of a Table 1 column: rank, category and total likes."""

    rank: int
    category: str
    total_likes: int


def category_totals(vectors: np.ndarray) -> dict[str, int]:
    """Total likes per category over a user matrix."""
    matrix = np.asarray(vectors)
    if matrix.ndim != 2:
        raise ValidationError(f"expected a 2-D user matrix, got ndim={matrix.ndim}")
    if matrix.shape[1] > len(CATEGORIES):
        raise ValidationError(
            f"matrix has {matrix.shape[1]} dimensions but only "
            f"{len(CATEGORIES)} categories are defined"
        )
    sums = matrix.sum(axis=0)
    return {CATEGORIES[i]: int(sums[i]) for i in range(matrix.shape[1])}


def ranking(vectors: np.ndarray) -> list[CategoryTotal]:
    """Categories ranked by total likes, descending (Table 1 order)."""
    totals = category_totals(vectors)
    ordered = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return [
        CategoryTotal(rank=position + 1, category=name, total_likes=total)
        for position, (name, total) in enumerate(ordered)
    ]


def max_likes_per_dimension(vectors: np.ndarray) -> int:
    """The Section 6.1 statistic: maximum counter over all users/dims."""
    matrix = np.asarray(vectors)
    if matrix.size == 0:
        return 0
    return int(matrix.max())
