"""Cluster-based community construction shared by both generators.

The paper's case studies need community pairs whose CSJ similarity lands
in controlled bands (>= 15% for different-category couples, >= 30% for
same-category couples, plus the cID 10 edge case).  Independent heavy-
tailed (VK) or uniform (Synthetic) users practically never fall within a
small epsilon of each other, so — as in any real platform — similarity
comes from *similar audiences*: groups of users with nearly identical
profiles.

We model this with **archetype clusters**: an archetype is a full
d-dimensional profile; a cluster is a handful of users equal to the
archetype plus per-dimension noise bounded well inside epsilon.  A
couple ``<B, A>`` shares a controlled fraction of archetypes; users of a
shared cluster on the ``B`` side match users of the same cluster on the
``A`` side (and practically nothing else), so the exact CSJ similarity
is approximately the shared-user fraction of ``B``.  Cluster sizes are
small and slightly ``A``-heavy, leaving just enough ambiguity for the
approximate methods to occasionally commit suboptimally — the gap the
paper's tables show between Ap-* and Ex-* methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["ArchetypeSampler", "NoiseSampler", "CoupleVectors", "build_couple_vectors"]


class ArchetypeSampler(Protocol):
    """Draws ``n`` archetype profiles, returning an ``(n, d)`` int matrix."""

    def __call__(self, n: int) -> np.ndarray: ...


NoiseSampler = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CoupleVectors:
    """The generated user matrices of one community couple.

    ``n_shared_b``/``n_shared_a`` record how many users of each side
    belong to shared clusters — the engineered matchable audience.
    """

    vectors_b: np.ndarray
    vectors_a: np.ndarray
    n_shared_b: int
    n_shared_a: int


def _cluster_sizes(
    rng: np.random.Generator, total: int, mean_extra: float
) -> list[int]:
    """Split ``total`` users into clusters of size ``1 + Poisson(mean)``."""
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        size = 1 + int(rng.poisson(mean_extra))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def _materialise(
    archetypes: np.ndarray,
    sizes: list[int],
    noise: NoiseSampler,
) -> np.ndarray:
    """Expand archetypes to clusters of noisy users."""
    rows = np.repeat(archetypes, sizes, axis=0)
    return noise(rows)


def build_couple_vectors(
    rng: np.random.Generator,
    *,
    size_b: int,
    size_a: int,
    overlap_fraction: float,
    shared_archetypes: ArchetypeSampler,
    fresh_archetypes_b: ArchetypeSampler,
    fresh_archetypes_a: ArchetypeSampler,
    noise: NoiseSampler,
    cluster_mean_extra: float = 1.0,
    a_side_surplus: float = 0.4,
) -> CoupleVectors:
    """Assemble one ``<B, A>`` couple with a controlled shared audience.

    Parameters
    ----------
    overlap_fraction:
        Target fraction of ``B`` users that belong to shared clusters;
        this is (approximately) the exact CSJ similarity of the couple.
    shared_archetypes / fresh_archetypes_b / fresh_archetypes_a:
        Samplers for the cluster centres; the shared ones describe the
        common audience, the fresh ones each community's own audience.
    noise:
        Per-user perturbation, bounded so same-cluster users stay within
        per-dimension epsilon of each other (up to rare boundary cases).
    cluster_mean_extra:
        Cluster sizes are ``1 + Poisson(cluster_mean_extra)``.
    a_side_surplus:
        Shared clusters get ``Poisson(a_side_surplus)`` extra members on
        the ``A`` side, so the ``B`` side can in principle be fully
        covered by the matching.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ConfigurationError(
            f"overlap_fraction must be within [0, 1], got {overlap_fraction}"
        )
    if size_b < 1 or size_a < size_b:
        raise ConfigurationError(
            f"invalid couple sizes: size_b={size_b}, size_a={size_a}"
        )
    n_shared_b = int(round(overlap_fraction * size_b))
    shared_sizes_b = _cluster_sizes(rng, n_shared_b, cluster_mean_extra)
    shared_sizes_a = [
        size + int(rng.poisson(a_side_surplus)) for size in shared_sizes_b
    ]
    # Never let the shared audience overflow the A side.
    while sum(shared_sizes_a) > size_a and shared_sizes_a:
        widest = max(range(len(shared_sizes_a)), key=shared_sizes_a.__getitem__)
        shared_sizes_a[widest] = max(1, shared_sizes_a[widest] - 1)
        if all(size == 1 for size in shared_sizes_a):
            break
    n_shared_a = sum(shared_sizes_a)

    centres = shared_archetypes(len(shared_sizes_b))
    shared_b = _materialise(centres, shared_sizes_b, noise)
    shared_a = _materialise(centres, shared_sizes_a, noise)

    fresh_b_total = size_b - n_shared_b
    fresh_a_total = size_a - n_shared_a
    blocks_b = [shared_b]
    blocks_a = [shared_a]
    if fresh_b_total > 0:
        sizes = _cluster_sizes(rng, fresh_b_total, cluster_mean_extra)
        blocks_b.append(_materialise(fresh_archetypes_b(len(sizes)), sizes, noise))
    if fresh_a_total > 0:
        sizes = _cluster_sizes(rng, fresh_a_total, cluster_mean_extra)
        blocks_a.append(_materialise(fresh_archetypes_a(len(sizes)), sizes, noise))

    vectors_b = np.concatenate(blocks_b, axis=0)
    vectors_a = np.concatenate(blocks_a, axis=0)
    rng.shuffle(vectors_b, axis=0)
    rng.shuffle(vectors_a, axis=0)
    return CoupleVectors(
        vectors_b=vectors_b,
        vectors_a=vectors_a,
        n_shared_b=n_shared_b,
        n_shared_a=n_shared_a,
    )
