"""Dataset substrates: the VK-like and Synthetic generators, the paper's
couple registry (Table 2), statistics (Table 1) and persistence."""

from .categories import (
    CATEGORIES,
    N_CATEGORIES,
    SYNTHETIC_MAX_LIKES_PER_DIMENSION,
    SYNTHETIC_RANKING,
    SYNTHETIC_TOTAL_LIKES,
    VK_MAX_LIKES_PER_DIMENSION,
    VK_TOTAL_LIKES,
    category_index,
)
from .clusters import CoupleVectors, build_couple_vectors
from .couples import (
    DEFAULT_SCALE,
    DIFFERENT_CATEGORY_COUPLES,
    PAPER_COUPLES,
    SAME_CATEGORY_COUPLES,
    SCALABILITY_SIZES,
    CoupleSpec,
    build_couple,
    couples_for_table,
    scale_size,
)
from .catalog import CachedSimilarity, CommunityCatalog
from .manifest import build_manifest, load_manifest, save_manifest, verify_manifest
from .io import load_communities, load_couple, save_communities, save_couple
from .streams import (
    LikeEvent,
    LikeStreamSimulator,
    MutationEvent,
    MutationStreamSimulator,
    apply_mutation,
    replay,
)
from .stats import CategoryTotal, category_totals, max_likes_per_dimension, ranking
from .synthetic import SYNTHETIC_EPSILON, SyntheticGenerator
from .vk import VK_EPSILON, VKGenerator

__all__ = [
    "build_manifest",
    "verify_manifest",
    "save_manifest",
    "load_manifest",
    "CachedSimilarity",
    "CommunityCatalog",
    "LikeEvent",
    "LikeStreamSimulator",
    "MutationEvent",
    "MutationStreamSimulator",
    "apply_mutation",
    "replay",
    "CATEGORIES",
    "N_CATEGORIES",
    "VK_TOTAL_LIKES",
    "SYNTHETIC_TOTAL_LIKES",
    "SYNTHETIC_RANKING",
    "VK_MAX_LIKES_PER_DIMENSION",
    "SYNTHETIC_MAX_LIKES_PER_DIMENSION",
    "category_index",
    "CoupleVectors",
    "build_couple_vectors",
    "CoupleSpec",
    "PAPER_COUPLES",
    "DIFFERENT_CATEGORY_COUPLES",
    "SAME_CATEGORY_COUPLES",
    "SCALABILITY_SIZES",
    "DEFAULT_SCALE",
    "scale_size",
    "build_couple",
    "couples_for_table",
    "save_communities",
    "load_communities",
    "save_couple",
    "load_couple",
    "CategoryTotal",
    "category_totals",
    "ranking",
    "max_likes_per_dimension",
    "VKGenerator",
    "VK_EPSILON",
    "SyntheticGenerator",
    "SYNTHETIC_EPSILON",
]
