"""Persistence of communities and couples.

Vectors go into ``.npz`` archives (one array per community) and the
metadata (names, categories, page ids) into a sibling ``.json`` file, so
datasets generated once can be re-joined many times — e.g. to compare
methods on byte-identical inputs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.errors import ValidationError
from ..core.types import Community

__all__ = ["save_communities", "load_communities", "save_couple", "load_couple"]

_META_SUFFIX = ".meta.json"


def _meta_path(path: Path) -> Path:
    return path.with_name(path.stem + _META_SUFFIX)


def save_communities(path: str | Path, communities: dict[str, Community]) -> Path:
    """Save a keyed set of communities to ``<path>.npz`` + metadata JSON.

    Keys are caller-chosen identifiers (e.g. ``"B"``/``"A"``) and become
    the array names inside the archive.
    """
    path = Path(path).with_suffix(".npz")
    arrays = {key: community.vectors for key, community in communities.items()}
    np.savez_compressed(path, **arrays)
    metadata = {
        key: {
            "name": community.name,
            "category": community.category,
            "page_id": community.page_id,
        }
        for key, community in communities.items()
    }
    _meta_path(path).write_text(json.dumps(metadata, indent=2, sort_keys=True))
    return path


def load_communities(path: str | Path) -> dict[str, Community]:
    """Load a set of communities saved by :func:`save_communities`."""
    path = Path(path).with_suffix(".npz")
    if not path.exists():
        raise ValidationError(f"no such dataset archive: {path}")
    meta_path = _meta_path(path)
    if not meta_path.exists():
        raise ValidationError(f"missing metadata file: {meta_path}")
    metadata = json.loads(meta_path.read_text())
    communities: dict[str, Community] = {}
    with np.load(path) as archive:
        for key in archive.files:
            info = metadata.get(key, {})
            communities[key] = Community(
                name=info.get("name", key),
                vectors=archive[key],
                category=info.get("category", ""),
                page_id=int(info.get("page_id", 0)),
            )
    return communities


def save_couple(path: str | Path, community_b: Community, community_a: Community) -> Path:
    """Shorthand for persisting one ``<B, A>`` couple."""
    return save_communities(path, {"B": community_b, "A": community_a})


def load_couple(path: str | Path) -> tuple[Community, Community]:
    """Load a couple saved by :func:`save_couple`."""
    communities = load_communities(path)
    try:
        return communities["B"], communities["A"]
    except KeyError as missing:
        raise ValidationError(
            f"archive {path} does not hold a couple (missing key {missing})"
        ) from None
