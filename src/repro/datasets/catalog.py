"""On-disk community catalog with cached similarity results.

A platform operating CSJ keeps its communities in a store and re-uses
join results until either side changes.  :class:`CommunityCatalog`
provides exactly that substrate on the local filesystem: named
communities persisted as ``.npz`` archives (via :mod:`repro.datasets.io`)
plus a JSON cache of similarity results keyed by the pair, the method,
epsilon and the content fingerprints of both sides — so a cache entry
is automatically invalidated the moment a community is re-registered
with different vectors.

This class is the small-scale / human-inspectable format; the scalable
store is :class:`repro.catalog.PersistentCatalog` (SQLite, indexed
envelope screening, lazy vectors), which can ``import_directory`` /
``export_directory`` this layout.  The shim shares the persistent
catalog's dtype-aware content fingerprinting so the two caches agree
on what "same content" means.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..algorithms import get_algorithm
from ..catalog.fingerprint import content_fingerprint
from ..core.errors import ValidationError
from ..core.types import Community
from .io import load_communities, save_communities

__all__ = ["CachedSimilarity", "CommunityCatalog"]


def _fingerprint(community: Community) -> str:
    """Content hash of a community's vectors (dtype- and order-sensitive)."""
    return content_fingerprint(community.vectors)[:16]


@dataclass(frozen=True)
class CachedSimilarity:
    """One cached join outcome."""

    key_b: str
    key_a: str
    method: str
    epsilon: int
    similarity: float
    n_matched: int
    from_cache: bool


class CommunityCatalog:
    """Filesystem-backed store of communities and join results.

    Parameters
    ----------
    root:
        Directory for the archives and the cache file (created on
        demand).
    """

    _CACHE_FILE = "similarity_cache.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._cache_path = self.root / self._CACHE_FILE
        self._cache: dict[str, dict] = {}
        if self._cache_path.exists():
            try:
                loaded = json.loads(self._cache_path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError):
                loaded = None
            if isinstance(loaded, dict):
                self._cache = loaded
            else:
                # A torn or foreign file must not brick the catalog:
                # results are recomputable, so degrade to empty.
                warnings.warn(
                    f"discarding undecodable similarity cache at "
                    f"{self._cache_path}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------
    # community management
    # ------------------------------------------------------------------
    def _archive_path(self, key: str) -> Path:
        # "|" is additionally rejected because it is the cache-key
        # delimiter: a key containing it could forge another pair's
        # cache entry.
        if not key or any(ch in key for ch in "/\\|"):
            raise ValidationError(f"invalid catalog key {key!r}")
        return self.root / f"{key}.npz"

    def register(self, key: str, community: Community) -> None:
        """Store (or replace) a community under ``key``."""
        save_communities(self._archive_path(key), {"community": community})

    def get(self, key: str) -> Community:
        """Load a registered community."""
        path = self._archive_path(key)
        if not path.exists():
            raise ValidationError(f"no community registered under {key!r}")
        return load_communities(path)["community"]

    def keys(self) -> list[str]:
        """All registered community keys, sorted."""
        return sorted(
            path.stem
            for path in self.root.glob("*.npz")
        )

    def remove(self, key: str) -> None:
        """Delete a community, its metadata and its cache entries."""
        path = self._archive_path(key)
        if not path.exists():
            raise ValidationError(f"no community registered under {key!r}")
        path.unlink()
        meta = path.with_name(path.stem + ".meta.json")
        if meta.exists():
            meta.unlink()
        # Entries naming the removed key can never be served again
        # (keys are pipe-free, so splitting the joined key is exact).
        stale = [
            cache_key
            for cache_key in self._cache
            if key in cache_key.split("|")[:2]
        ]
        if stale:
            for cache_key in stale:
                del self._cache[cache_key]
            self._save_cache()

    # ------------------------------------------------------------------
    # cached similarity
    # ------------------------------------------------------------------
    def _cache_key(
        self, key_b: str, key_a: str, method: str, epsilon: int,
        print_b: str, print_a: str,
    ) -> str:
        parts = [key_b, key_a, method, str(epsilon), print_b, print_a]
        for part in parts:
            if "|" in part:
                raise ValidationError(
                    f"cache-key component {part!r} contains the "
                    "reserved delimiter '|'"
                )
        return "|".join(parts)

    def _save_cache(self) -> None:
        """Atomic cache write: a crash leaves old content, never torn."""
        tmp_path = self._cache_path.with_name(self._CACHE_FILE + ".tmp")
        tmp_path.write_text(json.dumps(self._cache, indent=2, sort_keys=True))
        os.replace(tmp_path, self._cache_path)

    def similarity(
        self,
        key_b: str,
        key_a: str,
        *,
        epsilon: int,
        method: str = "ex-minmax",
        **options: object,
    ) -> CachedSimilarity:
        """Join two registered communities, reusing cached results.

        The cache key embeds both content fingerprints, so re-registering
        either community with different vectors transparently invalidates
        the entry.
        """
        community_b = self.get(key_b)
        community_a = self.get(key_a)
        print_b = _fingerprint(community_b)
        print_a = _fingerprint(community_a)
        cache_key = self._cache_key(key_b, key_a, method, epsilon, print_b, print_a)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return CachedSimilarity(
                key_b=key_b,
                key_a=key_a,
                method=method,
                epsilon=epsilon,
                similarity=float(cached["similarity"]),
                n_matched=int(cached["n_matched"]),
                from_cache=True,
            )
        result = get_algorithm(method, epsilon, **options).join(
            community_b, community_a
        )
        self._cache[cache_key] = {
            "similarity": result.similarity,
            "n_matched": result.n_matched,
        }
        self._save_cache()
        return CachedSimilarity(
            key_b=key_b,
            key_a=key_a,
            method=method,
            epsilon=epsilon,
            similarity=result.similarity,
            n_matched=result.n_matched,
            from_cache=False,
        )

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache = {}
        if self._cache_path.exists():
            self._cache_path.unlink()
