"""The Synthetic (uniform) dataset generator of Section 6.1.

The paper fills each 27-dimensional user vector "with values derived
from a uniform generator" with a maximum of 500000 likes per dimension
and joins with ``epsilon = 15000``.  Independent uniform vectors never
land within 15000 of each other in *all* 27 dimensions (the probability
is about ``0.06^27``), yet the paper's Synthetic couples reach 8–37%
similarity — so, exactly as on the real platform, the similarity must
come from groups of near-identical profiles inside the communities.  We
reconstruct that with the archetype-cluster machinery of
:mod:`repro.datasets.clusters`:

* archetypes are uniform in ``[half_width, scale - half_width]``;
* cluster noise is uniform in ``[-half_width, +half_width]`` with
  ``half_width = epsilon / 2``, so two same-cluster users differ by at
  most epsilon per dimension — including exact-boundary cases — and the
  per-dimension condition coincides with the aggregate one on this data
  (which is why the paper's Table 8/10 shows zero accuracy loss for
  Ex-SuperEGO on Synthetic).

Per-category scale factors follow the paper's Table 1 Synthetic totals,
whose spread (about +-10% around uniform) indicates per-category ranges
rather than one global range.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.errors import ConfigurationError
from ..core.types import Community
from .categories import (
    CATEGORIES,
    N_CATEGORIES,
    SYNTHETIC_MAX_LIKES_PER_DIMENSION,
    SYNTHETIC_TOTAL_LIKES,
)
from .clusters import CoupleVectors, build_couple_vectors

__all__ = ["SyntheticGenerator", "SYNTHETIC_EPSILON"]

#: Section 6.1: epsilon = 15000 for the Synthetic dataset.
SYNTHETIC_EPSILON = 15_000


class SyntheticGenerator:
    """Generates uniform user vectors, communities and couples.

    Parameters
    ----------
    seed:
        Root seed; public methods derive independent, reproducible
        streams.
    max_value:
        Upper bound of the uniform counter range (500000 in the paper).
    epsilon:
        The join threshold the couples are engineered for; cluster noise
        is ``uniform[-epsilon/2, +epsilon/2]`` so same-cluster users
        always satisfy the per-dimension condition.
    """

    def __init__(
        self,
        seed: int = 7,
        *,
        n_dims: int = N_CATEGORIES,
        max_value: int = SYNTHETIC_MAX_LIKES_PER_DIMENSION,
        epsilon: int = SYNTHETIC_EPSILON,
    ) -> None:
        if n_dims < 1:
            raise ConfigurationError(f"n_dims must be >= 1, got {n_dims}")
        if max_value < 1:
            raise ConfigurationError(f"max_value must be >= 1, got {max_value}")
        if not 0 <= epsilon <= max_value:
            raise ConfigurationError(
                f"epsilon must be within [0, max_value], got {epsilon}"
            )
        self.seed = int(seed)
        self.n_dims = int(n_dims)
        self.max_value = int(max_value)
        self.epsilon = int(epsilon)
        self.half_width = self.epsilon // 2
        totals = np.array(
            [SYNTHETIC_TOTAL_LIKES[name] for name in CATEGORIES[: self.n_dims]],
            dtype=np.float64,
        )
        # Per-category range scale so the regenerated Table 1 shows the
        # paper's +-10% spread around the uniform mean.
        self._scales = totals / totals.mean()

    def _rng(self, *key: object) -> np.random.Generator:
        digest = zlib.crc32("/".join(map(repr, key)).encode("utf-8"))
        return np.random.default_rng([self.seed, 1_000_003, digest])

    # ------------------------------------------------------------------
    # raw users
    # ------------------------------------------------------------------
    def sample_users(
        self, n: int, *, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` uniform user vectors, shape ``(n, n_dims)``."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if rng is None:
            rng = self._rng("users", n)
        if n == 0:
            return np.zeros((0, self.n_dims), dtype=np.int64)
        highs = np.maximum((self._scales * self.max_value).astype(np.int64), 1)
        return rng.integers(0, highs + 1, size=(n, self.n_dims), dtype=np.int64)

    def sample_population(self, n: int, *, seed_key: object = "population") -> np.ndarray:
        """Platform-wide sample used for the Table 1 statistics."""
        return self.sample_users(n, rng=self._rng(seed_key, n))

    # ------------------------------------------------------------------
    # clusters
    # ------------------------------------------------------------------
    def _archetypes(self, rng: np.random.Generator) -> "callable":
        low = self.half_width
        highs = np.maximum(
            (self._scales * self.max_value).astype(np.int64) - self.half_width,
            low + 1,
        )

        def sample(n: int) -> np.ndarray:
            return rng.integers(low, highs + 1, size=(n, self.n_dims), dtype=np.int64)

        return sample

    def _noise(self, rng: np.random.Generator) -> "callable":
        half_width = self.half_width

        def perturb(rows: np.ndarray) -> np.ndarray:
            if half_width == 0:
                return rows.copy()
            deltas = rng.integers(
                -half_width, half_width + 1, size=rows.shape, dtype=np.int64
            )
            return np.maximum(rows + deltas, 0)

        return perturb

    # ------------------------------------------------------------------
    # communities and couples
    # ------------------------------------------------------------------
    def make_community(
        self,
        name: str,
        category: str,
        size: int,
        *,
        page_id: int = 0,
        seed_key: object = None,
    ) -> Community:
        """A standalone community of uniform users."""
        rng = self._rng("community", seed_key if seed_key is not None else name, size)
        vectors = self.sample_users(size, rng=rng)
        return Community(name=name, vectors=vectors, category=category, page_id=page_id)

    def make_couple_vectors(
        self,
        *,
        size_b: int,
        size_a: int,
        overlap_fraction: float,
        category_b: str = "",
        category_a: str = "",
        seed_key: object = "couple",
    ) -> CoupleVectors:
        """Assemble the raw vector matrices of one ``<B, A>`` couple.

        Categories do not influence uniform profiles; they are accepted
        for interface parity with :class:`~repro.datasets.vk.VKGenerator`
        and folded into the seed so different couples decorrelate.
        """
        rng = self._rng(seed_key, size_b, size_a, category_b, category_a)
        archetypes = self._archetypes(rng)
        return build_couple_vectors(
            rng,
            size_b=size_b,
            size_a=size_a,
            overlap_fraction=overlap_fraction,
            shared_archetypes=archetypes,
            fresh_archetypes_b=archetypes,
            fresh_archetypes_a=archetypes,
            noise=self._noise(rng),
        )
