"""The VK-like dataset generator (substitute for the paper's real data).

The paper samples 7.8M real VK users and builds 27-dimensional vectors
of aggregate likes over the 20 most popular pages of each category
(2010–2019).  That data is proprietary, so this module generates a
calibrated stand-in (see DESIGN.md):

* per-category popularity follows the paper's own Table 1 totals, so
  the regenerated Table 1 reproduces the real ranking and skew;
* per-user activity is heavy-tailed (lognormal), profiles are Dirichlet
  draws around the category weights — real reactions are strongly
  non-uniform, "users tend to like some things much more than others";
* community couples are assembled from archetype clusters
  (:mod:`repro.datasets.clusters`) with per-dimension noise
  ``{-1, 0, +1}`` (``P(+-1)`` small), so same-cluster users sit within
  ``epsilon = 1`` of each other with frequent exact-boundary dimensions
  — the regime in which the paper's VK experiments live.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.errors import ConfigurationError
from ..core.types import Community
from .categories import CATEGORIES, N_CATEGORIES, VK_TOTAL_LIKES, category_index
from .clusters import CoupleVectors, build_couple_vectors

__all__ = ["VKGenerator", "VK_EPSILON"]

#: Section 6.1: epsilon = 1 for the VK dataset.
VK_EPSILON = 1


class VKGenerator:
    """Generates VK-like user vectors, communities and couples.

    Parameters
    ----------
    seed:
        Root seed; every public method derives independent streams so
        repeated calls are reproducible yet decorrelated.
    activity_median / activity_sigma:
        Lognormal per-user total-like counts (heavy tail, as observed on
        the real platform).
    min_activity:
        Floor on per-user totals — keeps near-empty profiles rare so the
        trivial all-zero matches do not dominate the joins.
    concentration:
        Dirichlet concentration of user profiles around the category
        weights; lower values make individual users more idiosyncratic.
    noise_probability:
        Probability that a cluster member deviates by one like (either
        direction) from its archetype in a given dimension.
    """

    def __init__(
        self,
        seed: int = 7,
        *,
        n_dims: int = N_CATEGORIES,
        activity_median: float = 250.0,
        activity_sigma: float = 1.1,
        min_activity: int = 60,
        concentration: float = 2.0,
        noise_probability: float = 0.025,
        focus_strength: float = 0.55,
    ) -> None:
        if n_dims < 1:
            raise ConfigurationError(f"n_dims must be >= 1, got {n_dims}")
        if not 0.0 <= noise_probability <= 0.5:
            raise ConfigurationError(
                f"noise_probability must be within [0, 0.5], got {noise_probability}"
            )
        self.seed = int(seed)
        self.n_dims = int(n_dims)
        self.activity_median = float(activity_median)
        self.activity_sigma = float(activity_sigma)
        self.min_activity = int(min_activity)
        self.concentration = float(concentration)
        self.noise_probability = float(noise_probability)
        self.focus_strength = float(focus_strength)
        weights = np.array(
            [VK_TOTAL_LIKES[name] for name in CATEGORIES[: self.n_dims]],
            dtype=np.float64,
        )
        self._weights = weights / weights.sum()

    # ------------------------------------------------------------------
    # random streams
    # ------------------------------------------------------------------
    def _rng(self, *key: object) -> np.random.Generator:
        # zlib.crc32 is stable across processes (unlike built-in hash()).
        digest = zlib.crc32("/".join(map(repr, key)).encode("utf-8"))
        return np.random.default_rng([self.seed, digest])

    # ------------------------------------------------------------------
    # raw users
    # ------------------------------------------------------------------
    def _profile_alpha(self, focus: tuple[str, ...] = ()) -> np.ndarray:
        """Dirichlet alpha around the category weights, optionally tilted.

        A focused profile mixes the platform-wide weights with equal
        mass on the focus categories — subscribers of a page strongly
        over-consume that page's category.
        """
        base = self._weights.copy()
        if focus:
            tilt = np.zeros_like(base)
            for name in focus:
                tilt[category_index(name)] += 1.0 / len(focus)
            base = (1.0 - self.focus_strength) * base + self.focus_strength * tilt
        return self.concentration * self.n_dims * base + 1e-6

    def sample_users(
        self,
        n: int,
        *,
        focus: tuple[str, ...] = (),
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Draw ``n`` independent user vectors, shape ``(n, n_dims)``."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if rng is None:
            rng = self._rng("users", n, focus)
        if n == 0:
            return np.zeros((0, self.n_dims), dtype=np.int64)
        mu = np.log(self.activity_median)
        activities = rng.lognormal(mean=mu, sigma=self.activity_sigma, size=n)
        activities = np.maximum(activities, self.min_activity).astype(np.int64)
        profiles = rng.dirichlet(self._profile_alpha(focus), size=n)
        return rng.multinomial(activities, profiles).astype(np.int64)

    def sample_population(self, n: int, *, seed_key: object = "population") -> np.ndarray:
        """Platform-wide sample used for the Table 1 statistics."""
        return self.sample_users(n, rng=self._rng(seed_key, n))

    # ------------------------------------------------------------------
    # cluster noise
    # ------------------------------------------------------------------
    def _noise(self, rng: np.random.Generator) -> "callable":
        probability = self.noise_probability

        def perturb(rows: np.ndarray) -> np.ndarray:
            deltas = rng.choice(
                np.array([-1, 0, 1], dtype=np.int64),
                size=rows.shape,
                p=[probability, 1.0 - 2.0 * probability, probability],
            )
            return np.maximum(rows + deltas, 0)

        return perturb

    # ------------------------------------------------------------------
    # communities and couples
    # ------------------------------------------------------------------
    def make_community(
        self,
        name: str,
        category: str,
        size: int,
        *,
        page_id: int = 0,
        seed_key: object = None,
    ) -> Community:
        """A standalone community focused on one category."""
        rng = self._rng("community", seed_key if seed_key is not None else name, size)
        vectors = self.sample_users(size, focus=(category,), rng=rng)
        return Community(name=name, vectors=vectors, category=category, page_id=page_id)

    def make_couple_vectors(
        self,
        *,
        size_b: int,
        size_a: int,
        overlap_fraction: float,
        category_b: str,
        category_a: str,
        seed_key: object = "couple",
    ) -> CoupleVectors:
        """Assemble the raw vector matrices of one ``<B, A>`` couple.

        The shared audience is tilted towards *both* categories (those
        users subscribe to both pages); each side's fresh audience is
        tilted towards its own category.
        """
        rng = self._rng(seed_key, size_b, size_a, category_b, category_a)

        def shared(n: int) -> np.ndarray:
            return self.sample_users(n, focus=(category_b, category_a), rng=rng)

        def fresh_b(n: int) -> np.ndarray:
            return self.sample_users(n, focus=(category_b,), rng=rng)

        def fresh_a(n: int) -> np.ndarray:
            return self.sample_users(n, focus=(category_a,), rng=rng)

        return build_couple_vectors(
            rng,
            size_b=size_b,
            size_a=size_a,
            overlap_fraction=overlap_fraction,
            shared_archetypes=shared,
            fresh_archetypes_b=fresh_b,
            fresh_archetypes_a=fresh_a,
            noise=self._noise(rng),
        )

    def make_population_couple(
        self,
        *,
        population_size: int,
        size_b: int,
        size_a: int,
        category_b: str,
        category_a: str,
        drift: int = 0,
        seed_key: object = "population-couple",
    ) -> tuple[Community, Community]:
        """Couple construction via a shared population (subscription model).

        Unlike :meth:`make_couple_vectors` — which *engineers* the shared
        audience to hit a target similarity, mirroring the paper's
        explored couple selection — this mode derives the overlap
        organically: a population is sampled once, each community
        attracts the users with the highest (noisy) affinity for its
        category, and the couple's similarity *emerges* from the users
        subscribed to both pages.  Co-subscribers appear with identical
        profiles (they are the same person); ``drift`` perturbs the
        ``B``-side copies within ``±drift`` likes per dimension,
        modelling the time gap between the two crawls (keep
        ``drift <= epsilon`` for them to remain matchable).
        """
        if population_size < size_a or size_b > size_a:
            raise ConfigurationError(
                "population must be at least |A| and |B| must not exceed |A|"
            )
        rng = self._rng(
            seed_key, population_size, size_b, size_a, category_b, category_a
        )
        users = self.sample_users(population_size, rng=rng)
        totals = users.sum(axis=1).astype(np.float64)
        totals[totals == 0] = 1.0

        def top_subscribers(category: str, size: int) -> np.ndarray:
            affinity = users[:, category_index(category)] / totals
            noisy = affinity + rng.gumbel(0.0, 0.05, size=population_size)
            return np.sort(np.argsort(-noisy)[:size])

        rows_b = top_subscribers(category_b, size_b)
        rows_a = top_subscribers(category_a, size_a)
        vectors_b = users[rows_b]
        vectors_a = users[rows_a]
        if drift > 0:
            deltas = rng.integers(-drift, drift + 1, size=vectors_b.shape)
            vectors_b = np.maximum(vectors_b + deltas, 0)
        community_b = Community(
            name=f"{category_b} (population)",
            vectors=vectors_b,
            category=category_b,
        )
        community_a = Community(
            name=f"{category_a} (population)",
            vectors=vectors_a,
            category=category_a,
        )
        return community_b, community_a
