"""Like-event stream simulation.

Section 1.1 motivates CSJ with counters that grow as users "constantly
consume" content: every liked post bumps the counters of the post's
categories.  This module simulates that feed: a
:class:`LikeStreamSimulator` emits :class:`LikeEvent` records for the
subscribers of an :class:`~repro.core.incremental.IncrementalCommunity`,
and :func:`replay` folds a stream into the community — the substrate for
studying how community similarity drifts over time
(``examples/streaming_updates.py``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..core.errors import ConfigurationError
from ..core.incremental import IncrementalCommunity
from .categories import CATEGORIES

__all__ = [
    "LikeEvent",
    "LikeStreamSimulator",
    "MutationEvent",
    "MutationStreamSimulator",
    "apply_mutation",
    "replay",
]


@dataclass(frozen=True)
class LikeEvent:
    """One like: ``user_id`` liked a post of category ``dimension``.

    ``tick`` is the logical timestamp (event sequence number).
    """

    tick: int
    user_id: int
    dimension: int

    @property
    def category(self) -> str:
        if 0 <= self.dimension < len(CATEGORIES):
            return CATEGORIES[self.dimension]
        return f"dim_{self.dimension}"


class LikeStreamSimulator:
    """Generates a reproducible like stream for a community.

    Each event picks a subscriber (heavier users like more often,
    weighted by their current total) and a category (weighted by the
    user's own profile plus smoothing) — so the stream *reinforces*
    existing preferences, the feedback loop real platforms exhibit.

    Parameters
    ----------
    community:
        The incremental community whose subscribers generate likes.
    seed:
        Stream seed (independent of the community's content).
    reinforcement:
        Mixing weight in [0, 1] between the user's current profile and a
        uniform exploration distribution when picking the category.
    """

    def __init__(
        self,
        community: IncrementalCommunity,
        *,
        seed: int = 7,
        reinforcement: float = 0.8,
    ) -> None:
        if not 0.0 <= reinforcement <= 1.0:
            raise ConfigurationError(
                f"reinforcement must be within [0, 1], got {reinforcement}"
            )
        self.community = community
        self.reinforcement = float(reinforcement)
        digest = zlib.crc32(community.name.encode("utf-8"))
        self._rng = np.random.default_rng([seed, digest])
        self._tick = 0

    def events(self, n: int) -> Iterator[LikeEvent]:
        """Yield the next ``n`` like events (lazy)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        for _ in range(n):
            yield self._next_event()

    def _next_event(self) -> LikeEvent:
        user_ids = self.community.user_ids()
        if not user_ids:
            raise ConfigurationError(
                f"community {self.community.name!r} has no subscribers"
            )
        totals = np.array(
            [self.community.profile(user_id).sum() for user_id in user_ids],
            dtype=np.float64,
        )
        weights = totals + 1.0
        weights /= weights.sum()
        user_id = int(self._rng.choice(user_ids, p=weights))

        profile = self.community.profile(user_id).astype(np.float64)
        n_dims = profile.shape[0]
        uniform = np.full(n_dims, 1.0 / n_dims)
        if profile.sum() > 0:
            preference = profile / profile.sum()
        else:
            preference = uniform
        mixture = self.reinforcement * preference + (1 - self.reinforcement) * uniform
        dimension = int(self._rng.choice(n_dims, p=mixture))

        self._tick += 1
        return LikeEvent(tick=self._tick, user_id=user_id, dimension=dimension)


#: Mutation kinds a community can absorb between joins.
MUTATION_ACTIONS = ("like", "subscribe", "unsubscribe")


@dataclass(frozen=True)
class MutationEvent:
    """One membership-or-counter mutation on a community.

    ``action`` is one of :data:`MUTATION_ACTIONS`.  For ``"like"``,
    ``user_id``/``dimension``/``count`` describe the counter bump; for
    ``"subscribe"``, ``profile`` is the joining user's initial counter
    tuple (``user_id`` is filled in by :func:`apply_mutation`'s return
    value, not the event); for ``"unsubscribe"``, ``user_id`` names the
    departing user.
    """

    tick: int
    action: str
    user_id: int = -1
    dimension: int = -1
    count: int = 1
    profile: tuple[int, ...] | None = None


class MutationStreamSimulator:
    """Generates a reproducible mixed mutation stream for a community.

    Likes dominate (real platforms see orders of magnitude more likes
    than membership churn); subscriptions and unsubscriptions arrive at
    configurable rates.  Events are generated lazily from the
    community's *current* state, so the caller must apply each event
    (:func:`apply_mutation`) before pulling the next — exactly how the
    differential harness in ``tests/test_delta.py`` replays them.

    Parameters
    ----------
    community:
        The incremental community the stream mutates.
    seed:
        Stream seed (independent of the community's content).
    churn:
        Probability in [0, 0.5] that an event is a membership change
        (split evenly between subscribe and unsubscribe); the rest are
        likes.  Unsubscribes are suppressed while the community is at
        ``min_users`` so joins stay well-defined.
    min_users:
        Floor below which unsubscriptions are converted to likes.
    max_count:
        Like deltas are drawn uniformly from ``[1, max_count]``.
    """

    def __init__(
        self,
        community: IncrementalCommunity,
        *,
        seed: int = 7,
        churn: float = 0.05,
        min_users: int = 2,
        max_count: int = 3,
    ) -> None:
        if not 0.0 <= churn <= 0.5:
            raise ConfigurationError(
                f"churn must be within [0, 0.5], got {churn}"
            )
        if min_users < 1:
            raise ConfigurationError(
                f"min_users must be >= 1, got {min_users}"
            )
        if max_count < 1:
            raise ConfigurationError(
                f"max_count must be >= 1, got {max_count}"
            )
        self.community = community
        self.churn = float(churn)
        self.min_users = int(min_users)
        self.max_count = int(max_count)
        digest = zlib.crc32(community.name.encode("utf-8"))
        self._rng = np.random.default_rng([seed + 1, digest])
        self._tick = 0

    def events(self, n: int) -> Iterator[MutationEvent]:
        """Yield the next ``n`` mutation events (lazy).

        Each event is generated against the community's state at yield
        time; apply it before advancing the iterator.
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        for _ in range(n):
            yield self._next_event()

    def _next_event(self) -> MutationEvent:
        rng = self._rng
        self._tick += 1
        roll = float(rng.random())
        n_users = self.community.n_users
        if roll < self.churn / 2:
            profile = tuple(
                int(v)
                for v in rng.integers(
                    0, 4, size=self.community.n_dims, dtype=np.int64
                )
            )
            return MutationEvent(
                tick=self._tick, action="subscribe", profile=profile
            )
        if roll < self.churn and n_users > self.min_users:
            user_id = int(rng.choice(self.community.user_ids()))
            return MutationEvent(
                tick=self._tick, action="unsubscribe", user_id=user_id
            )
        if n_users == 0:
            raise ConfigurationError(
                f"community {self.community.name!r} has no subscribers"
            )
        user_id = int(rng.choice(self.community.user_ids()))
        dimension = int(rng.integers(0, self.community.n_dims))
        count = int(rng.integers(1, self.max_count + 1))
        return MutationEvent(
            tick=self._tick,
            action="like",
            user_id=user_id,
            dimension=dimension,
            count=count,
        )


def apply_mutation(
    community: IncrementalCommunity, event: MutationEvent
) -> int | None:
    """Fold one mutation into the community.

    Returns the new user id for ``subscribe`` events, ``None``
    otherwise.  Like events for users that departed mid-stream are
    dropped, matching :func:`replay`.
    """
    if event.action == "like":
        if event.user_id not in community:
            return None
        community.record_like(event.user_id, event.dimension, event.count)
        return None
    if event.action == "subscribe":
        return community.subscribe(event.profile)
    if event.action == "unsubscribe":
        if event.user_id in community:
            community.unsubscribe(event.user_id)
        return None
    raise ConfigurationError(
        f"unknown mutation action {event.action!r}; "
        f"expected one of {MUTATION_ACTIONS}"
    )


def replay(
    community: IncrementalCommunity, events: Iterable[LikeEvent]
) -> int:
    """Fold a like stream into the community; returns events applied.

    Events for users that unsubscribed mid-stream are skipped (the
    platform drops likes of departed accounts).
    """
    applied = 0
    for event in events:
        if event.user_id not in community:
            continue
        community.record_like(event.user_id, event.dimension)
        applied += 1
    return applied
