"""Like-event stream simulation.

Section 1.1 motivates CSJ with counters that grow as users "constantly
consume" content: every liked post bumps the counters of the post's
categories.  This module simulates that feed: a
:class:`LikeStreamSimulator` emits :class:`LikeEvent` records for the
subscribers of an :class:`~repro.core.incremental.IncrementalCommunity`,
and :func:`replay` folds a stream into the community — the substrate for
studying how community similarity drifts over time
(``examples/streaming_updates.py``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..core.errors import ConfigurationError
from ..core.incremental import IncrementalCommunity
from .categories import CATEGORIES

__all__ = ["LikeEvent", "LikeStreamSimulator", "replay"]


@dataclass(frozen=True)
class LikeEvent:
    """One like: ``user_id`` liked a post of category ``dimension``.

    ``tick`` is the logical timestamp (event sequence number).
    """

    tick: int
    user_id: int
    dimension: int

    @property
    def category(self) -> str:
        if 0 <= self.dimension < len(CATEGORIES):
            return CATEGORIES[self.dimension]
        return f"dim_{self.dimension}"


class LikeStreamSimulator:
    """Generates a reproducible like stream for a community.

    Each event picks a subscriber (heavier users like more often,
    weighted by their current total) and a category (weighted by the
    user's own profile plus smoothing) — so the stream *reinforces*
    existing preferences, the feedback loop real platforms exhibit.

    Parameters
    ----------
    community:
        The incremental community whose subscribers generate likes.
    seed:
        Stream seed (independent of the community's content).
    reinforcement:
        Mixing weight in [0, 1] between the user's current profile and a
        uniform exploration distribution when picking the category.
    """

    def __init__(
        self,
        community: IncrementalCommunity,
        *,
        seed: int = 7,
        reinforcement: float = 0.8,
    ) -> None:
        if not 0.0 <= reinforcement <= 1.0:
            raise ConfigurationError(
                f"reinforcement must be within [0, 1], got {reinforcement}"
            )
        self.community = community
        self.reinforcement = float(reinforcement)
        digest = zlib.crc32(community.name.encode("utf-8"))
        self._rng = np.random.default_rng([seed, digest])
        self._tick = 0

    def events(self, n: int) -> Iterator[LikeEvent]:
        """Yield the next ``n`` like events (lazy)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        for _ in range(n):
            yield self._next_event()

    def _next_event(self) -> LikeEvent:
        user_ids = self.community.user_ids()
        if not user_ids:
            raise ConfigurationError(
                f"community {self.community.name!r} has no subscribers"
            )
        totals = np.array(
            [self.community.profile(user_id).sum() for user_id in user_ids],
            dtype=np.float64,
        )
        weights = totals + 1.0
        weights /= weights.sum()
        user_id = int(self._rng.choice(user_ids, p=weights))

        profile = self.community.profile(user_id).astype(np.float64)
        n_dims = profile.shape[0]
        uniform = np.full(n_dims, 1.0 / n_dims)
        if profile.sum() > 0:
            preference = profile / profile.sum()
        else:
            preference = uniform
        mixture = self.reinforcement * preference + (1 - self.reinforcement) * uniform
        dimension = int(self._rng.choice(n_dims, p=mixture))

        self._tick += 1
        return LikeEvent(tick=self._tick, user_id=user_id, dimension=dimension)


def replay(
    community: IncrementalCommunity, events: Iterable[LikeEvent]
) -> int:
    """Fold a like stream into the community; returns events applied.

    Events for users that unsubscribed mid-stream are skipped (the
    platform drops likes of departed accounts).
    """
    applied = 0
    for event in events:
        if event.user_id not in community:
            continue
        community.record_like(event.user_id, event.dimension)
        applied += 1
    return applied
