"""The paper's 20 community couples (Tables 2–10) and Table 11 sizes.

Every couple carries the metadata of Table 2 (names and VK page ids),
the categories and sizes of Tables 3/5, and the target exact
similarities reported in Tables 4/6 (VK) and 8/10 (Synthetic).  The
reproduction generators use the target similarity as the engineered
shared-audience fraction, so the measured similarities land in the same
bands as the paper (>= 15% for couples 1–10, >= 30% for couples 11–20,
with the cID 10 Synthetic edge case below 15%).

Paper community sizes are in the 55k–330k range; :func:`scale_size`
shrinks them uniformly (default 1/64) so a full table regenerates in
minutes on a laptop while preserving every size ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.types import Community
from .synthetic import SyntheticGenerator
from .vk import VKGenerator

__all__ = [
    "CoupleSpec",
    "PAPER_COUPLES",
    "DIFFERENT_CATEGORY_COUPLES",
    "SAME_CATEGORY_COUPLES",
    "SCALABILITY_SIZES",
    "DEFAULT_SCALE",
    "scale_size",
    "build_couple",
    "couples_for_table",
]

#: Default size scale used by the benchmarks (1/64 of the paper).
DEFAULT_SCALE = 1.0 / 64.0


@dataclass(frozen=True)
class CoupleSpec:
    """One ``<B, A>`` couple of the paper's case studies.

    ``target_similarity_vk`` / ``target_similarity_synthetic`` are the
    exact-method similarities of Tables 4/6 and 8/10 as fractions; they
    parameterise the generators' engineered overlap.
    """

    c_id: int
    name_b: str
    name_a: str
    page_id_b: int
    page_id_a: int
    category_b: str
    category_a: str
    size_b: int
    size_a: int
    target_similarity_vk: float
    target_similarity_synthetic: float

    @property
    def same_category(self) -> bool:
        return self.category_b == self.category_a

    @property
    def label(self) -> str:
        return f"{self.category_b} | {self.category_a}"


PAPER_COUPLES: tuple[CoupleSpec, ...] = (
    # -- different categories (Tables 3/4/7/8, similarity >= 15% on VK) --
    CoupleSpec(1, "Quick Recipes", "Salads | Best Recipes", 165062392, 94216909,
               "Restaurants", "Food_recipes", 109_176, 116_016, 0.2081, 0.1774),
    CoupleSpec(2, "Happiness", "Sportshacker", 23337480, 128350290,
               "Hobbies", "Sport", 156_213, 230_017, 0.1546, 0.1600),
    CoupleSpec(3, "Moment of history", "This is a fact | Science and Facts",
               143826157, 45688121,
               "Culture_art", "Education", 134_961, 138_199, 0.2495, 0.2415),
    CoupleSpec(4, "Health secrets. What is said by doctors?", "Fashionable girl",
               55122354, 36085261,
               "Medicine", "Beauty_health", 120_783, 185_393, 0.1642, 0.1657),
    CoupleSpec(5, "First channel", "Nice line", 25380626, 26669118,
               "Media", "Entertainment", 197_415, 330_944, 0.1752, 0.1549),
    CoupleSpec(6, "About women's", "Successful girl", 33382046, 24036559,
               "Social_public", "Relationship_family", 118_993, 131_297,
               0.2438, 0.2456),
    CoupleSpec(7, "The best of Saint Petersburg", "Vandrouki | Travel almost free",
               31516466, 63731512,
               "Cities_countries", "Tourism_leisure", 140_114, 257_419,
               0.2222, 0.2213),
    CoupleSpec(8, "Housing problem", "Business quote book", 42541008, 28556858,
               "Home_renovation", "Products_stores", 167_585, 182_815,
               0.1553, 0.1557),
    CoupleSpec(9, "Jah Khalib", "My audios", 26211015, 105999460,
               "Celebrity", "Music", 125_248, 189_937, 0.1752, 0.1590),
    CoupleSpec(10, "Job in Moscow", "VK Pay", 31154183, 166850908,
                "Job_search", "Finance_insurance", 55_918, 109_622,
                0.2156, 0.0785),
    # -- same categories (Tables 5/6/9/10, similarity >= 30% on VK) -----
    CoupleSpec(11, "Cooking: delicious recipes", "Cooking at home: delicious and easy",
                42092461, 40020627,
                "Food_recipes", "Food_recipes", 180_158, 196_135, 0.3152, 0.3063),
    CoupleSpec(12, "Simple recipes", "Best Chef's Recipes", 83935640, 18464856,
                "Food_recipes", "Food_recipes", 180_351, 272_320, 0.3210, 0.3057),
    CoupleSpec(13, "FC Barcelona", "Football Europe", 22746750, 23693281,
                "Sport", "Sport", 179_412, 234_508, 0.3954, 0.3373),
    CoupleSpec(14, "World Russian Premier League", "Football Europe",
                51812607, 23693281,
                "Sport", "Sport", 184_663, 234_508, 0.3710, 0.3085),
    CoupleSpec(15, "World of beauty", "Fashionable girl", 34981365, 36085261,
                "Beauty_health", "Beauty_health", 163_176, 185_393,
                0.3693, 0.3664),
    CoupleSpec(16, "Beauty | Fashion | Show Business", "Fashionable girl",
                32922940, 36085261,
                "Beauty_health", "Beauty_health", 178_138, 185_393,
                0.3057, 0.3041),
    CoupleSpec(17, "More than just lines", "Just love", 32651025, 28293246,
                "Relationship_family", "Relationship_family", 165_509, 190_027,
                0.3535, 0.3531),
    CoupleSpec(18, "Modern mom", "MAMA", 55074079, 20249656,
                "Relationship_family", "Relationship_family", 147_140, 175_929,
                0.3226, 0.3172),
    CoupleSpec(19, "Business quote book", "Business Strategy | Success in life",
                28556858, 30559917,
                "Products_stores", "Products_stores", 182_815, 201_038,
                0.3188, 0.3148),
    CoupleSpec(20, "Smart Money | Business Magazine",
                "Business Strategy | Success in life", 34483558, 30559917,
                "Products_stores", "Products_stores", 161_991, 201_038,
                0.3350, 0.3327),
)

DIFFERENT_CATEGORY_COUPLES: tuple[CoupleSpec, ...] = PAPER_COUPLES[:10]
SAME_CATEGORY_COUPLES: tuple[CoupleSpec, ...] = PAPER_COUPLES[10:]

#: Table 11: average couple sizes per category (size_1 .. size_4).
SCALABILITY_SIZES: dict[str, tuple[int, int, int, int]] = {
    "Food_recipes": (124_453, 200_966, 332_977, 417_492),
    "Restaurants": (27_733, 50_802, 71_114, 111_713),
    "Hobbies": (212_071, 326_951, 432_853, 538_492),
    "Sport": (107_770, 156_762, 199_233, 248_901),
    "Education": (128_905, 200_466, 317_041, 414_692),
    "Culture_art": (54_381, 106_885, 157_236, 228_763),
    "Beauty_health": (149_171, 211_701, 256_387, 318_470),
    "Medicine": (21_290, 41_438, 62_333, 84_311),
    "Entertainment": (445_364, 651_230, 841_407, 1_110_846),
    "Media": (117_231, 220_804, 335_845, 406_973),
    "Relationship_family": (121_910, 169_862, 212_582, 283_532),
    "Social_public": (80_552, 135_060, 182_865, 269_604),
    "Tourism_leisure": (104_403, 147_984, 204_376, 248_205),
    "Cities_countries": (53_271, 94_130, 133_765, 163_201),
    "Products_stores": (112_425, 157_593, 219_171, 265_760),
    "Home_renovation": (101_381, 149_484, 188_986, 274_326),
    "Celebrity": (105_339, 160_277, 206_374, 255_239),
    "Music": (110_695, 158_516, 201_757, 251_919),
    "Finance_insurance": (24_620, 49_505, 70_196, 108_028),
    "Job_search": (16_728, 30_787, 45_597, 62_418),
}


def scale_size(paper_size: int, scale: float, *, floor: int = 40) -> int:
    """Shrink a paper community size by ``scale`` with a sanity floor."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return max(floor, int(round(paper_size * scale)))


def build_couple(
    spec: CoupleSpec,
    generator: VKGenerator | SyntheticGenerator,
    *,
    scale: float = DEFAULT_SCALE,
) -> tuple[Community, Community]:
    """Materialise one couple as two :class:`Community` objects.

    The generator type selects the dataset (and hence which target
    similarity column parameterises the engineered overlap).
    """
    size_b = scale_size(spec.size_b, scale)
    size_a = scale_size(spec.size_a, scale)
    if size_b > size_a:
        size_a = size_b
    if isinstance(generator, SyntheticGenerator):
        overlap = spec.target_similarity_synthetic
    else:
        overlap = spec.target_similarity_vk
    built = generator.make_couple_vectors(
        size_b=size_b,
        size_a=size_a,
        overlap_fraction=overlap,
        category_b=spec.category_b,
        category_a=spec.category_a,
        seed_key=("cID", spec.c_id),
    )
    community_b = Community(
        name=spec.name_b,
        vectors=built.vectors_b,
        category=spec.category_b,
        page_id=spec.page_id_b,
    )
    community_a = Community(
        name=spec.name_a,
        vectors=built.vectors_a,
        category=spec.category_a,
        page_id=spec.page_id_a,
    )
    return community_b, community_a


def couples_for_table(table: int) -> tuple[CoupleSpec, ...]:
    """Couple set of an evaluation table (3–10)."""
    if table in (3, 4, 7, 8):
        return DIFFERENT_CATEGORY_COUPLES
    if table in (5, 6, 9, 10):
        return SAME_CATEGORY_COUPLES
    raise ConfigurationError(
        f"tables 3-10 map to couple sets; got table {table}"
    )
