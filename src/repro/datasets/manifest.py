"""Dataset manifests: verifiable fingerprints of generated data.

Reproducibility demands more than fixed seeds — it needs a way to
*prove* that two environments generated the same bytes.  A manifest
records, for every couple of a case-study suite, the generation
parameters and a content hash of both community matrices.
:func:`verify_manifest` regenerates the data and compares hashes, so a
CI job (or a reviewer on different hardware) can certify that the
datasets behind reported numbers are identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .._version import __version__
from ..core.errors import ValidationError
# The manifest digest recipe is shared with the batch engine's
# content-addressed join cache: one fingerprint certifies both.
from ..engine.fingerprint import matrix_fingerprint as _matrix_digest
from .couples import DEFAULT_SCALE, PAPER_COUPLES, build_couple
from .synthetic import SyntheticGenerator
from .vk import VKGenerator

__all__ = ["CoupleFingerprint", "build_manifest", "verify_manifest", "save_manifest", "load_manifest"]

_FORMAT = "repro.dataset-manifest.v1"


@dataclass(frozen=True)
class CoupleFingerprint:
    """Hashes and sizes of one generated couple."""

    c_id: int
    size_b: int
    size_a: int
    digest_b: str
    digest_a: str


def build_manifest(
    *,
    dataset: str = "vk",
    seed: int = 7,
    scale: float = DEFAULT_SCALE,
    couples: tuple[int, ...] | None = None,
) -> dict:
    """Generate the couple suite and fingerprint every matrix."""
    if dataset == "vk":
        generator = VKGenerator(seed=seed)
    elif dataset == "synthetic":
        generator = SyntheticGenerator(seed=seed)
    else:
        raise ValidationError(f"unknown dataset {dataset!r}")
    selected = couples if couples is not None else tuple(
        spec.c_id for spec in PAPER_COUPLES
    )
    by_id = {spec.c_id: spec for spec in PAPER_COUPLES}
    fingerprints = []
    for c_id in selected:
        if c_id not in by_id:
            raise ValidationError(f"unknown couple cID {c_id}")
        community_b, community_a = build_couple(by_id[c_id], generator, scale=scale)
        fingerprints.append(
            {
                "c_id": c_id,
                "size_b": community_b.n_users,
                "size_a": community_a.n_users,
                "digest_b": _matrix_digest(community_b.vectors),
                "digest_a": _matrix_digest(community_a.vectors),
            }
        )
    return {
        "format": _FORMAT,
        "version": __version__,
        "dataset": dataset,
        "seed": seed,
        "scale": scale,
        "couples": fingerprints,
    }


def verify_manifest(manifest: dict) -> list[str]:
    """Regenerate the data and compare; returns mismatch descriptions.

    An empty list means the current code and parameters reproduce every
    fingerprinted matrix byte-for-byte.
    """
    if manifest.get("format") != _FORMAT:
        raise ValidationError(
            f"not a dataset manifest (format={manifest.get('format')!r})"
        )
    fresh = build_manifest(
        dataset=str(manifest["dataset"]),
        seed=int(manifest["seed"]),
        scale=float(manifest["scale"]),
        couples=tuple(entry["c_id"] for entry in manifest["couples"]),
    )
    mismatches = []
    for expected, regenerated in zip(manifest["couples"], fresh["couples"]):
        for key in ("size_b", "size_a", "digest_b", "digest_a"):
            if expected[key] != regenerated[key]:
                mismatches.append(
                    f"cID {expected['c_id']}: {key} differs "
                    f"({expected[key]} != {regenerated[key]})"
                )
    return mismatches


def save_manifest(path: str | Path, manifest: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2))
    return path


def load_manifest(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such manifest: {path}")
    return json.loads(path.read_text())
