"""Application layer: the recommendation scenarios of Section 1.2."""

from .topk import PairScore, top_k_pairs, top_k_pairs_reference
from .recommendation import (
    BroadcastPlanner,
    BroadcastSlot,
    ContentFeatureSuggestion,
    FriendRecommender,
    FriendSuggestion,
    PartnerRecommender,
    PartnerScore,
    suggest_content_features,
)

__all__ = [
    "PairScore",
    "top_k_pairs",
    "top_k_pairs_reference",
    "FriendRecommender",
    "FriendSuggestion",
    "PartnerRecommender",
    "PartnerScore",
    "BroadcastPlanner",
    "BroadcastSlot",
    "ContentFeatureSuggestion",
    "suggest_content_features",
]
