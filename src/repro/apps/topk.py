"""Top-k most-similar community pairs.

The paper's broadcast scenario (Section 1.2, ii.b) has the platform
apply CSJ "to a variety of community pairs" and act on the results in
priority order; Section 3 prescribes the economical execution: a fast
approximate method screens all pairs, then the exact method refines
only the survivors.  :func:`top_k_pairs` packages that pipeline over an
arbitrary community collection.

Both phases execute on the :class:`~repro.engine.BatchEngine`: the
all-pairs screen and the refinement pool become batches of
:class:`~repro.engine.PairJob` entries, which gives this operator the
envelope pre-screen, the join-result cache and multi-process execution
(``n_jobs``) for free.  ``top_k_pairs_reference`` preserves the
pre-engine serial loop as a differential-testing oracle and as the
baseline the engine benchmarks measure against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path

from ..algorithms import get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult
from ..engine import (
    BatchEngine,
    CheckpointLog,
    FaultPolicy,
    JoinResultCache,
    PairJob,
    canonical_options,
)
from ..obs import JoinTelemetry, MetricsRegistry
from ..sketch import SketchPrefilter

__all__ = ["PairScore", "top_k_pairs", "top_k_pairs_reference"]


@dataclass(frozen=True)
class PairScore:
    """One scored community pair."""

    name_b: str
    name_a: str
    similarity: float
    result: CSJResult

    @property
    def label(self) -> str:
        return f"<{self.name_b}, {self.name_a}>"


def _joinable(first: Community, second: Community) -> bool:
    small, large = sorted((first, second), key=len)
    return len(small) * 2 >= len(large)


def _validate(communities: list[Community], k: int, screen_margin: float) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0.0 < screen_margin <= 1.0:
        raise ConfigurationError(
            f"screen_margin must be within (0, 1], got {screen_margin}"
        )
    names = [community.name for community in communities]
    if len(set(names)) != len(names):
        raise ConfigurationError("community names must be unique for ranking")


def _pool_size(n_screened: int, k: int, screen_margin: float) -> int:
    return min(n_screened, max(k, int(round(k / screen_margin))))


def top_k_pairs(
    communities: list[Community],
    *,
    epsilon: int,
    k: int,
    screen_method: str = "ap-minmax",
    refine_method: str = "ex-minmax",
    screen_margin: float = 0.8,
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    envelope_screen: bool = True,
    metrics: MetricsRegistry | None = None,
    telemetry: list[JoinTelemetry] | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
    **options: object,
) -> list[PairScore]:
    """The k most similar pairs among ``communities``.

    Every unordered pair satisfying the CSJ size-ratio rule is screened
    with the approximate method; the best ``ceil(k / screen_margin)``
    survivors are refined exactly, and the top ``k`` refined pairs are
    returned sorted by descending similarity (name tie-break).

    ``screen_margin`` < 1 widens the refinement pool to protect against
    approximate underestimation promoting the wrong pairs.

    ``n_jobs`` > 1 distributes the joins across worker processes;
    ``cache`` (an :class:`~repro.engine.JoinResultCache`, or an int
    capacity) memoises joins across calls; ``envelope_screen`` skips
    pairs whose min/max envelopes prove a zero similarity.  All three
    leave the returned ranking identical to the serial computation.
    With ``metrics`` attached, per-join records for both phases are
    appended to ``telemetry`` (when given).  ``fault_policy`` supervises
    both phases (timeouts / retries / quarantine) and ``checkpoint``
    makes completed joins durable so a killed ranking resumes without
    recomputing finished pairs.

    ``prefilter`` (a :class:`~repro.sketch.SketchPrefilter`) gates both
    phases through the sketch tier's candidate generator; with a lossy
    tier (``target_recall < 1``) the measured recall is folded into
    every surviving result's ``p``, so the ranking's similarities carry
    the candidate-generation error honestly (see ``docs/approx.md``).
    """
    _validate(communities, k, screen_margin)
    job_options = canonical_options(options)
    joinable = [
        (i, j)
        for i, j in itertools.combinations(range(len(communities)), 2)
        if _joinable(communities[i], communities[j])
    ]
    with BatchEngine(
        communities,
        n_jobs=n_jobs,
        screen=envelope_screen,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as engine:
        screen_jobs = [
            PairJob(i, j, screen_method, epsilon, job_options) for i, j in joinable
        ]
        screened: list[tuple[float, int, int]] = [
            (outcome.result.similarity, job.first, job.second)
            for job, outcome in zip(screen_jobs, engine.run(screen_jobs))
        ]
        screened.sort(
            key=lambda entry: (
                -entry[0],
                communities[entry[1]].name,
                communities[entry[2]].name,
            )
        )
        pool = screened[: _pool_size(len(screened), k, screen_margin)]
        refine_jobs = [
            PairJob(first, second, refine_method, epsilon, job_options)
            for _, first, second in pool
        ]
        refined: list[PairScore] = []
        for job, outcome in zip(refine_jobs, engine.run(refine_jobs)):
            result = outcome.result
            oriented = (
                (job.second, job.first) if result.swapped else (job.first, job.second)
            )
            refined.append(
                PairScore(
                    name_b=communities[oriented[0]].name,
                    name_a=communities[oriented[1]].name,
                    similarity=result.similarity,
                    result=result,
                )
            )
        if telemetry is not None:
            telemetry.extend(engine.telemetry)
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]


def top_k_pairs_reference(
    communities: list[Community],
    *,
    epsilon: int,
    k: int,
    screen_method: str = "ap-minmax",
    refine_method: str = "ex-minmax",
    screen_margin: float = 0.8,
    **options: object,
) -> list[PairScore]:
    """Pre-engine serial implementation, kept as an oracle and baseline.

    Joins every pair in-process with no envelope screen and no cache
    (algorithm instances are still built once per phase).  The engine
    tests assert :func:`top_k_pairs` matches this ranking exactly, and
    ``benchmarks/bench_engine_batch.py`` measures the engine against it.
    """
    _validate(communities, k, screen_margin)
    screener = get_algorithm(screen_method, epsilon, **options)
    screened: list[tuple[float, Community, Community]] = []
    for first, second in itertools.combinations(communities, 2):
        if not _joinable(first, second):
            continue
        result = screener.join(first, second)
        screened.append((result.similarity, first, second))
    screened.sort(key=lambda entry: (-entry[0], entry[1].name, entry[2].name))

    refiner = get_algorithm(refine_method, epsilon, **options)
    refined: list[PairScore] = []
    for _, first, second in screened[: _pool_size(len(screened), k, screen_margin)]:
        result = refiner.join(first, second)
        oriented = (first, second) if not result.swapped else (second, first)
        refined.append(
            PairScore(
                name_b=oriented[0].name,
                name_a=oriented[1].name,
                similarity=result.similarity,
                result=result,
            )
        )
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]
