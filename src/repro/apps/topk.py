"""Top-k most-similar community pairs.

The paper's broadcast scenario (Section 1.2, ii.b) has the platform
apply CSJ "to a variety of community pairs" and act on the results in
priority order; Section 3 prescribes the economical execution: a fast
approximate method screens all pairs, then the exact method refines
only the survivors.  :func:`top_k_pairs` packages that pipeline over an
arbitrary community collection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..algorithms import get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult

__all__ = ["PairScore", "top_k_pairs"]


@dataclass(frozen=True)
class PairScore:
    """One scored community pair."""

    name_b: str
    name_a: str
    similarity: float
    result: CSJResult

    @property
    def label(self) -> str:
        return f"<{self.name_b}, {self.name_a}>"


def _joinable(first: Community, second: Community) -> bool:
    small, large = sorted((first, second), key=len)
    return len(small) * 2 >= len(large)


def top_k_pairs(
    communities: list[Community],
    *,
    epsilon: int,
    k: int,
    screen_method: str = "ap-minmax",
    refine_method: str = "ex-minmax",
    screen_margin: float = 0.8,
    **options: object,
) -> list[PairScore]:
    """The k most similar pairs among ``communities``.

    Every unordered pair satisfying the CSJ size-ratio rule is screened
    with the approximate method; the best ``ceil(k / screen_margin)``
    survivors are refined exactly, and the top ``k`` refined pairs are
    returned sorted by descending similarity (name tie-break).

    ``screen_margin`` < 1 widens the refinement pool to protect against
    approximate underestimation promoting the wrong pairs.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0.0 < screen_margin <= 1.0:
        raise ConfigurationError(
            f"screen_margin must be within (0, 1], got {screen_margin}"
        )
    names = [community.name for community in communities]
    if len(set(names)) != len(names):
        raise ConfigurationError("community names must be unique for ranking")

    screened: list[tuple[float, Community, Community]] = []
    for first, second in itertools.combinations(communities, 2):
        if not _joinable(first, second):
            continue
        screener = get_algorithm(screen_method, epsilon, **options)
        result = screener.join(first, second)
        screened.append((result.similarity, first, second))
    screened.sort(key=lambda entry: (-entry[0], entry[1].name, entry[2].name))

    pool_size = min(len(screened), max(k, int(round(k / screen_margin))))
    refined: list[PairScore] = []
    for _, first, second in screened[:pool_size]:
        refiner = get_algorithm(refine_method, epsilon, **options)
        result = refiner.join(first, second)
        oriented = (first, second) if not result.swapped else (second, first)
        refined.append(
            PairScore(
                name_b=oriented[0].name,
                name_a=oriented[1].name,
                similarity=result.similarity,
                result=result,
            )
        )
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]
