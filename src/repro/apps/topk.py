"""Top-k most-similar community pairs.

The paper's broadcast scenario (Section 1.2, ii.b) has the platform
apply CSJ "to a variety of community pairs" and act on the results in
priority order; Section 3 prescribes the economical execution: a fast
approximate method screens all pairs, then the exact method refines
only the survivors.  :func:`top_k_pairs` packages that pipeline over an
arbitrary community collection.

Both phases execute on the :class:`~repro.engine.BatchEngine`: the
all-pairs screen and the refinement pool become batches of
:class:`~repro.engine.PairJob` entries, which gives this operator the
envelope pre-screen, the join-result cache and multi-process execution
(``n_jobs``) for free.  ``top_k_pairs_reference`` preserves the
pre-engine serial loop as a differential-testing oracle and as the
baseline the engine benchmarks measure against.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from pathlib import Path

from ..algorithms import ALGORITHMS, get_algorithm
from ..catalog import CatalogRecord, PersistentCatalog
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult, EventCounts
from ..engine import (
    BatchEngine,
    CheckpointLog,
    FaultPolicy,
    JoinResultCache,
    PairJob,
    canonical_options,
)
from ..engine.batch import SCREEN_ENGINE
from ..obs import JoinTelemetry, MetricsRegistry
from ..sketch import SketchPrefilter

__all__ = ["PairScore", "top_k_pairs", "top_k_pairs_reference"]


@dataclass(frozen=True)
class PairScore:
    """One scored community pair."""

    name_b: str
    name_a: str
    similarity: float
    result: CSJResult

    @property
    def label(self) -> str:
        return f"<{self.name_b}, {self.name_a}>"


def _ratio_ok(n_first: int, n_second: int) -> bool:
    small, large = sorted((n_first, n_second))
    return small * 2 >= large


def _joinable(first: Community, second: Community) -> bool:
    return _ratio_ok(len(first), len(second))


def _validate(communities: list[Community], k: int, screen_margin: float) -> None:
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 0.0 < screen_margin <= 1.0:
        raise ConfigurationError(
            f"screen_margin must be within (0, 1], got {screen_margin}"
        )
    names = [community.name for community in communities]
    if len(set(names)) != len(names):
        raise ConfigurationError("community names must be unique for ranking")


def _pool_size(n_screened: int, k: int, screen_margin: float) -> int:
    return min(n_screened, max(k, int(round(k / screen_margin))))


def top_k_pairs(
    communities: "list[Community] | PersistentCatalog",
    *,
    epsilon: int,
    k: int,
    screen_method: str = "ap-minmax",
    refine_method: str = "ex-minmax",
    screen_margin: float = 0.8,
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    envelope_screen: bool = True,
    metrics: MetricsRegistry | None = None,
    telemetry: list[JoinTelemetry] | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
    keys: list[str] | None = None,
    **options: object,
) -> list[PairScore]:
    """The k most similar pairs among ``communities``.

    Every unordered pair satisfying the CSJ size-ratio rule is screened
    with the approximate method; the best ``ceil(k / screen_margin)``
    survivors are refined exactly, and the top ``k`` refined pairs are
    returned sorted by descending similarity (name tie-break).

    ``screen_margin`` < 1 widens the refinement pool to protect against
    approximate underestimation promoting the wrong pairs.

    ``n_jobs`` > 1 distributes the joins across worker processes;
    ``cache`` (an :class:`~repro.engine.JoinResultCache`, or an int
    capacity) memoises joins across calls; ``envelope_screen`` skips
    pairs whose min/max envelopes prove a zero similarity.  All three
    leave the returned ranking identical to the serial computation.
    With ``metrics`` attached, per-join records for both phases are
    appended to ``telemetry`` (when given).  ``fault_policy`` supervises
    both phases (timeouts / retries / quarantine) and ``checkpoint``
    makes completed joins durable so a killed ranking resumes without
    recomputing finished pairs.

    ``prefilter`` (a :class:`~repro.sketch.SketchPrefilter`) gates both
    phases through the sketch tier's candidate generator; with a lossy
    tier (``target_recall < 1``) the measured recall is folded into
    every surviving result's ``p``, so the ranking's similarities carry
    the candidate-generation error honestly (see ``docs/approx.md``).

    ``communities`` may also be a
    :class:`~repro.catalog.PersistentCatalog` (optionally restricted to
    ``keys``): the candidate screen then runs as the catalog's indexed
    window query and only the surviving communities' vectors are loaded
    from disk — pairs the envelopes rule out are ranked at similarity 0
    from metadata alone, so a sweep over thousands of on-disk
    communities touches O(survivors) vector rows.  Communities are
    ranked under their catalog keys (keys are unique; stored display
    names may not be).  The returned ranking is identical to loading
    everything and calling this function with the in-memory list.
    """
    if isinstance(communities, PersistentCatalog):
        return _top_k_pairs_catalog(
            communities,
            epsilon=epsilon,
            k=k,
            screen_method=screen_method,
            refine_method=refine_method,
            screen_margin=screen_margin,
            n_jobs=n_jobs,
            cache=cache,
            envelope_screen=envelope_screen,
            metrics=metrics,
            telemetry=telemetry,
            fault_policy=fault_policy,
            checkpoint=checkpoint,
            prefilter=prefilter,
            keys=keys,
            **options,
        )
    if keys is not None:
        raise ConfigurationError(
            "keys= only applies when ranking from a PersistentCatalog"
        )
    _validate(communities, k, screen_margin)
    job_options = canonical_options(options)
    joinable = [
        (i, j)
        for i, j in itertools.combinations(range(len(communities)), 2)
        if _joinable(communities[i], communities[j])
    ]
    with BatchEngine(
        communities,
        n_jobs=n_jobs,
        screen=envelope_screen,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as engine:
        screen_jobs = [
            PairJob(i, j, screen_method, epsilon, job_options) for i, j in joinable
        ]
        screened: list[tuple[float, int, int]] = [
            (outcome.result.similarity, job.first, job.second)
            for job, outcome in zip(screen_jobs, engine.run(screen_jobs))
        ]
        screened.sort(
            key=lambda entry: (
                -entry[0],
                communities[entry[1]].name,
                communities[entry[2]].name,
            )
        )
        pool = screened[: _pool_size(len(screened), k, screen_margin)]
        refine_jobs = [
            PairJob(first, second, refine_method, epsilon, job_options)
            for _, first, second in pool
        ]
        refined: list[PairScore] = []
        for job, outcome in zip(refine_jobs, engine.run(refine_jobs)):
            result = outcome.result
            oriented = (
                (job.second, job.first) if result.swapped else (job.first, job.second)
            )
            refined.append(
                PairScore(
                    name_b=communities[oriented[0]].name,
                    name_a=communities[oriented[1]].name,
                    similarity=result.similarity,
                    result=result,
                )
            )
        if telemetry is not None:
            telemetry.extend(engine.telemetry)
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]


def _zero_score(
    first: CatalogRecord,
    second: CatalogRecord,
    *,
    method: str,
    epsilon: int,
) -> PairScore:
    """A similarity-0 score synthesised from two metadata records.

    Mirrors the engine's screened-result convention exactly (method
    name, exactness, orientation, the ``envelope-screen`` engine label)
    so rankings mixing computed and screened pairs sort identically to
    the in-memory path.
    """
    algorithm_cls = ALGORITHMS[method.strip().lower()]
    swapped = first.n_users > second.n_users
    community_b, community_a = (second, first) if swapped else (first, second)
    result = CSJResult(
        method=algorithm_cls.name,
        exact=algorithm_cls.exact,
        size_b=community_b.n_users,
        size_a=community_a.n_users,
        epsilon=int(epsilon),
        pairs=[],
        events=EventCounts(),
        elapsed_seconds=0.0,
        engine=SCREEN_ENGINE,
        swapped=swapped,
    )
    return PairScore(
        name_b=community_b.key,
        name_a=community_a.key,
        similarity=0.0,
        result=result,
    )


def _top_k_pairs_catalog(
    catalog: PersistentCatalog,
    *,
    epsilon: int,
    k: int,
    screen_method: str,
    refine_method: str,
    screen_margin: float,
    n_jobs: int,
    cache: JoinResultCache | int | None,
    envelope_screen: bool,
    metrics: MetricsRegistry | None,
    telemetry: list[JoinTelemetry] | None,
    fault_policy: FaultPolicy | None,
    checkpoint: CheckpointLog | str | Path | None,
    prefilter: SketchPrefilter | None,
    keys: list[str] | None,
    **options: object,
) -> list[PairScore]:
    """Catalog-backed top-k: screen in SQL, load only the survivors."""
    _validate([], k, screen_margin)
    selected = sorted(set(keys)) if keys is not None else catalog.keys()
    records = {key: catalog.metadata(key) for key in selected}
    joinable = [
        (selected[i], selected[j])
        for i, j in itertools.combinations(range(len(selected)), 2)
        if _ratio_ok(records[selected[i]].n_users, records[selected[j]].n_users)
    ]
    if envelope_screen:
        surviving = set(catalog.candidate_pairs(epsilon, keys=selected))
    else:
        surviving = set(joinable)
    live_pairs = [pair for pair in joinable if pair in surviving]
    needed = sorted({key for pair in live_pairs for key in pair})
    # The only vector loads of the whole ranking: one per survivor.
    loaded: dict[str, Community] = {}
    for key in needed:
        community = catalog.get(key)
        if community.name != key:
            community = dataclasses.replace(community, name=key)
        loaded[key] = community
    roster = [loaded[key] for key in needed]
    index_of = {key: index for index, key in enumerate(needed)}
    job_options = canonical_options(options)

    def run_jobs(pairs: list[tuple[str, str]], method: str) -> list[CSJResult]:
        if not pairs:
            return []
        jobs = [
            PairJob(index_of[first], index_of[second], method, epsilon, job_options)
            for first, second in pairs
        ]
        with BatchEngine(
            roster,
            n_jobs=n_jobs,
            screen=envelope_screen,
            cache=cache,
            metrics=metrics,
            fault_policy=fault_policy,
            checkpoint=checkpoint,
            prefilter=prefilter,
        ) as engine:
            outcomes = engine.run(jobs)
            if telemetry is not None:
                telemetry.extend(engine.telemetry)
        return [outcome.result for outcome in outcomes]

    screen_results = dict(zip(live_pairs, run_jobs(live_pairs, screen_method)))
    screened = [
        (
            screen_results[pair].similarity if pair in screen_results else 0.0,
            pair[0],
            pair[1],
        )
        for pair in joinable
    ]
    screened.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
    pool = screened[: _pool_size(len(screened), k, screen_margin)]
    refine_pairs = [
        (first, second) for _, first, second in pool if (first, second) in surviving
    ]
    refine_results = dict(zip(refine_pairs, run_jobs(refine_pairs, refine_method)))
    refined: list[PairScore] = []
    for _, first, second in pool:
        result = refine_results.get((first, second))
        if result is None:
            refined.append(
                _zero_score(
                    records[first],
                    records[second],
                    method=refine_method,
                    epsilon=epsilon,
                )
            )
            continue
        name_b, name_a = (second, first) if result.swapped else (first, second)
        refined.append(
            PairScore(
                name_b=name_b,
                name_a=name_a,
                similarity=result.similarity,
                result=result,
            )
        )
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]


def top_k_pairs_reference(
    communities: list[Community],
    *,
    epsilon: int,
    k: int,
    screen_method: str = "ap-minmax",
    refine_method: str = "ex-minmax",
    screen_margin: float = 0.8,
    **options: object,
) -> list[PairScore]:
    """Pre-engine serial implementation, kept as an oracle and baseline.

    Joins every pair in-process with no envelope screen and no cache
    (algorithm instances are still built once per phase).  The engine
    tests assert :func:`top_k_pairs` matches this ranking exactly, and
    ``benchmarks/bench_engine_batch.py`` measures the engine against it.
    """
    _validate(communities, k, screen_margin)
    screener = get_algorithm(screen_method, epsilon, **options)
    screened: list[tuple[float, Community, Community]] = []
    for first, second in itertools.combinations(communities, 2):
        if not _joinable(first, second):
            continue
        result = screener.join(first, second)
        screened.append((result.similarity, first, second))
    screened.sort(key=lambda entry: (-entry[0], entry[1].name, entry[2].name))

    refiner = get_algorithm(refine_method, epsilon, **options)
    refined: list[PairScore] = []
    for _, first, second in screened[: _pool_size(len(screened), k, screen_margin)]:
        result = refiner.join(first, second)
        oriented = (first, second) if not result.swapped else (second, first)
        refined.append(
            PairScore(
                name_b=oriented[0].name,
                name_a=oriented[1].name,
                similarity=result.similarity,
                result=result,
            )
        )
    refined.sort(key=lambda score: (-score.similarity, score.name_b, score.name_a))
    return refined[:k]
