"""Recommendation applications built on CSJ (Section 1.2 of the paper).

The paper motivates CSJ with three application families that link-based
joins and community detection/search handle poorly:

* **Friend recommendation** (case i): users matched by CSJ share
  similar profiles without needing any structural connection — exactly
  the "people with similar interests follow ..." style of notification.
* **Business-partner recommendation** (case ii.a): a brand ranks
  candidate brands by CSJ similarity of their audiences and approaches
  the top ones for collaborations.
* **Broadcast recommendation** (case ii.b): the platform compares a
  brand against several others and schedules cross-recommendations in
  priority order — the most similar brand gets the peak engagement hour.
* **Content recommendation** (case ii.c): similar communities act as
  interchangeable content *features*, letting a brand diversify posts
  while staying coherent.

The classes here are deliberately thin, deterministic orchestrations of
the CSJ operator — the library's "example application" layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algorithms import get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult

__all__ = [
    "FriendSuggestion",
    "FriendRecommender",
    "PartnerScore",
    "PartnerRecommender",
    "BroadcastSlot",
    "BroadcastPlanner",
    "ContentFeatureSuggestion",
    "suggest_content_features",
]


# ----------------------------------------------------------------------
# (i) friend recommendation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FriendSuggestion:
    """One cross-community follow suggestion derived from a CSJ match."""

    b_index: int
    a_index: int
    community_b: str
    community_a: str
    message: str


class FriendRecommender:
    """Turns CSJ matches into mutual follow suggestions.

    Matched users have near-identical profiles (within epsilon per
    category), so each pair yields two suggestions in the style of the
    paper's LinkedIn/VK examples.
    """

    def __init__(self, epsilon: int, *, method: str = "ex-minmax", **options: object) -> None:
        self._algorithm = get_algorithm(method, epsilon, **options)

    def recommend(
        self, community_b: Community, community_a: Community
    ) -> list[FriendSuggestion]:
        result = self._algorithm.join(community_b, community_a)
        suggestions = []
        for pair in result.pairs:
            message = (
                f"user B#{pair.b_index} of {community_b.name!r} and "
                f"user A#{pair.a_index} of {community_a.name!r} have "
                "similar interests - suggest they follow each other"
            )
            suggestions.append(
                FriendSuggestion(
                    b_index=pair.b_index,
                    a_index=pair.a_index,
                    community_b=community_b.name,
                    community_a=community_a.name,
                    message=message,
                )
            )
        return suggestions


# ----------------------------------------------------------------------
# (ii.a) business-partner recommendation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartnerScore:
    """One candidate brand with its audience similarity to the anchor."""

    candidate: str
    similarity: float
    result: CSJResult


class PartnerRecommender:
    """Ranks candidate brands by CSJ similarity with an anchor brand.

    This is the Dior/Longines scenario: two users can be similar based
    purely on preferences, so the candidate set is unrestricted — no
    community detection over the whole graph is needed.
    """

    def __init__(self, epsilon: int, *, method: str = "ex-minmax", **options: object) -> None:
        self.epsilon = epsilon
        self.method = method
        self._options = options

    def rank(
        self, anchor: Community, candidates: list[Community]
    ) -> list[PartnerScore]:
        """Candidates sorted by descending audience similarity.

        Candidates violating the CSJ size-ratio rule against the anchor
        are skipped (their similarity is not meaningful, Section 3).
        """
        scores: list[PartnerScore] = []
        for candidate in candidates:
            small, large = sorted((anchor, candidate), key=len)
            if len(small) * 2 < len(large):
                continue
            algorithm = get_algorithm(self.method, self.epsilon, **self._options)
            result = algorithm.join(anchor, candidate)
            scores.append(
                PartnerScore(
                    candidate=candidate.name,
                    similarity=result.similarity,
                    result=result,
                )
            )
        scores.sort(key=lambda score: (-score.similarity, score.candidate))
        return scores

    def shortlist(
        self,
        anchor: Community,
        candidates: list[Community],
        *,
        min_similarity: float,
        refine_method: str = "ex-minmax",
    ) -> list[PartnerScore]:
        """The paper's two-phase pipeline: approximate filter, exact refine.

        A fast approximate method screens all candidates; couples above
        ``min_similarity`` are re-joined with an exact method for the
        precise score — "the time-consuming exact method uses the
        results of the fast approximate method as input" (Section 3).
        """
        screener = PartnerRecommender(
            self.epsilon, method=self.method, **self._options
        )
        screened = [
            score
            for score in screener.rank(anchor, candidates)
            if score.similarity >= min_similarity
        ]
        by_name = {candidate.name: candidate for candidate in candidates}
        refined: list[PartnerScore] = []
        for score in screened:
            algorithm = get_algorithm(refine_method, self.epsilon, **self._options)
            result = algorithm.join(anchor, by_name[score.candidate])
            refined.append(
                PartnerScore(
                    candidate=score.candidate,
                    similarity=result.similarity,
                    result=result,
                )
            )
        refined.sort(key=lambda score: (-score.similarity, score.candidate))
        return refined


# ----------------------------------------------------------------------
# (ii.b) broadcast recommendation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BroadcastSlot:
    """One scheduled cross-recommendation slot."""

    hour_rank: int  # 1 = highest engagement hour
    target_community: str
    similarity: float
    audience: str  # description of whom the platform notifies


class BroadcastPlanner:
    """Prioritised broadcast schedule (the Nike/Adidas/Puma scenario).

    Given an anchor brand and candidate brands, the platform recommends
    the most similar candidate at the peak engagement hour, the next one
    at the second-highest hour, and so on.  Recipients are the anchor's
    followers who do not already follow the candidate.
    """

    def __init__(self, epsilon: int, *, method: str = "ap-minmax", **options: object) -> None:
        self._recommender = PartnerRecommender(epsilon, method=method, **options)

    def plan(
        self, anchor: Community, candidates: list[Community]
    ) -> list[BroadcastSlot]:
        scores = self._recommender.rank(anchor, candidates)
        slots = []
        for rank, score in enumerate(scores, start=1):
            slots.append(
                BroadcastSlot(
                    hour_rank=rank,
                    target_community=score.candidate,
                    similarity=score.similarity,
                    audience=(
                        f"followers of {anchor.name!r} not following "
                        f"{score.candidate!r}"
                    ),
                )
            )
        return slots


# ----------------------------------------------------------------------
# (ii.c) content recommendation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContentFeatureSuggestion:
    """A feature (community) suggested for a post, with its rationale."""

    feature: str
    similarity: float
    role: str  # "coherent" (similar to current) or "diverse" (dissimilar)


def suggest_content_features(
    anchor: Community,
    candidates: list[Community],
    *,
    epsilon: int,
    coherent_threshold: float = 0.15,
    method: str = "ap-minmax",
    **options: object,
) -> list[ContentFeatureSuggestion]:
    """Split candidate features into coherent vs diverse for post tuning.

    Features whose audiences overlap the anchor's by at least
    ``coherent_threshold`` naturally coexist with it in a post; the rest
    provide diversity ("not having the same concept", Section 1.2 ii.c).
    """
    if not 0.0 <= coherent_threshold <= 1.0:
        raise ConfigurationError(
            f"coherent_threshold must be within [0, 1], got {coherent_threshold}"
        )
    recommender = PartnerRecommender(epsilon, method=method, **options)
    suggestions = []
    for score in recommender.rank(anchor, candidates):
        role = "coherent" if score.similarity >= coherent_threshold else "diverse"
        suggestions.append(
            ContentFeatureSuggestion(
                feature=score.candidate, similarity=score.similarity, role=role
            )
        )
    return suggestions
