"""Parameter sweeps: epsilon selectivity and scale growth curves.

Section 1.1 argues that CSJ "uses a meaningful value for epsilon and so
avoids the issues of finding a good value for epsilon in regards to the
selectivity of the join" that plague the classic epsilon-join.  The
epsilon sweep quantifies that claim on our datasets: similarity (join
selectivity) as a function of epsilon, which saturates quickly around
the meaningful threshold the data was generated for.  The scale sweep
measures runtime growth against community size for any method — the
generalisation of Table 11 beyond Ex-MinMax.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..catalog import PersistentCatalog
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult
from ..datasets.couples import CoupleSpec, build_couple
from ..datasets.synthetic import SyntheticGenerator
from ..datasets.vk import VKGenerator
from ..engine import BatchEngine, CheckpointLog, FaultPolicy, JoinResultCache, PairJob
from ..obs import JoinTelemetry, MetricsRegistry
from ..sketch import SketchPrefilter

__all__ = [
    "SweepPoint",
    "catalog_epsilon_sweep",
    "epsilon_sweep",
    "scale_sweep",
    "render_sweep",
]


def _point(parameter: float, result: CSJResult) -> "SweepPoint":
    return SweepPoint(
        parameter=parameter,
        similarity_percent=result.similarity_percent,
        n_matched=result.n_matched,
        elapsed_seconds=result.elapsed_seconds,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep curve."""

    parameter: float
    similarity_percent: float
    n_matched: int
    elapsed_seconds: float


def epsilon_sweep(
    community_b: Community,
    community_a: Community,
    epsilons: list[int],
    *,
    method: str = "ex-minmax",
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    metrics: MetricsRegistry | None = None,
    telemetry: list[JoinTelemetry] | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
    **options: object,
) -> list[SweepPoint]:
    """Similarity as a function of epsilon on a fixed couple.

    Similarity is monotonically non-decreasing in epsilon (a larger
    threshold only adds candidate edges), which the returned curve
    exhibits; the interesting feature is *where* it saturates — the
    data's meaningful epsilon.

    The joins run as one :class:`~repro.engine.BatchEngine` batch, so a
    shared ``cache`` makes repeated sweeps over the same couple free and
    ``n_jobs`` > 1 evaluates the epsilon grid in parallel.  With
    ``metrics`` attached, the engine's per-join records are appended to
    ``telemetry`` (when given).  ``fault_policy`` supervises the joins
    (timeouts / retries / quarantine) and ``checkpoint`` makes finished
    joins durable, so a killed sweep resumes without recomputation.
    """
    if not epsilons:
        raise ConfigurationError("epsilon_sweep needs at least one epsilon")
    if sorted(epsilons) != list(epsilons):
        raise ConfigurationError("epsilons must be given in ascending order")
    jobs = [
        PairJob.build(0, 1, method, epsilon, options) for epsilon in epsilons
    ]
    with BatchEngine(
        [community_b, community_a],
        n_jobs=n_jobs,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as engine:
        outcomes = engine.run(jobs)
        if telemetry is not None:
            telemetry.extend(engine.telemetry)
    return [
        _point(float(epsilon), outcome.result)
        for epsilon, outcome in zip(epsilons, outcomes)
    ]


def catalog_epsilon_sweep(
    catalog: PersistentCatalog,
    key_b: str,
    key_a: str,
    epsilons: list[int],
    *,
    method: str = "ex-minmax",
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    metrics: MetricsRegistry | None = None,
    telemetry: list[JoinTelemetry] | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
    **options: object,
) -> list[SweepPoint]:
    """:func:`epsilon_sweep` over a couple stored in a persistent catalog.

    The stored envelopes are consulted first: when they prove a zero
    similarity at *every* requested epsilon (epsilon-monotone — if the
    largest epsilon is separated, all smaller ones are), the whole
    curve is synthesised from metadata and **no vectors are loaded**.
    Otherwise both communities load once and the sweep runs on the
    engine exactly as the in-memory variant — the curves are identical.
    """
    if not epsilons:
        raise ConfigurationError("epsilon_sweep needs at least one epsilon")
    if sorted(epsilons) != list(epsilons):
        raise ConfigurationError("epsilons must be given in ascending order")
    if catalog.pair_screened(key_b, key_a, max(epsilons)):
        return [
            SweepPoint(
                parameter=float(epsilon),
                similarity_percent=0.0,
                n_matched=0,
                elapsed_seconds=0.0,
            )
            for epsilon in epsilons
        ]
    return epsilon_sweep(
        catalog.get(key_b),
        catalog.get(key_a),
        epsilons,
        method=method,
        n_jobs=n_jobs,
        cache=cache,
        metrics=metrics,
        telemetry=telemetry,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
        **options,
    )


def scale_sweep(
    spec: CoupleSpec,
    generator: VKGenerator | SyntheticGenerator,
    scales: list[float],
    *,
    epsilon: int,
    method: str = "ex-minmax",
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    metrics: MetricsRegistry | None = None,
    telemetry: list[JoinTelemetry] | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
    **options: object,
) -> list[SweepPoint]:
    """Runtime as a function of couple size for one couple spec.

    Each point rebuilds the couple at the given scale and times the
    method — a per-method generalisation of Table 11.  The joins of all
    scales execute as one :class:`~repro.engine.BatchEngine` batch.
    With ``metrics`` attached, the engine's per-join records are
    appended to ``telemetry`` (when given).  ``fault_policy`` and
    ``checkpoint`` behave as in :func:`epsilon_sweep`.
    """
    if not scales:
        raise ConfigurationError("scale_sweep needs at least one scale")
    communities: list[Community] = []
    for scale in scales:
        community_b, community_a = build_couple(spec, generator, scale=scale)
        communities.extend((community_b, community_a))
    jobs = [
        PairJob.build(2 * index, 2 * index + 1, method, epsilon, options)
        for index in range(len(scales))
    ]
    with BatchEngine(
        communities,
        n_jobs=n_jobs,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as engine:
        outcomes = engine.run(jobs)
        if telemetry is not None:
            telemetry.extend(engine.telemetry)
    return [
        _point(
            float(len(communities[2 * index]) + len(communities[2 * index + 1])) / 2,
            outcome.result,
        )
        for index, outcome in enumerate(outcomes)
    ]


def render_sweep(points: list[SweepPoint], *, parameter_name: str) -> str:
    """Monospace rendering of a sweep curve with a text sparkline."""
    if not points:
        return "(empty sweep)"
    peak = max(point.similarity_percent for point in points) or 1.0
    lines = [f"{parameter_name:>12}  similarity  matched   time      curve"]
    for point in points:
        bar = "#" * max(1, int(round(24 * point.similarity_percent / peak)))
        lines.append(
            f"{point.parameter:12g}  {point.similarity_percent:9.2f}%  "
            f"{point.n_matched:7d}  {point.elapsed_seconds:7.3f}s  {bar}"
        )
    return "\n".join(lines)
