"""Calibration of the approximate-method factor ``p`` of Eq. (1).

Eq. (1) scales the similarity by ``p = 1`` for exact methods and
``p in (0, 1]`` for approximate ones — the factor expressing how much of
the true matching an approximate method typically recovers.  The paper
leaves ``p`` implicit (its tables report the raw matched fraction);
this module estimates it empirically, which is exactly how a deployment
would obtain it: run both the approximate and the exact method on a
small sample of couples and average the recovery ratio.  The calibrated
factor then *corrects* approximate similarities on unseen couples
(multiply by ``1/p`` to de-bias, or report ``p`` as the confidence).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..algorithms import get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult

__all__ = ["PCalibration", "estimate_p", "debias"]


@dataclass(frozen=True)
class PCalibration:
    """An estimated ``p`` with its sample statistics."""

    method: str
    reference_method: str
    epsilon: int
    p: float
    sample_ratios: tuple[float, ...]

    @property
    def n_samples(self) -> int:
        return len(self.sample_ratios)

    @property
    def spread(self) -> float:
        """Sample standard deviation of the recovery ratios."""
        if len(self.sample_ratios) < 2:
            return 0.0
        return statistics.stdev(self.sample_ratios)


def estimate_p(
    method: str,
    couples: list[tuple[Community, Community]],
    *,
    epsilon: int,
    reference_method: str = "ex-minmax",
    reference_matcher: str = "hopcroft_karp",
    **options: object,
) -> PCalibration:
    """Estimate Eq. (1)'s ``p`` for an approximate method.

    For every sample couple, ``p_i`` is the approximate matched count
    over the exact maximum matched count (1.0 when both are zero); the
    estimate is the mean.  The reference runs with the true maximum
    matcher so ``p <= 1`` holds by construction.
    """
    if not couples:
        raise ConfigurationError("estimate_p needs at least one sample couple")
    reference_options = dict(options)
    reference_options["matcher"] = reference_matcher
    ratios: list[float] = []
    for community_b, community_a in couples:
        approximate = get_algorithm(method, epsilon, **options).join(
            community_b, community_a
        )
        exact = get_algorithm(
            reference_method, epsilon, **reference_options
        ).join(community_b, community_a)
        if exact.n_matched == 0:
            ratios.append(1.0)
        else:
            ratios.append(approximate.n_matched / exact.n_matched)
    return PCalibration(
        method=method,
        reference_method=reference_method,
        epsilon=epsilon,
        p=statistics.mean(ratios),
        sample_ratios=tuple(ratios),
    )


def debias(result: CSJResult, calibration: PCalibration) -> float:
    """De-biased similarity estimate for an approximate result.

    Divides the raw matched fraction by the calibrated ``p`` (clamped to
    1.0 — a fraction of ``B`` cannot exceed one).  Raises if the result
    came from a different method than the calibration.
    """
    if result.method != calibration.method:
        raise ConfigurationError(
            f"calibration is for {calibration.method!r}, result is from "
            f"{result.method!r}"
        )
    if calibration.p <= 0:
        raise ConfigurationError("calibrated p must be positive")
    return min(1.0, result.similarity / calibration.p)
