"""Experiment harness, metrics and paper-style table rendering."""

from .charts import Series, bar_chart, line_chart, save_chart
from .config import ExperimentConfig, run_experiment
from .calibration import PCalibration, debias, estimate_p
from .events_report import MethodEventProfile, profile_events, render_event_report
from .experiments import render_experiments_md, write_experiments_md
from .metrics import (
    MethodComparison,
    accuracy_ratio,
    compare_methods,
    reproduction_delta,
    speedup,
)
from .paper_reference import PAPER_SIMILARITY, paper_similarity
from .runner import (
    METHOD_TABLES,
    CoupleRun,
    ScalabilityCell,
    Table1Run,
    TableRun,
    dataset_for_table,
    epsilon_for_dataset,
    make_generator,
    methods_for_table,
    run_couple,
    run_method_table,
    run_scalability,
    run_table1,
)
from .results_io import (
    load_scalability_cells,
    load_table_run,
    save_scalability_cells,
    save_table_run,
)
from .selfcheck import CheckOutcome, SelfCheckReport, run_selfcheck
from .sweeps import SweepPoint, epsilon_sweep, render_sweep, scale_sweep
from .tables import (
    format_grid,
    render_method_table,
    render_method_table_with_reference,
    render_scalability_table,
    render_table1,
    render_table2,
)

__all__ = [
    "Series",
    "line_chart",
    "bar_chart",
    "save_chart",
    "ExperimentConfig",
    "run_experiment",
    "PCalibration",
    "estimate_p",
    "debias",
    "MethodEventProfile",
    "profile_events",
    "render_event_report",
    "SweepPoint",
    "epsilon_sweep",
    "scale_sweep",
    "render_sweep",
    "CheckOutcome",
    "SelfCheckReport",
    "run_selfcheck",
    "save_table_run",
    "load_table_run",
    "save_scalability_cells",
    "load_scalability_cells",
    "render_experiments_md",
    "write_experiments_md",
    "accuracy_ratio",
    "speedup",
    "compare_methods",
    "MethodComparison",
    "reproduction_delta",
    "PAPER_SIMILARITY",
    "paper_similarity",
    "METHOD_TABLES",
    "CoupleRun",
    "TableRun",
    "ScalabilityCell",
    "Table1Run",
    "dataset_for_table",
    "methods_for_table",
    "epsilon_for_dataset",
    "make_generator",
    "run_couple",
    "run_method_table",
    "run_scalability",
    "run_table1",
    "format_grid",
    "render_method_table",
    "render_method_table_with_reference",
    "render_scalability_table",
    "render_table1",
    "render_table2",
]
