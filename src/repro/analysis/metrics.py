"""Derived metrics for comparing CSJ methods and runs.

The paper's discussion revolves around two axes: *accuracy* (the
similarity a method reports, relative to the exact value) and
*efficiency* (execution time, relative to a baseline).  These helpers
compute both, plus the paper-vs-measured deltas used in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import CSJResult

__all__ = [
    "accuracy_ratio",
    "speedup",
    "MethodComparison",
    "compare_methods",
    "reproduction_delta",
]


def accuracy_ratio(result: CSJResult, exact_result: CSJResult) -> float:
    """Fraction of the exact similarity a method recovered (<= 1 + eps).

    Returns 1.0 when the exact similarity is zero (nothing to recover).
    """
    if exact_result.similarity == 0:
        return 1.0
    return result.similarity / exact_result.similarity


def speedup(result: CSJResult, baseline_result: CSJResult) -> float:
    """How many times faster ``result`` ran than ``baseline_result``."""
    if result.elapsed_seconds <= 0:
        return float("inf")
    return baseline_result.elapsed_seconds / result.elapsed_seconds


@dataclass(frozen=True)
class MethodComparison:
    """Accuracy/efficiency of one method against reference results."""

    method: str
    similarity_percent: float
    elapsed_seconds: float
    accuracy_vs_exact: float
    speedup_vs_baseline: float


def compare_methods(
    results: dict[str, CSJResult],
    *,
    exact_method: str,
    baseline_method: str,
) -> list[MethodComparison]:
    """Summarise a method->result map against the given references."""
    exact_result = results[exact_method]
    baseline_result = results[baseline_method]
    return [
        MethodComparison(
            method=name,
            similarity_percent=result.similarity_percent,
            elapsed_seconds=result.elapsed_seconds,
            accuracy_vs_exact=accuracy_ratio(result, exact_result),
            speedup_vs_baseline=speedup(result, baseline_result),
        )
        for name, result in results.items()
    ]


def reproduction_delta(measured_percent: float, paper_percent: float | None) -> float | None:
    """Measured-minus-paper similarity in percentage points."""
    if paper_percent is None:
        return None
    return measured_percent - paper_percent
