"""Experiment harness: runs every table of the paper's evaluation.

Each evaluation table of the paper is one configuration of four axes:
dataset (VK / Synthetic), method family (approximate / exact), couple
set (different / same categories) and epsilon.  The mapping is:

===== ========== ============ ========== =========
Table Dataset    Methods      Couples    Epsilon
===== ========== ============ ========== =========
3     VK         approximate  1–10       1
4     VK         exact        1–10       1
5     VK         approximate  11–20      1
6     VK         exact        11–20      1
7     Synthetic  approximate  1–10       15000
8     Synthetic  exact        1–10       15000
9     Synthetic  approximate  11–20      15000
10    Synthetic  exact        11–20      15000
===== ========== ============ ========== =========

Table 11 is the Ex-MinMax scalability study and Table 1 the dataset
statistics; :func:`run_scalability` and :func:`run_table1` cover those.
Community sizes are the paper's, shrunk by ``scale`` (default 1/64).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..algorithms import APPROXIMATE_METHODS, EXACT_METHODS, get_algorithm
from ..core.errors import ConfigurationError
from ..core.types import Community, CSJResult
from ..engine import BatchEngine, CheckpointLog, FaultPolicy, JoinResultCache, PairJob
from ..sketch import SketchPrefilter
from ..obs import JoinTelemetry, MetricsRegistry
from ..datasets.categories import CATEGORIES
from ..datasets.couples import (
    DEFAULT_SCALE,
    SCALABILITY_SIZES,
    CoupleSpec,
    build_couple,
    couples_for_table,
    scale_size,
)
from ..datasets.stats import CategoryTotal, max_likes_per_dimension, ranking
from ..datasets.synthetic import SYNTHETIC_EPSILON, SyntheticGenerator
from ..datasets.vk import VK_EPSILON, VKGenerator
from .paper_reference import paper_similarity

__all__ = [
    "METHOD_TABLES",
    "CoupleRun",
    "TableRun",
    "ScalabilityCell",
    "Table1Run",
    "dataset_for_table",
    "epsilon_for_dataset",
    "make_generator",
    "methods_for_table",
    "run_couple",
    "run_method_table",
    "run_scalability",
    "run_table1",
]

#: The method-comparison tables of the evaluation section.
METHOD_TABLES = (3, 4, 5, 6, 7, 8, 9, 10)


def dataset_for_table(table: int) -> str:
    """``"vk"`` for Tables 3–6, ``"synthetic"`` for Tables 7–10."""
    if table in (3, 4, 5, 6):
        return "vk"
    if table in (7, 8, 9, 10):
        return "synthetic"
    raise ConfigurationError(f"tables 3-10 are method tables; got {table}")


def methods_for_table(table: int) -> tuple[str, ...]:
    """Approximate methods for odd tables, exact for even ones."""
    if table in (3, 5, 7, 9):
        return APPROXIMATE_METHODS
    if table in (4, 6, 8, 10):
        return EXACT_METHODS
    raise ConfigurationError(f"tables 3-10 are method tables; got {table}")


def epsilon_for_dataset(dataset: str) -> int:
    """Section 6.1: epsilon = 1 on VK, 15000 on Synthetic."""
    if dataset == "vk":
        return VK_EPSILON
    if dataset == "synthetic":
        return SYNTHETIC_EPSILON
    raise ConfigurationError(f"unknown dataset {dataset!r}")


def make_generator(dataset: str, seed: int = 7) -> VKGenerator | SyntheticGenerator:
    """Dataset generator factory keyed the way the tables name them."""
    if dataset == "vk":
        return VKGenerator(seed=seed)
    if dataset == "synthetic":
        return SyntheticGenerator(seed=seed)
    raise ConfigurationError(f"unknown dataset {dataset!r}")


@dataclass
class CoupleRun:
    """All method results for one couple (one row of a method table)."""

    spec: CoupleSpec
    size_b: int
    size_a: int
    results: dict[str, CSJResult] = field(default_factory=dict)
    #: Per-join telemetry records (populated when run with ``metrics``).
    telemetry: list[JoinTelemetry] = field(default_factory=list)

    def similarity_percent(self, method: str) -> float:
        return self.results[method].similarity_percent

    def elapsed(self, method: str) -> float:
        return self.results[method].elapsed_seconds


@dataclass
class TableRun:
    """A regenerated method table (Tables 3–10)."""

    table: int
    dataset: str
    epsilon: int
    scale: float
    methods: tuple[str, ...]
    rows: list[CoupleRun] = field(default_factory=list)
    #: Per-join telemetry records (populated when run with ``metrics``).
    telemetry: list[JoinTelemetry] = field(default_factory=list)

    def paper_value(self, c_id: int, method: str) -> float | None:
        return paper_similarity(self.table, c_id, method)


def _method_jobs(
    first: int,
    second: int,
    methods: tuple[str, ...],
    *,
    epsilon: int,
    engine: str,
    method_options: dict[str, dict] | None,
) -> list[PairJob]:
    """One engine job per requested method for a couple at (first, second)."""
    options = method_options or {}
    return [
        PairJob.build(
            first,
            second,
            method,
            epsilon,
            {"engine": engine, **options.get(method, {})},
        )
        for method in methods
    ]


def run_couple(
    spec: CoupleSpec,
    generator: VKGenerator | SyntheticGenerator,
    methods: tuple[str, ...],
    *,
    epsilon: int,
    scale: float = DEFAULT_SCALE,
    engine: str = "numpy",
    method_options: dict[str, dict] | None = None,
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    metrics: MetricsRegistry | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
) -> CoupleRun:
    """Build one couple and run every requested method on it.

    The methods execute on the :class:`~repro.engine.BatchEngine`, so a
    shared ``cache`` carries results across repeated calls and
    ``n_jobs`` > 1 runs the methods in parallel worker processes.
    With ``metrics`` the engine's per-join telemetry lands on the
    returned run's ``telemetry`` list.  ``fault_policy`` enables
    supervised execution (timeouts / retries / quarantine);
    ``checkpoint`` makes completed joins durable for resumption.
    """
    community_b, community_a = build_couple(spec, generator, scale=scale)
    run = CoupleRun(spec=spec, size_b=len(community_b), size_a=len(community_a))
    jobs = _method_jobs(
        0, 1, methods, epsilon=epsilon, engine=engine, method_options=method_options
    )
    with BatchEngine(
        [community_b, community_a],
        n_jobs=n_jobs,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as batch_engine:
        for job, outcome in zip(jobs, batch_engine.run(jobs)):
            run.results[job.method] = outcome.result
        run.telemetry = list(batch_engine.telemetry)
    return run


def run_method_table(
    table: int,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    engine: str = "numpy",
    methods: tuple[str, ...] | None = None,
    couples: tuple[CoupleSpec, ...] | None = None,
    method_options: dict[str, dict] | None = None,
    n_jobs: int = 1,
    cache: JoinResultCache | int | None = None,
    metrics: MetricsRegistry | None = None,
    fault_policy: FaultPolicy | None = None,
    checkpoint: CheckpointLog | str | Path | None = None,
    prefilter: SketchPrefilter | None = None,
) -> TableRun:
    """Regenerate one of Tables 3–10 at the given scale.

    All couples are generated up front (dataset generation stays
    deterministic and serial), then every ``couple x method`` join runs
    as one :class:`~repro.engine.BatchEngine` batch: ``n_jobs`` > 1
    spreads the joins over worker processes sharing the vectors through
    shared memory, and ``cache`` makes sweep-style repeated table runs
    (or overlapping tables) skip identical joins entirely.  With
    ``metrics`` the per-join telemetry records land on the returned
    run's ``telemetry`` list (and on each row's, per couple).
    ``fault_policy`` supervises the joins and ``checkpoint`` makes the
    finished ones durable, so a killed table run resumes with only the
    unfinished couple x method cells recomputed.
    """
    dataset = dataset_for_table(table)
    chosen_methods = methods if methods is not None else methods_for_table(table)
    chosen_couples = couples if couples is not None else couples_for_table(table)
    epsilon = epsilon_for_dataset(dataset)
    generator = make_generator(dataset, seed=seed)
    run = TableRun(
        table=table,
        dataset=dataset,
        epsilon=epsilon,
        scale=scale,
        methods=tuple(chosen_methods),
    )
    communities: list[Community] = []
    for spec in chosen_couples:
        community_b, community_a = build_couple(spec, generator, scale=scale)
        communities.extend((community_b, community_a))
        run.rows.append(
            CoupleRun(spec=spec, size_b=len(community_b), size_a=len(community_a))
        )
    jobs: list[PairJob] = []
    for row_index in range(len(chosen_couples)):
        jobs.extend(
            _method_jobs(
                2 * row_index,
                2 * row_index + 1,
                tuple(chosen_methods),
                epsilon=epsilon,
                engine=engine,
                method_options=method_options,
            )
        )
    with BatchEngine(
        communities,
        n_jobs=n_jobs,
        cache=cache,
        metrics=metrics,
        fault_policy=fault_policy,
        checkpoint=checkpoint,
        prefilter=prefilter,
    ) as batch_engine:
        outcomes = batch_engine.run(jobs)
        run.telemetry = list(batch_engine.telemetry)
    for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
        run.rows[index // len(chosen_methods)].results[job.method] = outcome.result
    for record in run.telemetry:
        # Jobs index communities pairwise, so the couple row is first // 2.
        run.rows[record.first // 2].telemetry.append(record)
    return run


@dataclass
class ScalabilityCell:
    """One (category, size step) cell of Table 11."""

    category: str
    step: int  # 1-based, the paper's size_1 .. size_4
    average_size: int
    similarity_percent: float
    elapsed_seconds: float


def run_scalability(
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = 7,
    method: str = "ex-minmax",
    engine: str = "numpy",
    categories: tuple[str, ...] | None = None,
    steps: tuple[int, ...] = (1, 2, 3, 4),
    overlap_fraction: float = 0.25,
) -> list[ScalabilityCell]:
    """Regenerate Table 11: Ex-MinMax runtime across couple sizes.

    The paper reports, per category, the runtime on four couples of
    growing average size.  We build couples at the scaled paper sizes
    (``B`` at 90% of the average, ``A`` at 110%) with a fixed realistic
    overlap and time the chosen method.
    """
    generator = make_generator("vk", seed=seed)
    epsilon = epsilon_for_dataset("vk")
    chosen = categories if categories is not None else tuple(SCALABILITY_SIZES)
    cells: list[ScalabilityCell] = []
    for category in chosen:
        sizes = SCALABILITY_SIZES[category]
        for step in steps:
            average = scale_size(sizes[step - 1], scale)
            size_b = max(20, int(round(average * 0.9)))
            size_a = max(size_b, int(round(average * 1.1)))
            built = generator.make_couple_vectors(
                size_b=size_b,
                size_a=size_a,
                overlap_fraction=overlap_fraction,
                category_b=category,
                category_a=category,
                seed_key=("table11", category, step),
            )
            community_b = Community(f"{category}-B{step}", built.vectors_b, category)
            community_a = Community(f"{category}-A{step}", built.vectors_a, category)
            algorithm = get_algorithm(method, epsilon, engine=engine)
            result = algorithm.join(community_b, community_a)
            cells.append(
                ScalabilityCell(
                    category=category,
                    step=step,
                    average_size=(len(community_b) + len(community_a)) // 2,
                    similarity_percent=result.similarity_percent,
                    elapsed_seconds=result.elapsed_seconds,
                )
            )
    return cells


@dataclass
class Table1Run:
    """Regenerated Table 1: per-dataset category rankings."""

    n_users: int
    vk_ranking: list[CategoryTotal]
    synthetic_ranking: list[CategoryTotal]
    vk_max_per_dimension: int
    synthetic_max_per_dimension: int


def run_table1(*, n_users: int = 20_000, seed: int = 7) -> Table1Run:
    """Sample both populations and rank categories by total likes."""
    vk_population = VKGenerator(seed=seed).sample_population(n_users)
    synthetic_population = SyntheticGenerator(seed=seed).sample_population(n_users)
    return Table1Run(
        n_users=n_users,
        vk_ranking=ranking(vk_population),
        synthetic_ranking=ranking(synthetic_population),
        vk_max_per_dimension=max_likes_per_dimension(vk_population),
        synthetic_max_per_dimension=max_likes_per_dimension(synthetic_population),
    )


def categories_available() -> tuple[str, ...]:
    """All categories (Table 1 order)."""
    return CATEGORIES
