"""Cross-method self-check: run every invariant on a given couple.

A reproduction lives and dies by its invariants.  :func:`run_selfcheck`
executes the full battery on one couple — every method, both engines,
both matchers — and reports each check's outcome, so a user who swaps
in their *own* data (or modifies an algorithm) can verify the system in
one call (CLI: ``repro-csj doctor``).

Checks:

1. every method returns a one-to-one matching of valid pairs;
2. the two engines of every method return the same matching;
3. Ex-Baseline and Ex-MinMax agree exactly (segmented CSF == global CSF);
4. Hopcroft–Karp never returns fewer pairs than CSF;
5. no approximate method beats the exact maximum;
6. normalised SuperEGO never beats the exact maximum;
7. raw-mode Ex-SuperEGO agrees with Ex-Baseline;
8. the MinMax encoding filters pass every brute-force match (on small
   couples where the exhaustive check is affordable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms import ALL_METHODS, get_algorithm
from ..core.encoding import MinMaxEncoder
from ..core.types import Community, CSJResult

__all__ = ["CheckOutcome", "SelfCheckReport", "run_selfcheck"]

#: Above this |B| x |A| budget the brute-force check (8) is skipped.
_BRUTE_FORCE_BUDGET = 250_000


@dataclass(frozen=True)
class CheckOutcome:
    """One executed check."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class SelfCheckReport:
    """All outcomes plus the per-method results for inspection."""

    outcomes: list[CheckOutcome]
    results: dict[str, CSJResult]

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def render(self) -> str:
        lines = []
        for outcome in self.outcomes:
            status = "PASS" if outcome.passed else "FAIL"
            line = f"[{status}] {outcome.name}"
            if outcome.detail:
                line += f" — {outcome.detail}"
            lines.append(line)
        verdict = "ALL CHECKS PASSED" if self.passed else "CHECKS FAILED"
        lines.append(verdict)
        return "\n".join(lines)


def _pairs_valid(
    result: CSJResult, community_b: Community, community_a: Community, epsilon: int
) -> bool:
    b_side = [pair.b_index for pair in result.pairs]
    a_side = [pair.a_index for pair in result.pairs]
    if len(set(b_side)) != len(b_side) or len(set(a_side)) != len(a_side):
        return False
    for pair in result.pairs:
        diff = np.abs(
            community_b.vectors[pair.b_index] - community_a.vectors[pair.a_index]
        )
        if diff.max(initial=0) > epsilon:
            return False
    return True


def run_selfcheck(
    community_b: Community, community_a: Community, *, epsilon: int
) -> SelfCheckReport:
    """Execute the invariant battery; never raises on a failed check."""
    outcomes: list[CheckOutcome] = []
    results: dict[str, CSJResult] = {}

    # 1 + 2: validity and engine agreement per method.
    for method in ALL_METHODS:
        numpy_result = get_algorithm(method, epsilon, engine="numpy").join(
            community_b, community_a
        )
        python_result = get_algorithm(method, epsilon, engine="python").join(
            community_b, community_a
        )
        results[method] = numpy_result
        outcomes.append(
            CheckOutcome(
                name=f"{method}: one-to-one matching of valid pairs",
                passed=_pairs_valid(numpy_result, community_b, community_a, epsilon),
                detail=f"{numpy_result.n_matched} pairs",
            )
        )
        same = set(numpy_result.pair_tuples()) == set(python_result.pair_tuples())
        outcomes.append(
            CheckOutcome(
                name=f"{method}: python and numpy engines agree",
                passed=same,
            )
        )

    # 3: segmented CSF == global CSF.
    outcomes.append(
        CheckOutcome(
            name="ex-baseline == ex-minmax (CSF segmentation)",
            passed=set(results["ex-baseline"].pair_tuples())
            == set(results["ex-minmax"].pair_tuples()),
        )
    )

    # 4: Hopcroft-Karp dominates CSF.
    hk_result = get_algorithm(
        "ex-minmax", epsilon, matcher="hopcroft_karp"
    ).join(community_b, community_a)
    outcomes.append(
        CheckOutcome(
            name="hopcroft-karp >= csf",
            passed=hk_result.n_matched >= results["ex-minmax"].n_matched,
            detail=f"{hk_result.n_matched} vs {results['ex-minmax'].n_matched}",
        )
    )

    # 5 + 6: nothing beats the exact maximum.
    maximum = hk_result.n_matched
    for method in ALL_METHODS:
        if method == "ex-minmax":
            continue
        outcomes.append(
            CheckOutcome(
                name=f"{method} <= exact maximum",
                passed=results[method].n_matched <= maximum,
            )
        )

    # 7: raw-mode SuperEGO equals the exact baseline.
    raw_superego = get_algorithm(
        "ex-superego", epsilon, use_normalized=False
    ).join(community_b, community_a)
    outcomes.append(
        CheckOutcome(
            name="ex-superego (raw mode) == ex-baseline",
            passed=raw_superego.n_matched == results["ex-baseline"].n_matched,
        )
    )

    # 7b: the Section 6.2 hybrid equals the exact baseline too.
    hybrid = get_algorithm("ex-hybrid", epsilon).join(community_b, community_a)
    outcomes.append(
        CheckOutcome(
            name="ex-hybrid (MinMax-SuperEGO) == ex-baseline",
            passed=set(hybrid.pair_tuples())
            == set(results["ex-baseline"].pair_tuples()),
        )
    )

    # 8: encoding never prunes a brute-force match (small couples only).
    budget = community_b.n_users * community_a.n_users
    if budget <= _BRUTE_FORCE_BUDGET:
        outcomes.append(
            CheckOutcome(
                name="minmax encoding passes every brute-force match",
                passed=_encoding_complete(community_b, community_a, epsilon),
            )
        )
    else:
        outcomes.append(
            CheckOutcome(
                name="minmax encoding passes every brute-force match",
                passed=True,
                detail=f"skipped (|B|x|A| = {budget:,} above budget)",
            )
        )
    return SelfCheckReport(outcomes=outcomes, results=results)


def _encoding_complete(
    community_b: Community, community_a: Community, epsilon: int
) -> bool:
    encoder = MinMaxEncoder(epsilon, min(4, community_b.n_dims))
    targets = encoder.encode_targets(community_b.vectors)
    candidates = encoder.encode_candidates(community_a.vectors)
    position_b = {int(real): i for i, real in enumerate(targets.real_ids)}
    position_a = {int(real): j for j, real in enumerate(candidates.real_ids)}
    for b_row in range(community_b.n_users):
        diffs = np.abs(community_a.vectors - community_b.vectors[b_row])
        for a_row in np.flatnonzero((diffs <= epsilon).all(axis=1)):
            i = position_b[b_row]
            j = position_a[int(a_row)]
            in_window = (
                candidates.encoded_min[j]
                <= targets.encoded_id[i]
                <= candidates.encoded_max[j]
            )
            overlap = MinMaxEncoder.parts_overlap(
                targets.parts[i], candidates.range_min[j], candidates.range_max[j]
            )
            if not (in_window and overlap):
                return False
    return True
