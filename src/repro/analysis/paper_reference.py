"""The paper's reported similarities (Tables 3–10), for comparison.

These are the percentage values printed in the paper's evaluation
tables, keyed by table number, couple id and method registry name.  The
experiment harness places them next to the measured values so
EXPERIMENTS.md can show paper-vs-measured for every cell.  Execution
times are intentionally not transcribed — the paper ran C++ on an
i7-11700, this reproduction runs Python on different hardware, so only
the similarity values and the relative time *ordering* are comparable.
"""

from __future__ import annotations

__all__ = ["PAPER_SIMILARITY", "paper_similarity"]

# table -> cID -> method -> similarity percent
PAPER_SIMILARITY: dict[int, dict[int, dict[str, float]]] = {
    3: {  # VK, approximate, different categories
        1: {"ap-baseline": 20.56, "ap-minmax": 20.58, "ap-superego": 19.68},
        2: {"ap-baseline": 15.40, "ap-minmax": 15.42, "ap-superego": 15.16},
        3: {"ap-baseline": 24.82, "ap-minmax": 24.82, "ap-superego": 24.26},
        4: {"ap-baseline": 16.30, "ap-minmax": 16.26, "ap-superego": 16.06},
        5: {"ap-baseline": 17.32, "ap-minmax": 17.34, "ap-superego": 16.70},
        6: {"ap-baseline": 24.31, "ap-minmax": 24.31, "ap-superego": 24.10},
        7: {"ap-baseline": 22.18, "ap-minmax": 22.19, "ap-superego": 21.83},
        8: {"ap-baseline": 15.45, "ap-minmax": 15.46, "ap-superego": 15.15},
        9: {"ap-baseline": 17.36, "ap-minmax": 17.36, "ap-superego": 16.86},
        10: {"ap-baseline": 20.95, "ap-minmax": 20.72, "ap-superego": 19.40},
    },
    4: {  # VK, exact, different categories
        1: {"ex-baseline": 20.81, "ex-minmax": 20.81, "ex-superego": 20.15},
        2: {"ex-baseline": 15.46, "ex-minmax": 15.46, "ex-superego": 15.22},
        3: {"ex-baseline": 24.95, "ex-minmax": 24.95, "ex-superego": 24.58},
        4: {"ex-baseline": 16.42, "ex-minmax": 16.42, "ex-superego": 16.20},
        5: {"ex-baseline": 17.52, "ex-minmax": 17.52, "ex-superego": 16.92},
        6: {"ex-baseline": 24.38, "ex-minmax": 24.38, "ex-superego": 24.20},
        7: {"ex-baseline": 22.22, "ex-minmax": 22.22, "ex-superego": 21.91},
        8: {"ex-baseline": 15.53, "ex-minmax": 15.53, "ex-superego": 15.29},
        9: {"ex-baseline": 17.52, "ex-minmax": 17.52, "ex-superego": 17.06},
        10: {"ex-baseline": 21.57, "ex-minmax": 21.56, "ex-superego": 20.09},
    },
    5: {  # VK, approximate, same categories
        11: {"ap-baseline": 31.42, "ap-minmax": 31.44, "ap-superego": 30.94},
        12: {"ap-baseline": 32.01, "ap-minmax": 32.05, "ap-superego": 31.30},
        13: {"ap-baseline": 39.24, "ap-minmax": 39.33, "ap-superego": 37.53},
        14: {"ap-baseline": 36.66, "ap-minmax": 36.48, "ap-superego": 34.85},
        15: {"ap-baseline": 36.83, "ap-minmax": 36.85, "ap-superego": 36.47},
        16: {"ap-baseline": 30.46, "ap-minmax": 30.45, "ap-superego": 30.11},
        17: {"ap-baseline": 35.25, "ap-minmax": 35.26, "ap-superego": 34.97},
        18: {"ap-baseline": 32.21, "ap-minmax": 32.23, "ap-superego": 31.76},
        19: {"ap-baseline": 31.79, "ap-minmax": 31.82, "ap-superego": 31.36},
        20: {"ap-baseline": 33.40, "ap-minmax": 33.42, "ap-superego": 33.07},
    },
    6: {  # VK, exact, same categories
        11: {"ex-baseline": 31.52, "ex-minmax": 31.52, "ex-superego": 31.20},
        12: {"ex-baseline": 32.10, "ex-minmax": 32.10, "ex-superego": 31.63},
        13: {"ex-baseline": 39.54, "ex-minmax": 39.54, "ex-superego": 38.62},
        14: {"ex-baseline": 37.10, "ex-minmax": 37.10, "ex-superego": 35.81},
        15: {"ex-baseline": 36.93, "ex-minmax": 36.93, "ex-superego": 36.67},
        16: {"ex-baseline": 30.57, "ex-minmax": 30.58, "ex-superego": 30.28},
        17: {"ex-baseline": 35.35, "ex-minmax": 35.35, "ex-superego": 35.11},
        18: {"ex-baseline": 32.26, "ex-minmax": 32.26, "ex-superego": 31.93},
        19: {"ex-baseline": 31.88, "ex-minmax": 31.88, "ex-superego": 31.59},
        20: {"ex-baseline": 33.50, "ex-minmax": 33.50, "ex-superego": 33.23},
    },
    7: {  # Synthetic, approximate, different categories
        1: {"ap-baseline": 17.57, "ap-minmax": 17.56, "ap-superego": 17.53},
        2: {"ap-baseline": 15.87, "ap-minmax": 15.86, "ap-superego": 15.79},
        3: {"ap-baseline": 24.00, "ap-minmax": 23.96, "ap-superego": 23.88},
        4: {"ap-baseline": 16.46, "ap-minmax": 16.46, "ap-superego": 16.40},
        5: {"ap-baseline": 15.37, "ap-minmax": 15.36, "ap-superego": 15.29},
        6: {"ap-baseline": 24.42, "ap-minmax": 24.39, "ap-superego": 24.30},
        7: {"ap-baseline": 22.04, "ap-minmax": 22.02, "ap-superego": 21.97},
        8: {"ap-baseline": 15.38, "ap-minmax": 15.36, "ap-superego": 15.31},
        9: {"ap-baseline": 15.79, "ap-minmax": 15.77, "ap-superego": 15.73},
        10: {"ap-baseline": 7.76, "ap-minmax": 7.76, "ap-superego": 7.73},
    },
    8: {  # Synthetic, exact, different categories (all methods agree)
        1: {"ex-baseline": 17.74, "ex-minmax": 17.74, "ex-superego": 17.74},
        2: {"ex-baseline": 16.00, "ex-minmax": 16.00, "ex-superego": 16.00},
        3: {"ex-baseline": 24.15, "ex-minmax": 24.15, "ex-superego": 24.15},
        4: {"ex-baseline": 16.57, "ex-minmax": 16.57, "ex-superego": 16.57},
        5: {"ex-baseline": 15.49, "ex-minmax": 15.49, "ex-superego": 15.49},
        6: {"ex-baseline": 24.56, "ex-minmax": 24.56, "ex-superego": 24.56},
        7: {"ex-baseline": 22.13, "ex-minmax": 22.13, "ex-superego": 22.13},
        8: {"ex-baseline": 15.57, "ex-minmax": 15.57, "ex-superego": 15.57},
        9: {"ex-baseline": 15.90, "ex-minmax": 15.90, "ex-superego": 15.90},
        10: {"ex-baseline": 7.85, "ex-minmax": 7.85, "ex-superego": 7.85},
    },
    9: {  # Synthetic, approximate, same categories
        11: {"ap-baseline": 30.46, "ap-minmax": 30.42, "ap-superego": 30.30},
        12: {"ap-baseline": 30.44, "ap-minmax": 30.43, "ap-superego": 30.34},
        13: {"ap-baseline": 33.58, "ap-minmax": 33.56, "ap-superego": 33.43},
        14: {"ap-baseline": 30.70, "ap-minmax": 30.68, "ap-superego": 30.56},
        15: {"ap-baseline": 36.48, "ap-minmax": 36.46, "ap-superego": 36.30},
        16: {"ap-baseline": 30.21, "ap-minmax": 30.19, "ap-superego": 30.09},
        17: {"ap-baseline": 35.16, "ap-minmax": 35.14, "ap-superego": 34.97},
        18: {"ap-baseline": 31.58, "ap-minmax": 31.55, "ap-superego": 31.42},
        19: {"ap-baseline": 31.31, "ap-minmax": 31.28, "ap-superego": 31.14},
        20: {"ap-baseline": 33.11, "ap-minmax": 33.10, "ap-superego": 32.97},
    },
    10: {  # Synthetic, exact, same categories (all methods agree)
        11: {"ex-baseline": 30.63, "ex-minmax": 30.63, "ex-superego": 30.63},
        12: {"ex-baseline": 30.57, "ex-minmax": 30.57, "ex-superego": 30.57},
        13: {"ex-baseline": 33.73, "ex-minmax": 33.73, "ex-superego": 33.73},
        14: {"ex-baseline": 30.85, "ex-minmax": 30.85, "ex-superego": 30.85},
        15: {"ex-baseline": 36.64, "ex-minmax": 36.64, "ex-superego": 36.64},
        16: {"ex-baseline": 30.41, "ex-minmax": 30.41, "ex-superego": 30.41},
        17: {"ex-baseline": 35.31, "ex-minmax": 35.31, "ex-superego": 35.31},
        18: {"ex-baseline": 31.72, "ex-minmax": 31.72, "ex-superego": 31.72},
        19: {"ex-baseline": 31.48, "ex-minmax": 31.48, "ex-superego": 31.48},
        20: {"ex-baseline": 33.27, "ex-minmax": 33.27, "ex-superego": 33.27},
    },
}


def paper_similarity(table: int, c_id: int, method: str) -> float | None:
    """The paper's similarity % for one table cell, if transcribed."""
    return PAPER_SIMILARITY.get(table, {}).get(c_id, {}).get(method)
