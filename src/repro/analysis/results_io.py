"""Persistence of experiment results.

Regenerating a full table takes minutes at higher scales; these helpers
save a :class:`~repro.analysis.runner.TableRun` (or scalability cells)
to JSON and restore it for later rendering, diffing between code
versions, or feeding external plotting tools.  The format embeds the
library version and every :class:`~repro.core.types.CSJResult` via its
``to_dict`` round trip.
"""

from __future__ import annotations

import json
from pathlib import Path

from .._version import __version__
from ..core.errors import ValidationError
from ..core.types import CSJResult
from ..datasets.couples import PAPER_COUPLES
from .runner import CoupleRun, ScalabilityCell, TableRun

__all__ = [
    "save_table_run",
    "load_table_run",
    "save_scalability_cells",
    "load_scalability_cells",
]

_FORMAT = "repro.table-run.v1"
_SCALABILITY_FORMAT = "repro.scalability.v1"


def save_table_run(path: str | Path, run: TableRun) -> Path:
    """Serialise a table run to JSON; returns the path written."""
    payload = {
        "format": _FORMAT,
        "version": __version__,
        "table": run.table,
        "dataset": run.dataset,
        "epsilon": run.epsilon,
        "scale": run.scale,
        "methods": list(run.methods),
        "rows": [
            {
                "c_id": row.spec.c_id,
                "size_b": row.size_b,
                "size_a": row.size_a,
                "results": {
                    method: result.to_dict()
                    for method, result in row.results.items()
                },
            }
            for row in run.rows
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_table_run(path: str | Path) -> TableRun:
    """Restore a table run saved by :func:`save_table_run`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such results file: {path}")
    payload = json.loads(path.read_text())
    if payload.get("format") != _FORMAT:
        raise ValidationError(
            f"{path} is not a table-run file (format={payload.get('format')!r})"
        )
    specs = {spec.c_id: spec for spec in PAPER_COUPLES}
    run = TableRun(
        table=int(payload["table"]),
        dataset=str(payload["dataset"]),
        epsilon=int(payload["epsilon"]),
        scale=float(payload["scale"]),
        methods=tuple(payload["methods"]),
    )
    for row in payload["rows"]:
        c_id = int(row["c_id"])
        if c_id not in specs:
            raise ValidationError(f"unknown couple cID {c_id} in {path}")
        couple = CoupleRun(
            spec=specs[c_id],
            size_b=int(row["size_b"]),
            size_a=int(row["size_a"]),
        )
        for method, result_payload in row["results"].items():
            couple.results[method] = CSJResult.from_dict(result_payload)
        run.rows.append(couple)
    return run


def save_scalability_cells(
    path: str | Path, cells: list[ScalabilityCell], *, scale: float
) -> Path:
    """Serialise Table 11 cells to JSON."""
    payload = {
        "format": _SCALABILITY_FORMAT,
        "version": __version__,
        "scale": scale,
        "cells": [
            {
                "category": cell.category,
                "step": cell.step,
                "average_size": cell.average_size,
                "similarity_percent": cell.similarity_percent,
                "elapsed_seconds": cell.elapsed_seconds,
            }
            for cell in cells
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_scalability_cells(path: str | Path) -> tuple[list[ScalabilityCell], float]:
    """Restore Table 11 cells; returns ``(cells, scale)``."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such results file: {path}")
    payload = json.loads(path.read_text())
    if payload.get("format") != _SCALABILITY_FORMAT:
        raise ValidationError(
            f"{path} is not a scalability file (format={payload.get('format')!r})"
        )
    cells = [
        ScalabilityCell(
            category=str(cell["category"]),
            step=int(cell["step"]),
            average_size=int(cell["average_size"]),
            similarity_percent=float(cell["similarity_percent"]),
            elapsed_seconds=float(cell["elapsed_seconds"]),
        )
        for cell in payload["cells"]
    ]
    return cells, float(payload["scale"])
