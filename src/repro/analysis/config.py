"""Config-driven experiments: declarative method/couple/parameter grids.

The built-in tables fix the paper's axes; real studies want to vary
them — different couple subsets, a single method across epsilons, a
custom engine, per-method options.  :class:`ExperimentConfig` is a
declarative description of such a run (buildable from a plain dict or a
JSON file), and :func:`run_experiment` executes it into the same
:class:`~repro.analysis.runner.TableRun` structure the renderers and
persistence helpers already understand.

Example JSON::

    {
        "name": "minmax-vs-superego-on-sport",
        "dataset": "vk",
        "scale": 0.01,
        "seed": 7,
        "methods": ["ex-minmax", "ex-superego"],
        "couples": [2, 13, 14],
        "method_options": {"ex-superego": {"t": 64}}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..algorithms import ALGORITHMS
from ..core.errors import ConfigurationError, ValidationError
from ..datasets.couples import DEFAULT_SCALE, PAPER_COUPLES, CoupleSpec
from .runner import TableRun, epsilon_for_dataset, make_generator, run_couple

__all__ = ["ExperimentConfig", "run_experiment"]

#: TableRun.table value marking a custom (non-paper) experiment.
CUSTOM_TABLE = 0


@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative experiment."""

    name: str
    dataset: str = "vk"
    scale: float = DEFAULT_SCALE
    seed: int = 7
    epsilon: int | None = None
    methods: tuple[str, ...] = ("ex-minmax",)
    couples: tuple[int, ...] = tuple(range(1, 11))
    engine: str = "numpy"
    method_options: dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("experiment name must be non-empty")
        if self.dataset not in ("vk", "synthetic"):
            raise ConfigurationError(
                f"dataset must be 'vk' or 'synthetic', got {self.dataset!r}"
            )
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if not self.methods:
            raise ConfigurationError("at least one method is required")
        unknown = [m for m in self.methods if m not in ALGORITHMS]
        if unknown:
            raise ConfigurationError(f"unknown methods: {', '.join(unknown)}")
        known_ids = {spec.c_id for spec in PAPER_COUPLES}
        bad = [c for c in self.couples if c not in known_ids]
        if bad:
            raise ConfigurationError(f"unknown couple cIDs: {bad}")
        if not self.couples:
            raise ConfigurationError("at least one couple is required")
        if self.engine not in ("python", "numpy"):
            raise ConfigurationError(f"unknown engine {self.engine!r}")
        foreign = [m for m in self.method_options if m not in self.methods]
        if foreign:
            raise ConfigurationError(
                f"method_options for methods not in the run: {foreign}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentConfig":
        """Build from a plain dict, rejecting unknown keys."""
        known = {
            "name",
            "dataset",
            "scale",
            "seed",
            "epsilon",
            "methods",
            "couples",
            "engine",
            "method_options",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown configuration keys: {', '.join(sorted(unknown))}"
            )
        normalised = dict(payload)
        if "methods" in normalised:
            normalised["methods"] = tuple(normalised["methods"])
        if "couples" in normalised:
            normalised["couples"] = tuple(int(c) for c in normalised["couples"])
        return cls(**normalised)

    @classmethod
    def from_json(cls, path: str | Path) -> "ExperimentConfig":
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"no such config file: {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValidationError(f"{path} is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValidationError(f"{path} must hold a JSON object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    @property
    def resolved_epsilon(self) -> int:
        if self.epsilon is not None:
            return int(self.epsilon)
        return epsilon_for_dataset(self.dataset)

    def couple_specs(self) -> tuple[CoupleSpec, ...]:
        by_id = {spec.c_id: spec for spec in PAPER_COUPLES}
        return tuple(by_id[c_id] for c_id in self.couples)


def run_experiment(config: ExperimentConfig) -> TableRun:
    """Execute a config; the result renders/persists like any table."""
    generator = make_generator(config.dataset, seed=config.seed)
    run = TableRun(
        table=CUSTOM_TABLE,
        dataset=config.dataset,
        epsilon=config.resolved_epsilon,
        scale=config.scale,
        methods=config.methods,
    )
    for spec in config.couple_specs():
        run.rows.append(
            run_couple(
                spec,
                generator,
                config.methods,
                epsilon=config.resolved_epsilon,
                scale=config.scale,
                engine=config.engine,
                method_options=config.method_options,
            )
        )
    return run
