"""Pruning-effectiveness reporting from the pairing-event counters.

The paper's efficiency story is driven by how many full d-dimensional
comparisons each method avoids: MIN PRUNE cuts whole scan tails, MAX
PRUNE retires leading ``Encd_A`` entries, NO OVERLAP skips the vector
comparison after the cheap part/range test.  This module aggregates the
:class:`~repro.core.types.EventCounts` of the faithful python engines
into a per-method breakdown table — the quantitative companion to the
paper's Section 4 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import get_algorithm, method_display_name
from ..core.errors import ConfigurationError
from ..core.types import Community, EventCounts
from .tables import format_grid

__all__ = ["MethodEventProfile", "profile_events", "render_event_report"]


@dataclass(frozen=True)
class MethodEventProfile:
    """Event breakdown of one method on one couple."""

    method: str
    counts: EventCounts
    n_matched: int
    elapsed_seconds: float
    exhaustive_comparisons: int

    @property
    def comparisons_saved_percent(self) -> float:
        """Share of the exhaustive |B| x |A| comparisons avoided."""
        if self.exhaustive_comparisons == 0:
            return 0.0
        saved = self.exhaustive_comparisons - self.counts.comparisons
        return 100.0 * saved / self.exhaustive_comparisons


def profile_events(
    community_b: Community,
    community_a: Community,
    *,
    epsilon: int,
    methods: tuple[str, ...] = ("ap-baseline", "ap-minmax", "ex-baseline", "ex-minmax"),
    **options: object,
) -> list[MethodEventProfile]:
    """Run the python engines and collect their event breakdowns.

    The python engine is mandatory here: the vectorised engines prune in
    bulk and only account for MATCH / NO MATCH events.
    """
    if "engine" in options:
        raise ConfigurationError("profile_events always uses the python engine")
    exhaustive = community_b.n_users * community_a.n_users
    profiles: list[MethodEventProfile] = []
    for method in methods:
        algorithm = get_algorithm(method, epsilon, engine="python", **options)
        result = algorithm.join(community_b, community_a)
        profiles.append(
            MethodEventProfile(
                method=method,
                counts=result.events,
                n_matched=result.n_matched,
                elapsed_seconds=result.elapsed_seconds,
                exhaustive_comparisons=exhaustive,
            )
        )
    return profiles


def render_event_report(profiles: list[MethodEventProfile]) -> str:
    """Monospace per-method event breakdown table."""
    headers = [
        "Method",
        "MIN PRUNE",
        "MAX PRUNE",
        "NO OVERLAP",
        "NO MATCH",
        "MATCH",
        "full cmps",
        "saved",
        "matched",
        "time",
    ]
    rows = []
    for profile in profiles:
        counts = profile.counts
        rows.append(
            [
                method_display_name(profile.method),
                str(counts.min_prune),
                str(counts.max_prune),
                str(counts.no_overlap),
                str(counts.no_match),
                str(counts.match),
                str(counts.comparisons),
                f"{profile.comparisons_saved_percent:.1f}%",
                str(profile.n_matched),
                f"{profile.elapsed_seconds:.3f}s",
            ]
        )
    return format_grid(headers, rows)
