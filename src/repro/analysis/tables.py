"""Paper-style rendering of regenerated tables.

Every renderer returns a plain string (monospace table) shaped like the
corresponding table of the paper: method tables show ``similarity %
(time s)`` per method per couple, Table 11 shows size/time pairs per
category, and Tables 1/2 show the dataset statistics and couple
metadata.  The benchmarks and the CLI print these strings verbatim.
"""

from __future__ import annotations

from ..algorithms import method_display_name
from ..datasets.couples import CoupleSpec, PAPER_COUPLES
from ..datasets.stats import CategoryTotal
from .runner import ScalabilityCell, Table1Run, TableRun

__all__ = [
    "format_grid",
    "render_method_table",
    "render_method_table_with_reference",
    "render_scalability_table",
    "render_table1",
    "render_table2",
    "method_table_csv",
    "scalability_csv",
]


def format_grid(headers: list[str], rows: list[list[str]]) -> str:
    """Render rows as a fixed-width grid with a header rule."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _method_cell(run: TableRun, row_index: int, method: str) -> str:
    result = run.rows[row_index].results[method]
    return f"{result.similarity_percent:.2f}% ({result.elapsed_seconds:.2f} s)"


def render_method_table(run: TableRun) -> str:
    """One of Tables 3–10 in the paper's layout."""
    prefixes = {method.split("-")[0] for method in run.methods}
    if prefixes == {"ap"}:
        family = "Approximate"
    elif prefixes == {"ex"}:
        family = "Exact"
    else:
        family = "CSJ"
    headers = ["cID", "Categories (B | A)"]
    headers += [method_display_name(method) for method in run.methods]
    headers += ["size_B | size_A"]
    rows = []
    for index, couple_run in enumerate(run.rows):
        spec = couple_run.spec
        row = [str(spec.c_id), spec.label]
        row += [_method_cell(run, index, method) for method in run.methods]
        row += [f"{couple_run.size_b:,} | {couple_run.size_a:,}"]
        rows.append(row)
    label = f"Table {run.table}" if run.table else "Custom experiment"
    title = (
        f"{label}: {family} methods on {run.dataset.upper()} dataset, "
        f"epsilon = {run.epsilon}, scale = {run.scale:g}"
    )
    return title + "\n" + format_grid(headers, rows)


def render_method_table_with_reference(run: TableRun) -> str:
    """Paper-vs-measured layout used in EXPERIMENTS.md."""
    headers = ["cID", "Categories (B | A)"]
    for method in run.methods:
        display = method_display_name(method)
        headers += [f"{display} (paper %)", f"{display} (measured %)"]
    rows = []
    for couple_run in run.rows:
        spec = couple_run.spec
        row = [str(spec.c_id), spec.label]
        for method in run.methods:
            paper = run.paper_value(spec.c_id, method)
            measured = couple_run.similarity_percent(method)
            row += [
                "-" if paper is None else f"{paper:.2f}",
                f"{measured:.2f}",
            ]
        rows.append(row)
    title = (
        f"Table {run.table} (paper vs measured), {run.dataset.upper()}, "
        f"epsilon = {run.epsilon}, scale = {run.scale:g}"
    )
    return title + "\n" + format_grid(headers, rows)


def render_scalability_table(cells: list[ScalabilityCell], *, scale: float) -> str:
    """Table 11: Ex-MinMax sizes and runtimes per category."""
    steps = sorted({cell.step for cell in cells})
    headers = ["Category"]
    for step in steps:
        headers += [f"size_{step}", f"Ex-MinMax_{step}"]
    by_category: dict[str, dict[int, ScalabilityCell]] = {}
    for cell in cells:
        by_category.setdefault(cell.category, {})[cell.step] = cell
    rows = []
    for category, per_step in by_category.items():
        row = [category]
        for step in steps:
            cell = per_step.get(step)
            if cell is None:
                row += ["-", "-"]
            else:
                row += [f"{cell.average_size:,}", f"{cell.elapsed_seconds:.2f} s"]
        rows.append(row)
    title = f"Table 11: Scalability of Exact MinMax on VK, scale = {scale:g}"
    return title + "\n" + format_grid(headers, rows)


def method_table_csv(run: TableRun) -> str:
    """CSV export of a method table for external plotting tools.

    One row per (couple, method) cell with both similarity and time, so
    downstream tools need no unpivoting.
    """
    lines = [
        "table,dataset,epsilon,scale,c_id,category_b,category_a,"
        "size_b,size_a,method,similarity_percent,elapsed_seconds,matched"
    ]
    for couple_run in run.rows:
        spec = couple_run.spec
        for method in run.methods:
            result = couple_run.results[method]
            lines.append(
                ",".join(
                    str(value)
                    for value in (
                        run.table,
                        run.dataset,
                        run.epsilon,
                        run.scale,
                        spec.c_id,
                        spec.category_b,
                        spec.category_a,
                        couple_run.size_b,
                        couple_run.size_a,
                        method,
                        f"{result.similarity_percent:.4f}",
                        f"{result.elapsed_seconds:.6f}",
                        result.n_matched,
                    )
                )
            )
    return "\n".join(lines)


def scalability_csv(cells: list[ScalabilityCell], *, scale: float) -> str:
    """CSV export of Table 11 cells."""
    lines = ["scale,category,step,average_size,similarity_percent,elapsed_seconds"]
    for cell in cells:
        lines.append(
            f"{scale},{cell.category},{cell.step},{cell.average_size},"
            f"{cell.similarity_percent:.4f},{cell.elapsed_seconds:.6f}"
        )
    return "\n".join(lines)


def _ranking_rows(ranking: list[CategoryTotal]) -> list[list[str]]:
    return [
        [str(entry.rank), entry.category, f"{entry.total_likes:,}"]
        for entry in ranking
    ]


def render_table1(run: Table1Run) -> str:
    """Table 1: category rankings by total likes for both datasets."""
    headers = ["rank", "Category", "total_likes"]
    vk = format_grid(headers, _ranking_rows(run.vk_ranking))
    synthetic = format_grid(headers, _ranking_rows(run.synthetic_ranking))
    return (
        f"Table 1 ({run.n_users:,} sampled users per dataset)\n"
        f"\nVK dataset (max likes per dimension: {run.vk_max_per_dimension:,})\n"
        f"{vk}\n"
        "\nSynthetic dataset (max likes per dimension: "
        f"{run.synthetic_max_per_dimension:,})\n{synthetic}"
    )


def render_table2(couples: tuple[CoupleSpec, ...] = PAPER_COUPLES) -> str:
    """Table 2: names and VK page ids of the compared couples."""
    headers = ["cID", "name_B", "id_B", "name_A", "id_A"]
    rows = [
        [
            str(spec.c_id),
            spec.name_b,
            str(spec.page_id_b),
            spec.name_a,
            str(spec.page_id_a),
        ]
        for spec in couples
    ]
    return "Table 2: compared community pairs\n" + format_grid(headers, rows)
