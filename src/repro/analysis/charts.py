"""Dependency-free SVG charts for sweep and scalability curves.

The evaluation's "figures" in this reproduction are tables and curves;
this module renders the curves as standalone SVG files (no matplotlib —
the library's only dependencies stay numpy and networkx).  Two chart
shapes cover everything the harness produces:

* :func:`line_chart` — one or more (x, y) series with axes, ticks and a
  legend; used for epsilon-selectivity and size/time curves;
* :func:`bar_chart` — labelled bars; used for per-method comparisons.

The output is deliberately minimal, readable SVG so the files diff
cleanly across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.errors import ConfigurationError

__all__ = ["Series", "line_chart", "bar_chart", "save_chart"]

#: Color-blind-safe categorical palette (Okabe-Ito).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")

_WIDTH, _HEIGHT = 640, 400
_MARGIN_LEFT, _MARGIN_RIGHT = 70, 20
_MARGIN_TOP, _MARGIN_BOTTOM = 30, 50


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    label: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError(f"series {self.label!r} has no points")


def _bounds(series: list[Series]) -> tuple[float, float, float, float]:
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(0.0, min(ys)), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    return x_min, x_max, y_min, y_max


def _scale(value: float, lo: float, hi: float, out_lo: float, out_hi: float) -> float:
    return out_lo + (value - lo) / (hi - lo) * (out_hi - out_lo)


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def _axes(x_min, x_max, y_min, y_max, x_label, y_label, title) -> list[str]:
    plot_right = _WIDTH - _MARGIN_RIGHT
    plot_bottom = _HEIGHT - _MARGIN_BOTTOM
    parts = [
        f'<text x="{_WIDTH / 2:.0f}" y="18" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{title}</text>',
        f'<line x1="{_MARGIN_LEFT}" y1="{plot_bottom}" x2="{plot_right}" '
        f'y2="{plot_bottom}" stroke="#333"/>',
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
        f'y2="{plot_bottom}" stroke="#333"/>',
        f'<text x="{(_MARGIN_LEFT + plot_right) / 2:.0f}" y="{_HEIGHT - 10}" '
        f'text-anchor="middle" font-size="12">{x_label}</text>',
        f'<text x="16" y="{(_MARGIN_TOP + plot_bottom) / 2:.0f}" '
        f'text-anchor="middle" font-size="12" '
        f'transform="rotate(-90 16 {(_MARGIN_TOP + plot_bottom) / 2:.0f})">'
        f"{y_label}</text>",
    ]
    for tick in _ticks(x_min, x_max):
        x = _scale(tick, x_min, x_max, _MARGIN_LEFT, plot_right)
        parts.append(
            f'<text x="{x:.1f}" y="{plot_bottom + 16}" text-anchor="middle" '
            f'font-size="10">{tick:g}</text>'
        )
        parts.append(
            f'<line x1="{x:.1f}" y1="{plot_bottom}" x2="{x:.1f}" '
            f'y2="{plot_bottom + 4}" stroke="#333"/>'
        )
    for tick in _ticks(y_min, y_max):
        y = _scale(tick, y_min, y_max, plot_bottom, _MARGIN_TOP)
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{y + 3:.1f}" text-anchor="end" '
            f'font-size="10">{tick:g}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_WIDTH - _MARGIN_RIGHT}" y2="{y:.1f}" stroke="#eee"/>'
        )
    return parts


def line_chart(
    series: list[Series],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series as an SVG line chart string."""
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    x_min, x_max, y_min, y_max = _bounds(series)
    plot_right = _WIDTH - _MARGIN_RIGHT
    plot_bottom = _HEIGHT - _MARGIN_BOTTOM
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    parts.extend(_axes(x_min, x_max, y_min, y_max, x_label, y_label, title))
    for index, one in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        coordinates = " ".join(
            f"{_scale(x, x_min, x_max, _MARGIN_LEFT, plot_right):.1f},"
            f"{_scale(y, y_min, y_max, plot_bottom, _MARGIN_TOP):.1f}"
            for x, y in one.points
        )
        parts.append(
            f'<polyline points="{coordinates}" fill="none" stroke="{color}" '
            'stroke-width="2"/>'
        )
        for x, y in one.points:
            cx = _scale(x, x_min, x_max, _MARGIN_LEFT, plot_right)
            cy = _scale(y, y_min, y_max, plot_bottom, _MARGIN_TOP)
            parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3" fill="{color}"/>')
        legend_y = _MARGIN_TOP + 14 * index
        parts.append(
            f'<rect x="{plot_right - 150}" y="{legend_y}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{plot_right - 136}" y="{legend_y + 9}" '
            f'font-size="11">{one.label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(
    labels: list[str],
    values: list[float],
    *,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render labelled bars as an SVG string."""
    if not labels or len(labels) != len(values):
        raise ConfigurationError("bar_chart needs matching labels and values")
    y_min, y_max = min(0.0, min(values)), max(values) or 1.0
    plot_right = _WIDTH - _MARGIN_RIGHT
    plot_bottom = _HEIGHT - _MARGIN_BOTTOM
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    parts.extend(_axes(0, len(labels), y_min, y_max, "", y_label, title))
    slot = (plot_right - _MARGIN_LEFT) / len(labels)
    for index, (label, value) in enumerate(zip(labels, values)):
        color = PALETTE[index % len(PALETTE)]
        x = _MARGIN_LEFT + index * slot + slot * 0.15
        y = _scale(value, y_min, y_max, plot_bottom, _MARGIN_TOP)
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{slot * 0.7:.1f}" '
            f'height="{plot_bottom - y:.1f}" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + slot * 0.35:.1f}" y="{plot_bottom + 16}" '
            f'text-anchor="middle" font-size="10">{label}</text>'
        )
        parts.append(
            f'<text x="{x + slot * 0.35:.1f}" y="{y - 4:.1f}" '
            f'text-anchor="middle" font-size="10">{value:g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_chart(path: str | Path, svg: str) -> Path:
    """Write an SVG string to disk (suffix normalised to .svg)."""
    path = Path(path).with_suffix(".svg")
    path.write_text(svg)
    return path
