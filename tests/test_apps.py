"""Tests for the recommendation applications (repro.apps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    BroadcastPlanner,
    FriendRecommender,
    PartnerRecommender,
    suggest_content_features,
)
from repro.core.errors import ConfigurationError
from repro.core.types import Community


@pytest.fixture
def anchor() -> Community:
    rng = np.random.default_rng(1)
    return Community("Anchor", rng.integers(0, 40, size=(60, 6)), "Sport")


def overlapping_candidate(
    anchor: Community, name: str, fraction: float, seed: int
) -> Community:
    """Candidate sharing ``fraction`` of the anchor's users (within eps=1)."""
    rng = np.random.default_rng(seed)
    n_shared = int(fraction * len(anchor))
    rows = rng.choice(len(anchor), size=n_shared, replace=False)
    shared = np.maximum(
        anchor.vectors[rows] + rng.integers(-1, 2, size=(n_shared, anchor.n_dims)), 0
    )
    fresh = rng.integers(500, 900, size=(len(anchor) - n_shared, anchor.n_dims))
    return Community(name, np.concatenate([shared, fresh]), "Sport")


class TestFriendRecommender:
    def test_suggestions_match_join(self, anchor):
        candidate = overlapping_candidate(anchor, "Other", 0.4, seed=2)
        recommender = FriendRecommender(1, method="ex-minmax")
        suggestions = recommender.recommend(anchor, candidate)
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.community_b == "Anchor"
            assert "similar interests" in suggestion.message
            diff = np.abs(
                anchor.vectors[suggestion.b_index]
                - candidate.vectors[suggestion.a_index]
            ).max()
            assert diff <= 1

    def test_no_suggestions_for_disjoint_audiences(self, anchor):
        far = Community("Far", np.full((60, 6), 10_000, dtype=np.int64))
        assert FriendRecommender(1).recommend(anchor, far) == []


class TestPartnerRecommender:
    def test_ranking_follows_overlap(self, anchor):
        high = overlapping_candidate(anchor, "High", 0.5, seed=3)
        low = overlapping_candidate(anchor, "Low", 0.1, seed=4)
        scores = PartnerRecommender(1).rank(anchor, [low, high])
        assert [score.candidate for score in scores] == ["High", "Low"]
        assert scores[0].similarity > scores[1].similarity

    def test_size_ratio_violations_skipped(self, anchor):
        rng = np.random.default_rng(5)
        giant = Community("Giant", rng.integers(0, 40, size=(500, 6)))
        scores = PartnerRecommender(1).rank(anchor, [giant])
        assert scores == []

    def test_shortlist_filters_and_refines(self, anchor):
        high = overlapping_candidate(anchor, "High", 0.5, seed=6)
        low = overlapping_candidate(anchor, "Low", 0.02, seed=7)
        recommender = PartnerRecommender(1, method="ap-minmax")
        shortlist = recommender.shortlist(
            anchor, [high, low], min_similarity=0.2, refine_method="ex-minmax"
        )
        names = [score.candidate for score in shortlist]
        assert names == ["High"]
        assert shortlist[0].result.exact

    def test_deterministic_tie_break_by_name(self, anchor):
        twin_a = overlapping_candidate(anchor, "Alpha", 0.3, seed=8)
        twin_b = Community("Beta", twin_a.vectors, "Sport")
        scores = PartnerRecommender(1).rank(anchor, [twin_b, twin_a])
        assert [score.candidate for score in scores] == ["Alpha", "Beta"]


class TestBroadcastPlanner:
    def test_slots_ordered_by_similarity(self, anchor):
        adidas = overlapping_candidate(anchor, "Adidas", 0.4, seed=9)
        puma = overlapping_candidate(anchor, "Puma", 0.2, seed=10)
        slots = BroadcastPlanner(1).plan(anchor, [puma, adidas])
        assert [slot.hour_rank for slot in slots] == [1, 2]
        assert slots[0].target_community == "Adidas"
        assert "Anchor" in slots[0].audience

    def test_empty_candidates(self, anchor):
        assert BroadcastPlanner(1).plan(anchor, []) == []


class TestContentFeatures:
    def test_roles_split_on_threshold(self, anchor):
        coherent = overlapping_candidate(anchor, "Coherent", 0.5, seed=11)
        diverse = overlapping_candidate(anchor, "Diverse", 0.02, seed=12)
        suggestions = suggest_content_features(
            anchor, [coherent, diverse], epsilon=1, coherent_threshold=0.2
        )
        roles = {s.feature: s.role for s in suggestions}
        assert roles["Coherent"] == "coherent"
        assert roles["Diverse"] == "diverse"

    def test_invalid_threshold(self, anchor):
        with pytest.raises(ConfigurationError):
            suggest_content_features(anchor, [], epsilon=1, coherent_threshold=2.0)
