"""Tests for the cross-method self-check (repro.analysis.selfcheck)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.selfcheck import CheckOutcome, SelfCheckReport, run_selfcheck
from repro.core.types import Community
from tests.conftest import random_couple


@pytest.fixture(scope="module")
def report():
    vectors_b, vectors_a = random_couple(400)
    return run_selfcheck(
        Community("B", vectors_b), Community("A", vectors_a), epsilon=1
    )


class TestRunSelfCheck:
    def test_all_pass_on_healthy_system(self, report):
        failing = [o for o in report.outcomes if not o.passed]
        assert report.passed, f"failed checks: {[o.name for o in failing]}"

    def test_every_method_has_a_result(self, report):
        assert set(report.results) == {
            "ap-baseline",
            "ap-minmax",
            "ap-superego",
            "ex-baseline",
            "ex-minmax",
            "ex-superego",
        }

    def test_check_names_cover_the_battery(self, report):
        names = " ".join(outcome.name for outcome in report.outcomes)
        assert "engines agree" in names
        assert "CSF segmentation" in names
        assert "hopcroft-karp >= csf" in names
        assert "brute-force match" in names

    def test_render_mentions_verdict(self, report):
        rendered = report.render()
        assert "ALL CHECKS PASSED" in rendered
        assert rendered.count("[PASS]") == len(report.outcomes)

    def test_vk_couple_passes(self, vk_mini_couple):
        community_b, community_a = vk_mini_couple
        assert run_selfcheck(community_b, community_a, epsilon=1).passed

    def test_synthetic_couple_passes(self, synthetic_mini_couple):
        community_b, community_a = synthetic_mini_couple
        assert run_selfcheck(community_b, community_a, epsilon=15000).passed

    def test_brute_force_skipped_above_budget(self):
        rng = np.random.default_rng(0)
        big_b = Community("B", rng.integers(0, 500, size=(600, 4)))
        big_a = Community("A", rng.integers(0, 500, size=(700, 4)))
        report = run_selfcheck(big_b, big_a, epsilon=1)
        brute = next(
            o for o in report.outcomes if "brute-force" in o.name
        )
        assert brute.passed
        assert "skipped" in brute.detail


class TestReportShape:
    def test_failed_outcome_fails_report(self):
        report = SelfCheckReport(
            outcomes=[
                CheckOutcome("good", True),
                CheckOutcome("bad", False, "broken"),
            ],
            results={},
        )
        assert not report.passed
        rendered = report.render()
        assert "[FAIL] bad — broken" in rendered
        assert "CHECKS FAILED" in rendered
