"""Tests for the encoded-level replays of Figures 2 and 3."""

from __future__ import annotations

import pytest

from repro.algorithms.encoded_replay import (
    FIGURE2_A,
    FIGURE2_B,
    FIGURE2_ORACLE,
    FIGURE3_A,
    FIGURE3_B,
    FIGURE3_ORACLE,
    EncodedA,
    EncodedB,
    replay_ap_minmax,
    replay_ex_minmax,
)
from repro.core.errors import ConfigurationError, ValidationError


class TestFigure2Verbatim:
    """The Ap-MinMax replay must match the paper's Figure 2 exactly."""

    @pytest.fixture(scope="class")
    def result(self):
        return replay_ap_minmax(FIGURE2_B, FIGURE2_A, FIGURE2_ORACLE)

    def test_eight_instances(self, result):
        assert len(result.instances) == 8

    def test_final_matches(self, result):
        assert result.matches == [("b2", "a3"), ("b5", "a5")]

    def test_instance_1(self, result):
        assert result.instances[0].lines == [
            "* b1:40 IN a1:(30, 55) => NO OVERLAP",
            "* b1:40 IN a2:(33, 60) => NO OVERLAP",
            "* b1:40 < a3:(42, 72) => MIN PRUNE",
        ]

    def test_instance_2_matches_b2_with_a3(self, result):
        assert result.instances[1].lines[-1] == "* b2:48 IN a3:(42, 72) => MATCH"

    def test_instances_3_and_4_are_max_prunes(self, result):
        assert result.instances[2].lines == ["* b3:67 > a1:(30, 55) => MAX PRUNE"]
        assert result.instances[3].lines == ["* b3:67 > a2:(33, 60) => MAX PRUNE"]

    def test_instance_5_columns_reflect_offset_and_used(self, result):
        # After two offset advances and a3's match, only a4, a5 remain.
        assert result.instances[4].column_a == ["a4:(45, 73)", "a5:(50, 80)"]
        assert result.instances[4].column_b == ["b3:67", "b4:71", "b5:74"]

    def test_instance_6_b4_fails_everywhere(self, result):
        assert result.instances[5].lines == [
            "* b4:71 IN a4:(45, 73) => NO OVERLAP",
            "* b4:71 IN a5:(50, 80) => NO MATCH",
        ]

    def test_instance_7_b5_max_prunes_a4(self, result):
        assert result.instances[6].lines == ["* b5:74 > a4:(45, 73) => MAX PRUNE"]

    def test_instance_8_final_match(self, result):
        assert result.instances[7].lines == ["* b5:74 IN a5:(50, 80) => MATCH"]

    def test_render_contains_every_instance_header(self, result):
        rendered = result.render()
        for number in range(1, 9):
            assert f"<< {number} >>" in rendered
        assert rendered.endswith("MATCHES = {<b2, a3>, <b5, a5>}")


class TestFigure3Verbatim:
    """The Ex-MinMax replay must match the paper's Figure 3 exactly."""

    @pytest.fixture(scope="class")
    def result(self):
        return replay_ex_minmax(FIGURE3_B, FIGURE3_A, FIGURE3_ORACLE)

    def test_six_instances(self, result):
        assert len(result.instances) == 6

    def test_instance_1_accumulates_and_flushes(self, result):
        lines = result.instances[0].lines
        assert lines[0] == "* b1:40 IN a1:(30, 55) => MATCH (maxV = 55)"
        assert lines[1] == "* b1:40 IN a2:(33, 60) => NO OVERLAP"
        assert lines[2] == "* b1:40 IN a3:(38, 57) => MATCH (maxV = 57)"
        assert lines[3] == "* b1:40 < a4:(45, 73) => MIN PRUNE (b2 > maxV)"
        assert lines[4] == "  => CSF(<b1, a1>, <b1, a3>)"

    def test_instance_2_keeps_segment_open(self, result):
        lines = result.instances[1].lines
        assert lines[-1] == "* b2:58 IN a5:(50, 80) => NO MATCH (b3 < maxV)"
        assert not any("CSF" in line for line in lines)

    def test_instance_2_columns_dropped_flushed_entries(self, result):
        # a1 and a3 were consumed by the first CSF flush.
        assert result.instances[1].column_a == [
            "a2:(33, 60)",
            "a4:(45, 73)",
            "a5:(50, 80)",
        ]

    def test_instance_3_max_prune_with_live_maxv(self, result):
        assert result.instances[2].max_v == 73
        assert result.instances[2].lines == ["* b3:67 > a2:(33, 60) => MAX PRUNE"]

    def test_instance_4_edge_case_flush(self, result):
        lines = result.instances[3].lines
        assert lines[0] == "* b3:67 IN a4:(45, 73) => MATCH (maxV = 73)"
        assert lines[1] == "* b3:67 IN a5:(50, 80) => NO MATCH (b4 > maxV)"
        assert lines[2] == "  => CSF(<b2, a2>, <b2, a4>, <b3, a4>)"

    def test_instance_5_no_overlap_only(self, result):
        assert result.instances[4].max_v == 0
        assert result.instances[4].lines == [
            "* b4:74 IN a5:(50, 80) => NO OVERLAP"
        ]

    def test_instance_6_final_max_prune(self, result):
        assert result.instances[5].lines == ["* b5:81 > a5:(50, 80) => MAX PRUNE"]

    def test_csf_selects_maximum_per_segment(self, result):
        # Segment 1 covers b1 once; segment 2 covers both b2 and b3.
        assert len(result.matches) == 3
        matched_b = {b for b, _ in result.matches}
        assert matched_b == {"b1", "b2", "b3"}

    def test_matches_are_one_to_one(self, result):
        a_side = [a for _, a in result.matches]
        assert len(set(a_side)) == len(a_side)


class TestReplayValidation:
    def test_unsorted_b_rejected(self):
        entries = [EncodedB("b1", 50), EncodedB("b2", 40)]
        with pytest.raises(ValidationError, match="ascend"):
            replay_ap_minmax(entries, FIGURE2_A, FIGURE2_ORACLE)

    def test_unsorted_a_rejected(self):
        entries = [EncodedA("a1", 50, 60), EncodedA("a2", 40, 70)]
        with pytest.raises(ValidationError, match="ascend"):
            replay_ap_minmax(FIGURE2_B, entries, FIGURE2_ORACLE)

    def test_missing_oracle_entry(self):
        with pytest.raises(ConfigurationError, match="no outcome"):
            replay_ap_minmax(FIGURE2_B, FIGURE2_A, {})

    def test_invalid_outcome(self):
        oracle = dict(FIGURE2_ORACLE)
        oracle[("b1", "a1")] = "MAYBE"
        with pytest.raises(ConfigurationError, match="unknown oracle outcome"):
            replay_ap_minmax(FIGURE2_B, FIGURE2_A, oracle)
