"""Unit tests for the MinMax encoding scheme (repro.core.encoding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoding import MinMaxEncoder, split_dimensions
from repro.core.errors import ConfigurationError

#: The worked example of Figure 1.
FIGURE1_VECTOR = np.array(
    [1, 0, 0, 0, 2, 2,
     0, 0, 2, 1, 1, 5, 4,
     0, 3, 0, 0, 1, 4, 1,
     0, 3, 5, 4, 1, 2, 4]
)


class TestSplitDimensions:
    def test_figure1_layout(self):
        # d = 27 with 4 parts -> sizes 6, 7, 7, 7 (remainder to the last).
        slices = split_dimensions(27, 4)
        sizes = [sl.stop - sl.start for sl in slices]
        assert sizes == [6, 7, 7, 7]

    def test_even_split(self):
        sizes = [sl.stop - sl.start for sl in split_dimensions(8, 4)]
        assert sizes == [2, 2, 2, 2]

    def test_slices_are_contiguous_and_cover(self):
        slices = split_dimensions(11, 3)
        assert slices[0].start == 0
        assert slices[-1].stop == 11
        for left, right in zip(slices, slices[1:]):
            assert left.stop == right.start

    def test_single_part(self):
        assert split_dimensions(5, 1) == [slice(0, 5)]

    def test_parts_equal_dims(self):
        sizes = [sl.stop - sl.start for sl in split_dimensions(4, 4)]
        assert sizes == [1, 1, 1, 1]

    def test_more_parts_than_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            split_dimensions(3, 4)

    def test_zero_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            split_dimensions(3, 0)


class TestFigure1:
    """The encoding must reproduce the paper's worked example exactly."""

    def setup_method(self):
        self.encoder = MinMaxEncoder(epsilon=1, n_parts=4)
        self.description = self.encoder.describe(FIGURE1_VECTOR)

    def test_part_sums(self):
        assert self.description["parts"] == [5, 13, 9, 19]

    def test_encoded_id(self):
        assert self.description["encoded_id"] == 46

    def test_part_ranges(self):
        assert self.description["part_ranges"] == [(2, 11), (8, 20), (5, 16), (13, 26)]

    def test_encoded_min_max(self):
        assert self.description["encoded_min"] == 28
        assert self.description["encoded_max"] == 73


class TestEncoder:
    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            MinMaxEncoder(epsilon=-1)

    def test_targets_sorted_by_encoded_id(self):
        rng = np.random.default_rng(0)
        vectors = rng.integers(0, 9, size=(20, 8))
        targets = MinMaxEncoder(1, 4).encode_targets(vectors)
        assert np.all(np.diff(targets.encoded_id) >= 0)

    def test_targets_real_ids_permutation(self):
        rng = np.random.default_rng(1)
        vectors = rng.integers(0, 9, size=(15, 8))
        targets = MinMaxEncoder(1, 4).encode_targets(vectors)
        assert sorted(targets.real_ids.tolist()) == list(range(15))

    def test_targets_encoded_id_is_row_sum(self):
        rng = np.random.default_rng(2)
        vectors = rng.integers(0, 9, size=(10, 8))
        targets = MinMaxEncoder(1, 4).encode_targets(vectors)
        for position in range(10):
            row = vectors[targets.real_ids[position]]
            assert targets.encoded_id[position] == row.sum()

    def test_candidates_sorted_by_encoded_min(self):
        rng = np.random.default_rng(3)
        vectors = rng.integers(0, 9, size=(20, 8))
        candidates = MinMaxEncoder(1, 4).encode_candidates(vectors)
        assert np.all(np.diff(candidates.encoded_min) >= 0)

    def test_candidate_window_encloses_own_id(self):
        # A vector trivially matches itself, so its encoded id must fall
        # in its own [Min, Max] window.
        rng = np.random.default_rng(4)
        vectors = rng.integers(0, 9, size=(20, 8))
        encoder = MinMaxEncoder(epsilon=2, n_parts=4)
        candidates = encoder.encode_candidates(vectors)
        sums = vectors.sum(axis=1)
        for position in range(20):
            own_sum = sums[candidates.real_ids[position]]
            assert candidates.encoded_min[position] <= own_sum
            assert own_sum <= candidates.encoded_max[position]

    def test_encoded_max_is_id_plus_d_epsilon(self):
        rng = np.random.default_rng(5)
        vectors = rng.integers(0, 9, size=(10, 12))
        epsilon = 3
        candidates = MinMaxEncoder(epsilon, 4).encode_candidates(vectors)
        sums = vectors.sum(axis=1)
        for position in range(10):
            own_sum = sums[candidates.real_ids[position]]
            assert candidates.encoded_max[position] == own_sum + 12 * epsilon

    def test_min_clamped_at_zero(self):
        vectors = np.zeros((1, 6), dtype=np.int64)
        candidates = MinMaxEncoder(epsilon=5, n_parts=2).encode_candidates(vectors)
        assert candidates.encoded_min[0] == 0
        assert candidates.encoded_max[0] == 30

    def test_epsilon_zero_window_is_point(self):
        vectors = np.array([[2, 3, 4, 5]], dtype=np.int64)
        candidates = MinMaxEncoder(epsilon=0, n_parts=2).encode_candidates(vectors)
        assert candidates.encoded_min[0] == candidates.encoded_max[0] == 14

    def test_parts_overlap_true_for_identical(self):
        vectors = np.array([[3, 1, 4, 1, 5, 9]], dtype=np.int64)
        encoder = MinMaxEncoder(epsilon=1, n_parts=3)
        targets = encoder.encode_targets(vectors)
        candidates = encoder.encode_candidates(vectors)
        assert MinMaxEncoder.parts_overlap(
            targets.parts[0], candidates.range_min[0], candidates.range_max[0]
        )

    def test_parts_overlap_false_when_part_outside(self):
        encoder = MinMaxEncoder(epsilon=1, n_parts=2)
        target = encoder.encode_targets(np.array([[10, 10, 0, 0]]))
        candidate = encoder.encode_candidates(np.array([[0, 0, 10, 10]]))
        assert not MinMaxEncoder.parts_overlap(
            target.parts[0], candidate.range_min[0], candidate.range_max[0]
        )

    def test_entry_labels(self):
        encoder = MinMaxEncoder(epsilon=1, n_parts=2)
        targets = encoder.encode_targets(np.array([[1, 1, 1, 1]]))
        candidates = encoder.encode_candidates(np.array([[1, 1, 1, 1]]))
        assert targets.entry_label(0) == "b1:4"
        assert candidates.entry_label(0) == "a1:(0, 8)"


class TestNecessaryCondition:
    """Any per-dimension epsilon match must survive the encoding filters.

    This is the no-false-misses guarantee the pruning relies on.
    """

    @pytest.mark.parametrize("epsilon", [0, 1, 3])
    @pytest.mark.parametrize("n_parts", [1, 2, 4])
    def test_matches_always_pass_filters(self, epsilon, n_parts):
        rng = np.random.default_rng(42 + epsilon + n_parts)
        vectors_b = rng.integers(0, 6, size=(30, 8))
        vectors_a = np.maximum(
            vectors_b + rng.integers(-epsilon, epsilon + 1, size=(30, 8)), 0
        )
        encoder = MinMaxEncoder(epsilon, n_parts)
        targets = encoder.encode_targets(vectors_b)
        candidates = encoder.encode_candidates(vectors_a)
        pos_b = {int(real): i for i, real in enumerate(targets.real_ids)}
        pos_a = {int(real): j for j, real in enumerate(candidates.real_ids)}
        for row in range(30):
            if np.abs(vectors_b[row] - vectors_a[row]).max() > epsilon:
                continue  # clamping may have pushed the pair apart
            i, j = pos_b[row], pos_a[row]
            assert candidates.encoded_min[j] <= targets.encoded_id[i]
            assert targets.encoded_id[i] <= candidates.encoded_max[j]
            assert MinMaxEncoder.parts_overlap(
                targets.parts[i], candidates.range_min[j], candidates.range_max[j]
            )
