"""Tests for the SQLite-backed persistent catalog (repro.catalog)."""

from __future__ import annotations

import itertools
import sqlite3
import threading

import numpy as np
import pytest

from repro import csj_similarity
from repro.apps import top_k_pairs
from repro.analysis.sweeps import catalog_epsilon_sweep, epsilon_sweep
from repro.catalog import (
    CATALOG_COUNTERS,
    PersistentCatalog,
    content_fingerprint,
    init_catalog_metrics,
)
from repro.core.errors import ConfigurationError, ValidationError
from repro.core.types import Community
from repro.datasets.catalog import CommunityCatalog
from repro.engine.envelope import community_envelope, envelopes_separated
from repro.obs import MetricsRegistry
from repro.serve import CatalogBackedStore, UnknownCommunityError
from tests.conftest import banded_community_fleet

pytestmark = pytest.mark.catalog


def make_community(name: str, seed: int, n: int = 20, d: int = 4) -> Community:
    rng = np.random.default_rng(seed)
    return Community(name, rng.integers(0, 20, size=(n, d)), "Sport")


def register_fleet(catalog: PersistentCatalog, fleet: list[Community]) -> list[str]:
    keys = []
    for community in fleet:
        catalog.register(community.name, community)
        keys.append(community.name)
    return keys


def brute_force_surviving_pairs(
    fleet: list[Community], epsilon: int
) -> set[tuple[str, str]]:
    """Oracle: unordered surviving pairs by the in-memory envelope screen."""
    envelopes = {c.name: community_envelope(c) for c in fleet}
    survivors = set()
    for first, second in itertools.combinations(sorted(envelopes), 2):
        if not envelopes_separated(envelopes[first], envelopes[second], epsilon):
            survivors.add((first, second))
    return survivors


@pytest.fixture
def catalog(tmp_path) -> PersistentCatalog:
    with PersistentCatalog(tmp_path / "catalog.db") as cat:
        yield cat


class TestRegistry:
    def test_register_and_get(self, catalog):
        community = make_community("nike", 1)
        catalog.register("nike", community)
        loaded = catalog.get("nike")
        assert loaded.name == "nike"
        assert loaded.category == "Sport"
        assert np.array_equal(loaded.vectors, community.vectors)

    def test_keys_sorted_len_contains(self, catalog):
        catalog.register("b", make_community("B", 1))
        catalog.register("a", make_community("A", 2))
        assert catalog.keys() == ["a", "b"]
        assert len(catalog) == 2
        assert "a" in catalog and "ghost" not in catalog

    def test_metadata_without_vector_io(self, catalog):
        community = make_community("x", 3, n=31, d=5)
        catalog.register("x", community)
        record = catalog.metadata("x")
        assert (record.n_users, record.n_dims) == (31, 5)
        assert record.fingerprint == content_fingerprint(community.vectors)
        assert catalog.io_stats()["repro_catalog_vector_loads_total"] == 0

    def test_envelope_matches_in_memory(self, catalog):
        community = make_community("x", 4)
        catalog.register("x", community)
        stored = catalog.envelope("x")
        expected = community_envelope(community)
        assert np.array_equal(stored.mins, expected.mins)
        assert np.array_equal(stored.maxs, expected.maxs)

    def test_get_unknown(self, catalog):
        with pytest.raises(ValidationError, match="registered"):
            catalog.get("ghost")
        with pytest.raises(ValidationError, match="registered"):
            catalog.metadata("ghost")

    def test_remove(self, catalog):
        catalog.register("x", make_community("X", 5))
        catalog.remove("x")
        assert catalog.keys() == []
        with pytest.raises(ValidationError):
            catalog.remove("x")

    @pytest.mark.parametrize("key", ["", "a|b", "a/b", "a\\b"])
    def test_invalid_keys_rejected(self, catalog, key):
        with pytest.raises(ValidationError):
            catalog.register(key, make_community("X", 6))

    def test_replace_updates_fingerprint(self, catalog):
        catalog.register("k", make_community("Old", 7))
        old = catalog.metadata("k").fingerprint
        catalog.register("k", make_community("New", 8))
        assert catalog.metadata("k").fingerprint != old
        assert catalog.get("k").name == "New"

    def test_register_many_bulk(self, catalog):
        fleet = banded_community_fleet(2, 3)
        catalog.register_many({c.name: c for c in fleet})
        assert len(catalog) == len(fleet)
        stats = catalog.io_stats()
        assert stats["repro_catalog_registrations_total"] == len(fleet)

    def test_metrics_mirrored(self, tmp_path):
        metrics = MetricsRegistry()
        init_catalog_metrics(metrics)
        with PersistentCatalog(tmp_path / "m.db", metrics=metrics) as cat:
            cat.register("a", make_community("A", 9))
            cat.get("a")
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["repro_catalog_registrations_total"] == 1
        assert snapshot["repro_catalog_vector_loads_total"] == 1
        for name in CATALOG_COUNTERS:
            assert name in snapshot


class TestWindowQuery:
    def test_candidates_match_brute_force(self, catalog):
        fleet = banded_community_fleet(3, 4, seed=11)
        register_fleet(catalog, fleet)
        envelopes = {c.name: community_envelope(c) for c in fleet}
        for epsilon in (0, 1, 5):
            for probe in fleet:
                expected = sorted(
                    other.name
                    for other in fleet
                    if other.name != probe.name
                    and not envelopes_separated(
                        envelopes[probe.name], envelopes[other.name], epsilon
                    )
                )
                assert catalog.candidate_keys(probe.name, epsilon) == expected

    def test_screening_loads_no_vectors(self, catalog):
        fleet = banded_community_fleet(3, 3, seed=12)
        register_fleet(catalog, fleet)
        catalog.candidate_keys(fleet[0].name, 2)
        catalog.candidate_pairs(2)
        stats = catalog.io_stats()
        assert stats["repro_catalog_vector_loads_total"] == 0
        assert stats["repro_catalog_window_queries_total"] == 2

    def test_negative_epsilon_rejected(self, catalog):
        catalog.register("a", make_community("A", 13))
        with pytest.raises(ValidationError, match="epsilon"):
            catalog.candidate_keys("a", -1)
        with pytest.raises(ValidationError, match="epsilon"):
            catalog.candidate_pairs(-1)

    def test_window_query_uses_index(self, catalog):
        catalog.register("a", make_community("A", 14))
        assert "idx_communities_window" in catalog.window_query_plan()

    def test_dimension_mismatch_never_survives(self, catalog):
        catalog.register("d4", make_community("D4", 15, d=4))
        catalog.register("d6", make_community("D6", 15, d=6))
        assert catalog.candidate_keys("d4", 1000) == []
        assert catalog.candidate_pairs(1000) == []


class TestWindowQueryAtScale:
    """The acceptance-scale screen: thousands of on-disk communities."""

    N_BANDS = 200
    PER_BAND = 10  # 2000 communities

    @pytest.fixture(scope="class")
    def big_catalog(self, tmp_path_factory):
        fleet = banded_community_fleet(
            self.N_BANDS, self.PER_BAND, users=3, dims=4, seed=16, band_gap=100
        )
        path = tmp_path_factory.mktemp("scale") / "big.db"
        with PersistentCatalog(path) as cat:
            cat.register_many({c.name: c for c in fleet})
            yield cat, fleet

    def test_screen_is_exact_and_vector_free(self, big_catalog):
        catalog, fleet = big_catalog
        assert len(catalog) == self.N_BANDS * self.PER_BAND
        envelopes = {c.name: community_envelope(c) for c in fleet}
        probe = fleet[self.PER_BAND * 100]  # a mid-band community
        before = catalog.io_stats()
        survivors = catalog.candidate_keys(probe.name, 2)
        after = catalog.io_stats()
        expected = sorted(
            other.name
            for other in fleet
            if other.name != probe.name
            and not envelopes_separated(
                envelopes[probe.name], envelopes[other.name], 2
            )
        )
        assert survivors == expected
        assert 0 < len(survivors) < len(fleet) // 10
        # Pruned communities' vectors are never read, and the indexed
        # stage-1 scan touches O(survivors) rows, not the whole table.
        assert after["repro_catalog_vector_loads_total"] == 0
        assert (
            before["repro_catalog_vector_loads_total"]
            == after["repro_catalog_vector_loads_total"]
        )
        scanned = (
            after["repro_catalog_rows_scanned_total"]
            - before["repro_catalog_rows_scanned_total"]
        )
        assert scanned < len(fleet) // 10

    def test_cold_start_touches_only_requested_rows(self, big_catalog):
        catalog, fleet = big_catalog
        with PersistentCatalog(catalog.path) as cold:
            cold.candidate_keys(fleet[0].name, 1)
            stats = cold.io_stats()
            assert stats["repro_catalog_vector_loads_total"] == 0
            cold.get(fleet[0].name)
            assert cold.io_stats()["repro_catalog_vector_loads_total"] == 1


class TestCandidatePairs:
    def test_pairs_match_brute_force(self, catalog):
        fleet = banded_community_fleet(3, 4, seed=17)
        register_fleet(catalog, fleet)
        for epsilon in (0, 1, 4):
            assert (
                set(catalog.candidate_pairs(epsilon))
                == brute_force_surviving_pairs(fleet, epsilon)
            )

    def test_keys_subset(self, catalog):
        fleet = banded_community_fleet(2, 4, seed=18)
        register_fleet(catalog, fleet)
        subset = [c.name for c in fleet[:5]]
        expected = {
            pair
            for pair in brute_force_surviving_pairs(fleet, 2)
            if pair[0] in subset and pair[1] in subset
        }
        assert set(catalog.candidate_pairs(2, keys=subset)) == expected
        assert catalog.candidate_pairs(2, keys=[]) == []

    def test_pair_screened_agrees(self, catalog):
        fleet = banded_community_fleet(2, 2, seed=19)
        register_fleet(catalog, fleet)
        surviving = brute_force_surviving_pairs(fleet, 1)
        for first, second in itertools.combinations(sorted(c.name for c in fleet), 2):
            assert catalog.pair_screened(first, second, 1) == (
                (first, second) not in surviving
            )


class TestSimilarityCache:
    def test_miss_then_hit(self, catalog):
        base = make_community("base", 20)
        catalog.register("base", base)
        catalog.register("twin", Community("twin", base.vectors, "Sport"))
        first = catalog.similarity("base", "twin", epsilon=1)
        second = catalog.similarity("base", "twin", epsilon=1)
        assert not first.from_cache
        assert second.from_cache
        assert second.similarity == first.similarity == pytest.approx(1.0)

    def test_hit_serves_without_vector_io(self, catalog):
        catalog.register("a", make_community("A", 21))
        catalog.register("b", make_community("B", 21))
        catalog.similarity("a", "b", epsilon=1)
        before = catalog.io_stats()["repro_catalog_vector_loads_total"]
        catalog.similarity("a", "b", epsilon=1)
        assert catalog.io_stats()["repro_catalog_vector_loads_total"] == before

    def test_distinct_parameters_distinct_entries(self, catalog):
        catalog.register("a", make_community("A", 22))
        catalog.register("b", make_community("B", 22))
        catalog.similarity("a", "b", epsilon=1)
        catalog.similarity("a", "b", epsilon=2)
        catalog.similarity("a", "b", epsilon=1, method="ap-minmax")
        catalog.similarity("a", "b", epsilon=1, matcher="hopcroft_karp")
        assert catalog.cache_size() == 4

    def test_reregistration_invalidates(self, catalog):
        catalog.register("a", make_community("A", 23))
        catalog.register("b", make_community("B", 23))
        catalog.similarity("a", "b", epsilon=1)
        catalog.register("a", make_community("A", 24))
        assert catalog.cache_size() == 0
        assert not catalog.similarity("a", "b", epsilon=1).from_cache

    def test_remove_purges_cache(self, catalog):
        catalog.register("a", make_community("A", 25))
        catalog.register("b", make_community("B", 25))
        catalog.similarity("a", "b", epsilon=1)
        catalog.remove("a")
        assert catalog.cache_size() == 0

    def test_cache_persists_across_handles(self, tmp_path):
        path = tmp_path / "c.db"
        with PersistentCatalog(path) as cat:
            cat.register("a", make_community("A", 26))
            cat.register("b", make_community("B", 26))
            cat.similarity("a", "b", epsilon=1)
        with PersistentCatalog(path) as reopened:
            assert reopened.cache_size() == 1
            assert reopened.similarity("a", "b", epsilon=1).from_cache

    def test_clear_cache(self, catalog):
        catalog.register("a", make_community("A", 27))
        catalog.register("b", make_community("B", 27))
        catalog.similarity("a", "b", epsilon=1)
        catalog.clear_cache()
        assert catalog.cache_size() == 0

    def test_matches_direct_join(self, catalog):
        community_b = make_community("b", 28, n=15)
        community_a = make_community("a", 28, n=25)
        catalog.register("b", community_b)
        catalog.register("a", community_a)
        cached = catalog.similarity("b", "a", epsilon=1)
        direct = csj_similarity(community_b, community_a, epsilon=1)
        assert cached.similarity == pytest.approx(direct.similarity)
        assert cached.n_matched == direct.n_matched


class TestCrashSafety:
    def test_uncommitted_writer_leaves_no_trace(self, tmp_path):
        path = tmp_path / "crash.db"
        with PersistentCatalog(path) as catalog:
            catalog.register("a", make_community("A", 29))
            catalog.register("b", make_community("B", 29))
            # A second writer begins a cache write and "crashes" (its
            # connection closes with the transaction open).  WAL rolls
            # the transaction back: nothing torn, nothing visible.
            raw = sqlite3.connect(str(path), isolation_level=None)
            raw.execute("BEGIN IMMEDIATE")
            raw.execute(
                "INSERT INTO similarity_cache "
                "(key_b, key_a, method, epsilon, options, fingerprint_b, "
                " fingerprint_a, similarity, n_matched, created_at) "
                "VALUES ('a', 'b', 'ex-minmax', 1, '()', 'x', 'y', 0.5, 3, 0)",
            )
            raw.close()
            assert catalog.cache_size() == 0
            # The store still works end to end after the crash.
            catalog.register("c", make_community("C", 30))
            assert not catalog.similarity("a", "b", epsilon=1).from_cache
            assert catalog.cache_size() == 1


class TestConcurrency:
    def test_two_handles_interleaved_writes_both_survive(self, tmp_path):
        """The JSON shim's last-writer-wins clobbering is gone.

        With ``CommunityCatalog`` two handles each hold the whole cache
        dict in memory and write it back wholesale, so the second save
        silently drops the first handle's entry.  Here both writes land
        as rows; each handle sees the other's entry.
        """
        path = tmp_path / "two.db"
        with PersistentCatalog(path) as one, PersistentCatalog(path) as two:
            one.register("a", make_community("A", 31))
            one.register("b", make_community("B", 31))
            one.register("c", make_community("C", 31))
            one.register("d", make_community("D", 31))
            # Interleaved: both handles computed before either wrote
            # would be the JSON-clobbering scenario; rows are upserts.
            one.similarity("a", "b", epsilon=1)
            two.similarity("c", "d", epsilon=1)
            assert one.cache_size() == 2
            assert two.cache_size() == 2
            assert two.similarity("a", "b", epsilon=1).from_cache
            assert one.similarity("c", "d", epsilon=1).from_cache

    def test_json_shim_clobbers_for_contrast(self, tmp_path):
        """Documents the bug the persistent catalog fixes (shim behavior)."""
        root = tmp_path / "legacy"
        one = CommunityCatalog(root)
        one.register("a", make_community("A", 32))
        one.register("b", make_community("B", 32))
        one.register("c", make_community("C", 32))
        one.register("d", make_community("D", 32))
        two = CommunityCatalog(root)  # snapshots the (empty) cache now
        one.similarity("a", "b", epsilon=1)
        two.similarity("c", "d", epsilon=1)  # writes back without (a, b)
        assert CommunityCatalog(root).cache_size() == 1

    def test_threaded_writes_none_lost(self, tmp_path):
        path = tmp_path / "threads.db"
        fleet = banded_community_fleet(2, 6, seed=33)
        with PersistentCatalog(path) as catalog:
            errors: list[BaseException] = []

            def worker(communities: list[Community]) -> None:
                try:
                    for community in communities:
                        catalog.register(community.name, community)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(fleet[i::4],))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert catalog.keys() == sorted(c.name for c in fleet)

    def test_two_processes_worth_of_handles_register(self, tmp_path):
        path = tmp_path / "multi.db"
        with PersistentCatalog(path) as one, PersistentCatalog(path) as two:
            one.register("from-one", make_community("X", 34))
            two.register("from-two", make_community("Y", 34))
            assert one.keys() == ["from-one", "from-two"]
            assert two.keys() == ["from-one", "from-two"]


class TestInterop:
    def test_import_export_roundtrip(self, tmp_path):
        legacy = CommunityCatalog(tmp_path / "legacy")
        fleet = banded_community_fleet(2, 2, seed=35)
        for community in fleet:
            legacy.register(community.name, community)
        with PersistentCatalog(tmp_path / "cat.db") as catalog:
            imported = catalog.import_directory(tmp_path / "legacy")
            assert imported == sorted(c.name for c in fleet)
            exported_root = tmp_path / "exported"
            catalog.export_directory(exported_root)
            reread = CommunityCatalog(exported_root)
            for community in fleet:
                assert np.array_equal(
                    reread.get(community.name).vectors, community.vectors
                )

    def test_import_empty_directory(self, tmp_path, catalog):
        assert catalog.import_directory(tmp_path / "empty") == []

    def test_export_subset(self, tmp_path, catalog):
        catalog.register("a", make_community("A", 36))
        catalog.register("b", make_community("B", 36))
        exported = catalog.export_directory(tmp_path / "sub", keys=["a"])
        assert exported == ["a"]
        assert CommunityCatalog(tmp_path / "sub").keys() == ["a"]

    def test_fingerprints_agree_with_shim(self, catalog, tmp_path):
        """Both stores hash content identically (shim truncates)."""
        from repro.datasets.catalog import _fingerprint

        community = make_community("x", 37)
        catalog.register("x", community)
        assert catalog.metadata("x").fingerprint.startswith(
            _fingerprint(community)
        )


class TestTopKOverCatalog:
    @pytest.fixture
    def fleet(self) -> list[Community]:
        return banded_community_fleet(3, 4, seed=38)

    @pytest.fixture
    def loaded(self, catalog, fleet) -> PersistentCatalog:
        register_fleet(catalog, fleet)
        return catalog

    @pytest.mark.parametrize("epsilon,k", [(1, 3), (1, 8), (3, 40)])
    def test_matches_in_memory_ranking(self, loaded, fleet, epsilon, k):
        expected = top_k_pairs(fleet, epsilon=epsilon, k=k)
        actual = top_k_pairs(loaded, epsilon=epsilon, k=k)
        assert [s.label for s in actual] == [s.label for s in expected]
        assert [s.similarity for s in actual] == pytest.approx(
            [s.similarity for s in expected]
        )
        for ours, theirs in zip(actual, expected):
            assert ours.result.method == theirs.result.method
            assert ours.result.engine == theirs.result.engine

    def test_screen_off_matches(self, loaded, fleet):
        expected = top_k_pairs(fleet, epsilon=1, k=5, envelope_screen=False)
        actual = top_k_pairs(loaded, epsilon=1, k=5, envelope_screen=False)
        assert [s.label for s in actual] == [s.label for s in expected]

    def test_keys_subset(self, loaded, fleet):
        subset = sorted(c.name for c in fleet[:6])
        expected = top_k_pairs(
            [c for c in fleet if c.name in subset], epsilon=1, k=4
        )
        actual = top_k_pairs(loaded, epsilon=1, k=4, keys=subset)
        assert [s.label for s in actual] == [s.label for s in expected]

    def test_keys_require_catalog(self, fleet):
        with pytest.raises(ConfigurationError, match="keys"):
            top_k_pairs(fleet, epsilon=1, k=3, keys=["x"])

    def test_screened_out_vectors_not_loaded(self, catalog):
        """Communities pruned for every pair never load their vectors."""
        fleet = banded_community_fleet(4, 2, seed=39, band_gap=10_000)
        register_fleet(catalog, fleet)
        top_k_pairs(catalog, epsilon=1, k=4)
        loads = catalog.io_stats()["repro_catalog_vector_loads_total"]
        # Only intra-band pairs survive, so each band loads its two
        # members once; nothing else is read.
        assert loads == len(fleet)


class TestCatalogSweep:
    def test_matches_in_memory_sweep(self, catalog):
        fleet = banded_community_fleet(1, 2, seed=40)
        register_fleet(catalog, fleet)
        epsilons = [0, 1, 2, 4]
        expected = epsilon_sweep(fleet[0], fleet[1], epsilons)
        actual = catalog_epsilon_sweep(
            catalog, fleet[0].name, fleet[1].name, epsilons
        )
        assert [p.similarity_percent for p in actual] == pytest.approx(
            [p.similarity_percent for p in expected]
        )
        assert [p.n_matched for p in actual] == [p.n_matched for p in expected]

    def test_separated_pair_synthesises_curve_without_io(self, catalog):
        fleet = banded_community_fleet(2, 1, seed=41, band_gap=10_000)
        register_fleet(catalog, fleet)
        points = catalog_epsilon_sweep(
            catalog, fleet[0].name, fleet[1].name, [0, 1, 2]
        )
        assert [p.similarity_percent for p in points] == [0.0, 0.0, 0.0]
        assert [p.n_matched for p in points] == [0, 0, 0]
        assert catalog.io_stats()["repro_catalog_vector_loads_total"] == 0

    def test_validation(self, catalog):
        fleet = banded_community_fleet(1, 2, seed=42)
        register_fleet(catalog, fleet)
        with pytest.raises(ConfigurationError):
            catalog_epsilon_sweep(catalog, fleet[0].name, fleet[1].name, [])
        with pytest.raises(ConfigurationError):
            catalog_epsilon_sweep(
                catalog, fleet[0].name, fleet[1].name, [2, 1]
            )


class TestCatalogBackedStore:
    def test_names_span_catalog_without_loading(self, catalog):
        fleet = banded_community_fleet(2, 2, seed=43)
        register_fleet(catalog, fleet)
        store = CatalogBackedStore(catalog)
        assert store.names() == sorted(c.name for c in fleet)
        assert len(store) == len(fleet)
        assert store.loaded_names() == []
        assert catalog.io_stats()["repro_catalog_vector_loads_total"] == 0

    def test_faults_in_lazily_on_first_touch(self, catalog):
        fleet = banded_community_fleet(2, 2, seed=44)
        register_fleet(catalog, fleet)
        store = CatalogBackedStore(catalog)
        name = fleet[0].name
        snapshot = store.snapshot(name)
        assert snapshot.community.name == name
        assert np.array_equal(snapshot.community.vectors, fleet[0].vectors)
        assert store.loaded_names() == [name]
        assert catalog.io_stats()["repro_catalog_vector_loads_total"] == 1

    def test_unknown_name(self, catalog):
        store = CatalogBackedStore(catalog)
        with pytest.raises(UnknownCommunityError):
            store.snapshot("ghost")

    def test_registered_overlay_wins(self, catalog):
        fleet = banded_community_fleet(1, 2, seed=45)
        register_fleet(catalog, fleet)
        store = CatalogBackedStore(catalog)
        fresh = make_community("fresh", 46)
        store.register_community(fresh)
        assert "fresh" in store
        assert store.names() == sorted([c.name for c in fleet] + ["fresh"])


class TestCatalogCLI:
    def test_import_ls_query_export(self, tmp_path, capsys):
        from repro.cli import main

        legacy_root = tmp_path / "legacy"
        legacy = CommunityCatalog(legacy_root)
        fleet = banded_community_fleet(2, 2, seed=47)
        for community in fleet:
            legacy.register(community.name, community)
        db = tmp_path / "cli.db"

        assert main(["catalog", "import", str(db), str(legacy_root)]) == 0
        assert "imported 4 communities" in capsys.readouterr().out

        assert main(["catalog", "ls", str(db)]) == 0
        out = capsys.readouterr().out
        for community in fleet:
            assert community.name in out
        assert "4 communities" in out

        probe = fleet[0].name
        assert main(["catalog", "query", str(db), probe, "--epsilon", "2"]) == 0
        out = capsys.readouterr().out
        assert "vector loads: 0" in out

        export_root = tmp_path / "exported"
        assert main(
            ["catalog", "export", str(db), str(export_root), "--keys", probe]
        ) == 0
        assert "exported 1 communities" in capsys.readouterr().out
        assert CommunityCatalog(export_root).keys() == [probe]
