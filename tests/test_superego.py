"""Tests for Ap-SuperEGO and Ex-SuperEGO (repro.algorithms.superego)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.baseline import ExBaseline
from repro.algorithms.superego import ApSuperEGO, ExSuperEGO, ego_order, grid_cells
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)


class TestGridHelpers:
    def test_grid_cells_basic(self):
        vectors = np.array([[0, 14, 15, 29]])
        assert grid_cells(vectors, 15).tolist() == [[0, 0, 1, 1]]

    def test_grid_cells_zero_width_degenerates(self):
        vectors = np.array([[0, 3, 7]])
        assert grid_cells(vectors, 0).tolist() == [[0, 3, 7]]

    def test_ego_order_sorts_lexicographically(self):
        cells = np.array([[1, 0], [0, 1], [0, 0]])
        order = ego_order(cells, np.array([0, 1]))
        assert cells[order].tolist() == [[0, 0], [0, 1], [1, 0]]

    def test_ego_order_respects_dim_priority(self):
        cells = np.array([[1, 0], [0, 1]])
        # Dimension 1 first: row with cell 0 in dim 1 sorts first.
        order = ego_order(cells, np.array([1, 0]))
        assert cells[order].tolist() == [[1, 0], [0, 1]]


class TestRawModeEquivalence:
    """With use_normalized=False the join condition is the exact CSJ one,
    so SuperEGO must agree with the brute-force oracle exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_ex_superego_raw_equals_baseline(self, seed):
        vectors_b, vectors_a = random_couple(seed)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        superego = ExSuperEGO(1, use_normalized=False, t=4).join(b, a)
        baseline = ExBaseline(1).join(b, a)
        assert superego.n_matched == baseline.n_matched

    @pytest.mark.parametrize("seed", range(4))
    def test_raw_hopcroft_karp_reaches_maximum(self, seed):
        vectors_b, vectors_a = random_couple(seed + 40)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExSuperEGO(
            1, use_normalized=False, matcher="hopcroft_karp", t=4
        ).join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, 1)
        )
        assert result.n_matched == oracle

    @pytest.mark.parametrize("t", [2, 4, 16, 64])
    def test_threshold_does_not_change_result(self, t):
        vectors_b, vectors_a = random_couple(3)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        reference = ExSuperEGO(1, use_normalized=False, t=4).join(b, a)
        varied = ExSuperEGO(1, use_normalized=False, t=t).join(b, a)
        assert varied.n_matched == reference.n_matched

    def test_pruning_actually_fires_on_separated_data(self):
        b = Community("B", np.zeros((20, 4), dtype=np.int64))
        a = Community("A", np.full((20, 4), 1000, dtype=np.int64))
        algorithm = ExSuperEGO(1, use_normalized=False, t=4)
        result = algorithm.join(b, a)
        assert result.n_matched == 0
        # EGO-strategy prunes are reported as MIN PRUNE events.
        assert result.events.min_prune >= 1
        # The whole rectangle must be pruned without any comparison.
        assert result.events.comparisons == 0


class TestNormalizedMode:
    """The paper's adaptation: aggregate epsilon over normalised data."""

    @pytest.mark.parametrize("seed", range(6))
    def test_returned_pairs_satisfy_true_condition(self, seed):
        vectors_b, vectors_a = random_couple(seed + 70)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        for algorithm in (ApSuperEGO(1, t=4), ExSuperEGO(1, t=4)):
            result = algorithm.join(b, a)
            assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_never_beats_true_exact(self, seed):
        # False candidates can only waste users: the verified count is
        # bounded by the true maximum matching.
        vectors_b, vectors_a = random_couple(seed + 100)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        superego = ExSuperEGO(1, t=4).join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, 1)
        )
        assert superego.n_matched <= oracle

    def test_aggregate_condition_superset(self):
        # A pair violating per-dimension epsilon but within the
        # aggregate ball is matched internally and then discarded,
        # consuming the user: the loss mechanism of Tables 3-6.
        vectors_b = np.array([[10, 10, 10], [12, 10, 10]])
        # a0 differs from b0 by 3 in one dim (aggregate 3 <= d*eps = 3).
        vectors_a = np.array([[13, 10, 10], [12, 11, 10]])
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ApSuperEGO(1, t=2).join(b, a)
        # b0 grabs a0 under the aggregate condition, the pair fails
        # verification, so at most b1's pair survives.
        assert result.n_matched <= 1

    def test_explicit_max_value_used(self):
        vectors_b, vectors_a = random_couple(1)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        fixed = ExSuperEGO(1, max_value=1000, t=4).join(b, a)
        auto = ExSuperEGO(1, t=4).join(b, a)
        # Different normalisation must not invalidate the matching.
        assert_valid_matching(fixed.pair_tuples(), b.vectors, a.vectors, 1)
        assert fixed.n_matched <= max(auto.n_matched + 5, auto.n_matched)


class TestParallelCollection:
    """The paper notes SuperEGO can run in parallel; Ex parallelises."""

    @pytest.mark.parametrize("n_jobs", [2, 4])
    @pytest.mark.parametrize("seed", range(3))
    def test_parallel_equals_serial(self, seed, n_jobs):
        vectors_b, vectors_a = random_couple(seed + 300)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        serial = ExSuperEGO(1, t=4).join(b, a)
        parallel = ExSuperEGO(1, t=4, n_jobs=n_jobs).join(b, a)
        assert set(serial.pair_tuples()) == set(parallel.pair_tuples())

    def test_parallel_raw_mode(self):
        vectors_b, vectors_a = random_couple(77)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        serial = ExSuperEGO(1, use_normalized=False, t=4).join(b, a)
        parallel = ExSuperEGO(1, use_normalized=False, t=4, n_jobs=3).join(b, a)
        assert set(serial.pair_tuples()) == set(parallel.pair_tuples())

    def test_more_jobs_than_rows(self):
        vectors_b, vectors_a = random_couple(5, n_b=4, n_a=6)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExSuperEGO(1, t=2, n_jobs=16).join(b, a)
        result.check_one_to_one()

    def test_invalid_n_jobs(self):
        with pytest.raises(ConfigurationError):
            ExSuperEGO(1, n_jobs=0)

    def test_python_engine_stays_serial(self):
        vectors_b, vectors_a = random_couple(9)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExSuperEGO(1, t=4, n_jobs=4, engine="python").join(b, a)
        reference = ExSuperEGO(1, t=4, engine="python").join(b, a)
        assert set(result.pair_tuples()) == set(reference.pair_tuples())


class TestConfiguration:
    def test_t_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            ExSuperEGO(1, t=1)

    def test_names_and_flags(self):
        assert ApSuperEGO(1).name == "ap-superego"
        assert ApSuperEGO(1).exact is False
        assert ExSuperEGO(1).name == "ex-superego"
        assert ExSuperEGO(1).exact is True

    @pytest.mark.parametrize("seed", range(4))
    def test_engines_agree(self, seed):
        vectors_b, vectors_a = random_couple(seed + 7)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        for cls in (ApSuperEGO, ExSuperEGO):
            python = cls(1, engine="python", t=4).join(b, a)
            numpy_ = cls(1, engine="numpy", t=4).join(b, a)
            assert set(python.pair_tuples()) == set(numpy_.pair_tuples())


class TestParallelMetricsParity:
    """The thread-parallel candidate collection merges per-slice traces
    through ``EventTrace.absorb``, so the mirrored
    ``repro_core_events_total`` family must agree exactly with the
    trace's own counters (regression test for a merge that updated the
    counters but bypassed the metrics sink).  The counters themselves
    may differ from a serial run: pruning depends on scan order within
    each slice."""

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_events_metric_mirrors_counts(self, n_jobs):
        from repro.obs.registry import MetricsRegistry

        vectors_b, vectors_a = random_couple(11, n_b=40, n_a=48)
        b, a = Community("B", vectors_b), Community("A", vectors_a)

        algorithm = ExSuperEGO(1, t=4, n_jobs=n_jobs)
        algorithm.metrics = MetricsRegistry()
        result = algorithm.join(b, a)

        assert result.events.total > 0
        mirrored = algorithm.metrics.counters_by_label(
            "repro_core_events_total", "type"
        )
        for field in ("min_prune", "max_prune", "no_overlap", "no_match", "match"):
            assert mirrored.get(field, 0) == getattr(result.events, field), field
