"""Unit tests for the matching substrate (repro.core.matching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.matching import (
    MATCHERS,
    build_adjacency,
    cover_smallest_first,
    enumerate_candidate_pairs,
    get_matcher,
    greedy_first_fit,
    hopcroft_karp,
    linf_match,
    linf_match_mask,
    matching_size_upper_bound,
    pairs_are_one_to_one,
    pairs_respect_graph,
)
from tests.conftest import maximum_matching_size


class TestLinfPredicates:
    def test_exact_boundary_matches(self):
        assert linf_match(np.array([3, 4]), np.array([4, 3]), epsilon=1)

    def test_one_dimension_over_fails(self):
        assert not linf_match(np.array([3, 4]), np.array([5, 4]), epsilon=1)

    def test_epsilon_zero_requires_equality(self):
        assert linf_match(np.array([2, 2]), np.array([2, 2]), epsilon=0)
        assert not linf_match(np.array([2, 2]), np.array([2, 3]), epsilon=0)

    def test_mask_matches_scalar_predicate(self):
        rng = np.random.default_rng(0)
        vector_b = rng.integers(0, 5, size=6)
        matrix_a = rng.integers(0, 5, size=(40, 6))
        mask = linf_match_mask(vector_b, matrix_a, epsilon=1)
        for row in range(40):
            assert mask[row] == linf_match(vector_b, matrix_a[row], epsilon=1)

    def test_mask_unsigned_safety(self):
        # Differences of unsigned-ish inputs must not wrap around.
        vector_b = np.array([0, 0], dtype=np.int64)
        matrix_a = np.array([[5, 5]], dtype=np.uint16)
        assert not linf_match_mask(vector_b, matrix_a, epsilon=1)[0]


class TestEnumerateCandidatePairs:
    def test_uint8_wraparound_regression(self):
        # 5 - 250 wraps to 11 in uint8 arithmetic; the enumeration must
        # widen to int64 exactly like linf_match and report no pair.
        vectors_b = np.array([[5]], dtype=np.uint8)
        vectors_a = np.array([[250]], dtype=np.uint8)
        assert enumerate_candidate_pairs(vectors_b, vectors_a, epsilon=20) == []
        assert not linf_match(vectors_b[0], vectors_a[0], epsilon=20)

    def test_uint_dtypes_agree_with_scalar_predicate(self):
        rng = np.random.default_rng(42)
        for dtype, high in ((np.uint8, 255), (np.uint16, 65535), (np.int16, 32767)):
            vectors_b = rng.integers(0, high, size=(12, 3)).astype(dtype)
            vectors_a = rng.integers(0, high, size=(15, 3)).astype(dtype)
            epsilon = int(high) // 2
            pairs = set(
                enumerate_candidate_pairs(vectors_b, vectors_a, epsilon=epsilon)
            )
            expected = {
                (b, a)
                for b in range(12)
                for a in range(15)
                if linf_match(vectors_b[b], vectors_a[a], epsilon=epsilon)
            }
            assert pairs == expected

    def test_blockwise_equals_single_block(self):
        rng = np.random.default_rng(43)
        vectors_b = rng.integers(0, 250, size=(20, 4)).astype(np.uint8)
        vectors_a = rng.integers(0, 250, size=(17, 4)).astype(np.uint8)
        assert enumerate_candidate_pairs(
            vectors_b, vectors_a, epsilon=10, block_size=3
        ) == enumerate_candidate_pairs(vectors_b, vectors_a, epsilon=10)


class TestBuildAdjacency:
    def test_both_directions(self):
        matched_b, matched_a = build_adjacency([(0, 1), (0, 2), (3, 1)])
        assert matched_b == {0: {1, 2}, 3: {1}}
        assert matched_a == {1: {0, 3}, 2: {0}}

    def test_empty(self):
        matched_b, matched_a = build_adjacency([])
        assert matched_b == {} and matched_a == {}

    def test_duplicates_collapse(self):
        matched_b, _ = build_adjacency([(0, 1), (0, 1)])
        assert matched_b == {0: {1}}


class TestCoverSmallestFirst:
    def test_single_edge(self):
        matched_b, matched_a = build_adjacency([(0, 7)])
        assert cover_smallest_first(matched_b, matched_a) == [(0, 7)]

    def test_prefers_covering_degree_one_vertices(self):
        # b0 only matches a0; b1 matches both. Greedy by smallest degree
        # must cover b0 with a0 first, leaving a1 for b1 (2 matches).
        matched_b, matched_a = build_adjacency([(0, 0), (1, 0), (1, 1)])
        pairs = cover_smallest_first(matched_b, matched_a)
        assert set(pairs) == {(0, 0), (1, 1)}

    def test_finds_maximum_on_chain(self):
        # Chain b0-a0, a0-b1, b1-a1: maximum matching = 2.
        matched_b, matched_a = build_adjacency([(0, 0), (1, 0), (1, 1)])
        assert len(cover_smallest_first(matched_b, matched_a)) == 2

    def test_one_to_one_always(self):
        rng = np.random.default_rng(9)
        pairs = {(int(rng.integers(0, 12)), int(rng.integers(0, 12))) for _ in range(60)}
        matched_b, matched_a = build_adjacency(pairs)
        result = cover_smallest_first(matched_b, matched_a)
        assert pairs_are_one_to_one(result)
        assert pairs_respect_graph(result, matched_b)

    def test_input_maps_not_modified(self):
        matched_b, matched_a = build_adjacency([(0, 0), (1, 0), (1, 1)])
        before_b = {b: set(v) for b, v in matched_b.items()}
        cover_smallest_first(matched_b, matched_a)
        assert matched_b == before_b

    def test_deterministic(self):
        rng = np.random.default_rng(11)
        pairs = {(int(rng.integers(0, 20)), int(rng.integers(0, 20))) for _ in range(80)}
        matched_b, matched_a = build_adjacency(pairs)
        first = cover_smallest_first(matched_b, matched_a)
        second = cover_smallest_first(matched_b, matched_a)
        assert first == second

    @pytest.mark.parametrize("seed", range(8))
    def test_never_exceeds_maximum(self, seed):
        rng = np.random.default_rng(seed)
        pairs = {
            (int(rng.integers(0, 15)), int(rng.integers(0, 15))) for _ in range(50)
        }
        matched_b, matched_a = build_adjacency(pairs)
        csf_size = len(cover_smallest_first(matched_b, matched_a))
        assert csf_size <= maximum_matching_size(pairs)
        # Minimum-degree greedy is a 1/2-approximation at worst.
        assert csf_size >= maximum_matching_size(pairs) / 2

    def test_empty_input(self):
        assert cover_smallest_first({}, {}) == []


class TestHopcroftKarp:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_networkx_maximum(self, seed):
        rng = np.random.default_rng(100 + seed)
        pairs = {
            (int(rng.integers(0, 18)), int(rng.integers(0, 18))) for _ in range(70)
        }
        matched_b, matched_a = build_adjacency(pairs)
        result = hopcroft_karp(matched_b, matched_a)
        assert pairs_are_one_to_one(result)
        assert pairs_respect_graph(result, matched_b)
        assert len(result) == maximum_matching_size(pairs)

    def test_perfect_matching_on_disjoint_edges(self):
        pairs = [(i, i) for i in range(10)]
        matched_b, matched_a = build_adjacency(pairs)
        assert sorted(hopcroft_karp(matched_b, matched_a)) == pairs

    def test_augmenting_path_case(self):
        # Greedy first-fit would match b0-a0 and strand b1; HK must
        # augment to the perfect matching.
        pairs = [(0, 0), (0, 1), (1, 0)]
        matched_b, matched_a = build_adjacency(pairs)
        result = hopcroft_karp(matched_b, matched_a)
        assert len(result) == 2

    def test_empty(self):
        assert hopcroft_karp({}, {}) == []

    def test_at_least_as_large_as_csf(self):
        for seed in range(6):
            rng = np.random.default_rng(200 + seed)
            pairs = {
                (int(rng.integers(0, 25)), int(rng.integers(0, 25)))
                for _ in range(120)
            }
            matched_b, matched_a = build_adjacency(pairs)
            assert len(hopcroft_karp(matched_b, matched_a)) >= len(
                cover_smallest_first(matched_b, matched_a)
            )


class TestGreedyFirstFit:
    def test_commits_in_id_order(self):
        matched_b, matched_a = build_adjacency([(0, 0), (0, 1), (1, 0)])
        assert greedy_first_fit(matched_b, matched_a) == [(0, 0)]

    def test_one_to_one(self):
        matched_b, matched_a = build_adjacency([(0, 0), (1, 0), (1, 1), (2, 1)])
        result = greedy_first_fit(matched_b, matched_a)
        assert pairs_are_one_to_one(result)


class TestRegistryAndHelpers:
    def test_registry_contains_all(self):
        assert set(MATCHERS) == {"csf", "hopcroft_karp", "greedy"}

    def test_get_matcher(self):
        assert get_matcher("csf") is cover_smallest_first

    def test_unknown_matcher(self):
        with pytest.raises(ConfigurationError, match="unknown matcher"):
            get_matcher("magic")

    def test_upper_bound(self):
        matched_b, _ = build_adjacency([(0, 0), (1, 0), (2, 0)])
        assert matching_size_upper_bound(matched_b) == 1

    def test_pairs_respect_graph_detects_foreign_edge(self):
        matched_b, _ = build_adjacency([(0, 0)])
        assert not pairs_respect_graph([(0, 1)], matched_b)
