"""Tests for Ap-Baseline and Ex-Baseline (repro.algorithms.baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.baseline import ApBaseline, ExBaseline
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from tests.conftest import (
    assert_valid_matching,
    brute_force_candidate_pairs,
    maximum_matching_size,
    random_couple,
)


class TestApBaseline:
    @pytest.mark.parametrize("seed", range(6))
    def test_engines_agree(self, seed):
        vectors_b, vectors_a = random_couple(seed)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        python = ApBaseline(1, engine="python").join(b, a)
        numpy_ = ApBaseline(1, engine="numpy").join(b, a)
        assert python.pair_tuples() == numpy_.pair_tuples()

    def test_first_fit_semantics(self):
        # b0 matches a0 and a1; first-fit must take a0, leaving a1 to b1.
        vectors_b = np.array([[5, 5], [5, 5]])
        vectors_a = np.array([[5, 5], [5, 6]])
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ApBaseline(1, engine="python").join(b, a)
        assert result.pair_tuples() == [(0, 0), (1, 1)]

    def test_matching_is_valid(self, small_couple):
        b, a = small_couple
        result = ApBaseline(1).join(b, a)
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    def test_no_matches_when_far_apart(self):
        b = Community("B", np.zeros((4, 3), dtype=np.int64))
        a = Community("A", np.full((4, 3), 100, dtype=np.int64))
        result = ApBaseline(1).join(b, a)
        assert result.n_matched == 0
        assert result.similarity == 0.0

    def test_identical_communities_fully_match(self):
        rng = np.random.default_rng(8)
        vectors = rng.integers(0, 50, size=(12, 5))
        b = Community("B", vectors)
        a = Community("A", vectors)
        result = ApBaseline(0).join(b, a)
        assert result.similarity == 1.0

    def test_events_counted_in_python_engine(self, small_couple):
        b, a = small_couple
        algorithm = ApBaseline(1, engine="python")
        result = algorithm.join(b, a)
        assert result.events.match == result.n_matched
        assert result.events.no_match > 0

    def test_not_exact_flag(self):
        assert ApBaseline(1).exact is False
        assert ApBaseline(1).name == "ap-baseline"


class TestExBaseline:
    @pytest.mark.parametrize("seed", range(6))
    def test_engines_agree(self, seed):
        vectors_b, vectors_a = random_couple(seed + 50)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        python = ExBaseline(1, engine="python").join(b, a)
        numpy_ = ExBaseline(1, engine="numpy").join(b, a)
        assert set(python.pair_tuples()) == set(numpy_.pair_tuples())

    @pytest.mark.parametrize("seed", range(6))
    def test_hopcroft_karp_matcher_reaches_maximum(self, seed):
        vectors_b, vectors_a = random_couple(seed + 80)
        b, a = Community("B", vectors_b), Community("A", vectors_a)
        result = ExBaseline(1, matcher="hopcroft_karp").join(b, a)
        oracle = maximum_matching_size(
            brute_force_candidate_pairs(vectors_b, vectors_a, 1)
        )
        assert result.n_matched == oracle

    def test_csf_close_to_maximum(self, small_couple):
        b, a = small_couple
        csf = ExBaseline(1, matcher="csf").join(b, a)
        optimal = ExBaseline(1, matcher="hopcroft_karp").join(b, a)
        assert csf.n_matched <= optimal.n_matched
        assert csf.n_matched >= optimal.n_matched / 2

    def test_matching_is_valid(self, small_couple):
        b, a = small_couple
        result = ExBaseline(1).join(b, a)
        assert_valid_matching(result.pair_tuples(), b.vectors, a.vectors, 1)

    def test_at_least_approximate(self, small_couple):
        b, a = small_couple
        exact = ExBaseline(1, matcher="hopcroft_karp").join(b, a)
        approx = ApBaseline(1).join(b, a)
        assert exact.n_matched >= approx.n_matched

    def test_block_size_invariance(self, small_couple):
        b, a = small_couple
        one = ExBaseline(1, block_size=1).join(b, a)
        big = ExBaseline(1, block_size=4096).join(b, a)
        assert set(one.pair_tuples()) == set(big.pair_tuples())

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            ExBaseline(1, block_size=0)

    def test_exact_flag(self):
        assert ExBaseline(1).exact is True
        assert ExBaseline(1).name == "ex-baseline"

    def test_empty_candidate_graph(self):
        b = Community("B", np.zeros((3, 2), dtype=np.int64))
        a = Community("A", np.full((3, 2), 9, dtype=np.int64))
        assert ExBaseline(1).join(b, a).n_matched == 0


class TestBaselineDriver:
    def test_result_metadata(self, small_couple):
        b, a = small_couple
        result = ExBaseline(1).join(b, a)
        assert result.size_b == len(b)
        assert result.size_a == len(a)
        assert result.epsilon == 1
        assert result.elapsed_seconds >= 0.0
        assert not result.swapped

    def test_auto_orientation(self):
        rng = np.random.default_rng(0)
        small = Community("small", rng.integers(0, 5, size=(6, 3)))
        big = Community("big", rng.integers(0, 5, size=(10, 3)))
        result = ApBaseline(1).join(big, small)
        assert result.swapped
        assert result.size_b == 6

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            ApBaseline(1, engine="rust")
