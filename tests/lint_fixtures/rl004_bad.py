"""RL004 fixture: bad names, bad subsystem, counter suffix, label drift."""

LATENCY_METRIC = "joinLatencySeconds"


def instrument(metrics, elapsed):
    metrics.inc("jobs_total", 1)                        # missing namespace
    metrics.inc("repro_warp_jobs_total", 1)             # unknown subsystem
    metrics.inc("repro_engine_jobs", 1)                 # counter without _total
    metrics.observe(LATENCY_METRIC, elapsed)            # camelCase constant


def label_drift(metrics):
    metrics.inc("repro_engine_drift_total", 1, disposition="computed")
    metrics.inc("repro_engine_drift_total", 1, disposition="cached")
    metrics.inc("repro_engine_drift_total", 1, kind="screened")  # odd one out
