"""RL007 bad fixture: blocking calls reachable from ``async def``."""

import threading
import time

from repro.engine import BatchEngine

REFRESH_LOCK = threading.Lock()


def crunch(batch):
    time.sleep(0.01)  # fine here: sync helper, flagged only via async callers
    return batch


async def handler(batch):
    time.sleep(0.5)  # direct blocking sleep on the event loop
    return crunch(batch)  # transitive: crunch() sleeps


async def guarded():
    with REFRESH_LOCK:  # sync lock acquisition stalls the loop
        return 1


async def acquirer(lock):
    lock.acquire()  # bare .acquire() on a lock-ish receiver
    return lock


async def heavy(profiles):
    engine = BatchEngine()  # O(n^2) join engine built on the loop thread
    return engine, profiles
