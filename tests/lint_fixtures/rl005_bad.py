"""RL005 fixture: bare except and silently swallowed broad handlers."""


def swallow_everything(path):
    try:
        return open(path).read()
    except:
        return None


def swallow_broad(worker):
    try:
        worker.run()
    except Exception:
        pass


def swallow_base(worker):
    try:
        worker.run()
    except (ValueError, BaseException):
        return None
