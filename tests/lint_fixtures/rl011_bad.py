"""RL011 bad fixture: seeds dropped at call boundaries or hardcoded."""

from numpy.random import default_rng


def sample(values, rng=None):
    if rng is None:
        raise ValueError("pass an explicit rng")
    return rng.choice(values)


def pipeline(values, rng):
    return sample(values)  # caller holds ``rng`` but drops it here


class Runner:
    def __init__(self, rng):
        self._rng = rng

    def run(self, values):
        noise = self._rng.random()
        return sample(values) + noise  # ``self._rng`` in scope, not passed


def hardcoded(values):
    rng = default_rng(1234)  # literal seed buried in a function body
    return rng.choice(values)
