"""RL006 fixture package: one exported symbol missing from docs/api.md."""

__all__ = ["documented_thing", "undocumented_thing"]


def documented_thing():
    return 1


def undocumented_thing():
    return 2
