"""Blocking and async clients covering every declared op."""


class _EndpointMixin:
    def ping(self):
        return self.request("ping")

    def state(self):
        return self.request("state")


class ServeClient(_EndpointMixin):
    def request(self, op, **payload):
        return {"op": op, **payload}


class AsyncServeClient(_EndpointMixin):
    async def request(self, op, **payload):
        return {"op": op, **payload}
