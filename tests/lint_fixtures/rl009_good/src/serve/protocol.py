"""Wire contract for the fixture serve surface."""

OPS = frozenset({"ping", "state"})
