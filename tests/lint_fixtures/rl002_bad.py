"""RL002 fixture: unpicklable callables shipped to a process pool."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial


class Engine:
    def _work(self, item):
        return item

    def run(self, items):
        def local_worker(item):          # closure over `items`
            return (item, len(items))

        pool = ProcessPoolExecutor(2, initializer=lambda: None)
        futures = [pool.submit(local_worker, item) for item in items]
        futures.append(pool.submit(lambda item: item * 2, items[0]))
        futures.append(pool.submit(self._work, items[0]))
        futures.append(pool.submit(partial(local_worker), items[0]))
        return [future.result() for future in futures]
