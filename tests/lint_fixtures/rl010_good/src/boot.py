"""Boot path covering every zero-init family."""

from families import init_alpha_metrics, init_beta_metrics


def boot(registry):
    init_alpha_metrics(registry)
    init_beta_metrics(registry)
    return registry
