"""Metric flows in lockstep with the registered/documented surface."""

ENGINE_COUNTERS = (
    "repro_engine_events_total",
    "repro_engine_orphan_total",
)


class Pipeline:
    def __init__(self, registry):
        self._registry = registry

    def run(self, batch):
        self._registry.inc("repro_engine_events_total")
        self._registry.inc("repro_engine_orphan_total")
        self._registry.observe("repro_engine_latency_seconds", 0.1)
        return batch
