"""RL003 fixture: suppressed direct counter mutation."""


def restore_snapshot(trace, snapshot):
    # Restoring a serialized trace byte-for-byte, metrics intentionally off.
    trace.counts = snapshot  # repro-lint: disable=RL003
