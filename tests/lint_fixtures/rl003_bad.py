"""RL003 fixture: every way of bypassing the event sink."""

EVENTS_METRIC = "repro_core_events_total"


def merge_counts(trace, other):
    trace.counts = trace.counts + other.counts  # skips the metrics mirror


def bump_match(trace):
    trace.counts.match += 1                     # direct field mutation


def bump_dynamic(trace, attr):
    setattr(trace.counts, attr, 1)              # dynamic field mutation


def mirror_by_hand(metrics):
    metrics.inc(EVENTS_METRIC, 1, type="match")  # sink's own metric family
    metrics.inc("repro_core_events_total", 2, type="no_match")
