"""RL005 fixture: the __del__ safety-net idiom, suppressed with a why."""


class Holder:
    def close(self):
        pass

    def __del__(self):
        try:
            self.close()
        # Teardown safety net: raising from __del__ only prints noise.
        except Exception:  # repro-lint: disable=RL005
            pass
