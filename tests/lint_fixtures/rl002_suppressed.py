"""RL002 fixture: suppressed dispatch of a bound method."""

from concurrent.futures import ProcessPoolExecutor


class Stateless:
    def work(self, item):
        return item

    def run(self, items):
        pool = ProcessPoolExecutor(2)
        # Instance is a frozen value object; pickling it is intended.
        return [
            pool.submit(self.work, item)  # repro-lint: disable=RL002
            for item in items
        ]
