"""Clients missing ``submit`` and issuing an undeclared ``legacy`` op."""


class _EndpointMixin:
    def ping(self):
        return self.request("ping")

    def state(self):
        return self.request("state")


class ServeClient(_EndpointMixin):
    def request(self, op, **payload):
        return {"op": op, **payload}


class AsyncServeClient(_EndpointMixin):
    async def request(self, op, **payload):
        return {"op": op, **payload}

    async def legacy(self):
        return await self.request("legacy")
