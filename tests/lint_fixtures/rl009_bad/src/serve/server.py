"""Dispatch loop that forgot the ``submit`` arm."""


def plan_ping(payload):
    return {"op": "ping", "payload": payload}


def execute_state_work(payload):
    return {"op": "state", "healthy": True, "payload": payload}


class CSJServer:
    def dispatch(self, op, payload):
        if op == "ping":
            return plan_ping(payload)
        else:  # state — decode guarantees op is declared
            return execute_state_work(payload)
