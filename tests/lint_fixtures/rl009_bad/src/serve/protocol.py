"""Wire contract for the fixture serve surface (drifted)."""

OPS = frozenset({"ping", "state", "submit"})
