"""RL004 fixture: convention-abiding names with one label set each."""

STAGE_METRIC = "repro_obs_stage_seconds"


def instrument(metrics, elapsed):
    metrics.inc("repro_engine_jobs_total", 1, disposition="computed")
    metrics.inc("repro_engine_jobs_total", 1, disposition="cached")
    metrics.observe(STAGE_METRIC, elapsed, stage="join")
    metrics.set_gauge("repro_engine_cache_entries", 12)
