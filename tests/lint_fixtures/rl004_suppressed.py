"""RL004 fixture: a legacy dashboard name kept alive, file-suppressed."""

# repro-lint: disable-file=RL004


def instrument(metrics):
    # Grandfathered: external dashboards still scrape this name.
    metrics.inc("legacy_jobs_total", 1)
