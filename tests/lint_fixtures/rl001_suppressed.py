"""RL001 fixture: a justified suppression silences the finding."""

import numpy as np


def demo_entropy():
    # This helper intentionally draws nondeterministic demo data.
    return np.random.default_rng()  # repro-lint: disable=RL001
