"""RL003 fixture: all emission through the sink API; reads are free."""


def emit(trace, kind):
    trace.emit(kind, "b1", "a1")


def emit_many(trace, kind, times):
    trace.emit_bulk(kind, times)


def merge(trace, other):
    trace.absorb(other.counts)


def report(trace):
    return trace.counts.match + trace.counts.no_match
