"""RL002 fixture: module-level workers, and thread pools stay exempt."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def _init_worker():
    pass


def _work(item):
    return item * 2


def run_process(items):
    pool = ProcessPoolExecutor(2, initializer=_init_worker)
    return [pool.submit(_work, item).result() for item in items]


def run_threads(items):
    # Threads share the address space: closures are fine here.
    with ThreadPoolExecutor(2) as pool:
        return list(pool.map(lambda item: item + 1, items))
