"""RL011 good fixture: seeds thread through every call boundary."""

from numpy.random import default_rng

DEFAULT_SEED = 1234  # module-level default: discoverable and overridable


def sample(values, rng=None):
    if rng is None:
        raise ValueError("pass an explicit rng")
    return rng.choice(values)


def pipeline(values, rng):
    return sample(values, rng=rng)


class Runner:
    def __init__(self, rng):
        self._rng = rng

    def run(self, values):
        noise = self._rng.random()
        return sample(values, rng=self._rng) + noise


def from_seed(values, seed=DEFAULT_SEED):
    rng = default_rng(seed)
    return sample(values, rng=rng)
