"""RL001 fixture: every global-state / unseeded RNG shape."""

import random

import numpy as np
from numpy.random import default_rng, randint


def legacy_module_calls(n):
    np.random.seed(7)                    # global-state seeding
    values = np.random.randint(0, 10, n)  # legacy global draw
    np.random.shuffle(values)            # legacy in-place shuffle
    return values


def argless_generator():
    rng = np.random.default_rng()        # fresh OS entropy every call
    other = default_rng()                # same, imported form
    return rng, other


def stdlib_global(n):
    random.seed(3)
    return [random.randint(0, 9) for _ in range(n)] + [randint(0, 9)]
