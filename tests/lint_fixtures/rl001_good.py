"""RL001 fixture: seeded-Generator discipline, nothing to flag."""

import numpy as np
from numpy.random import default_rng


def seeded(seed):
    rng = np.random.default_rng([seed, 1_000_003])
    return rng.integers(0, 10, 5)


def threaded(rng: np.random.Generator):
    return rng.permutation(8)


def spawned(seed):
    return default_rng(seed).normal(size=3)
