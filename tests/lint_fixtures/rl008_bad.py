"""RL008 bad fixture: guarded attributes touched on unlocked paths."""

import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.log = []

    def record(self, item):
        with self._lock:
            self.hits += 1
            self.log.append(item)

    def peek(self):
        return self.hits  # unlocked read of a guarded counter

    def drop(self):
        self.log.append(None)  # unlocked mutation of a guarded list

    def reset(self):
        self.hits = 0  # unlocked write of a guarded counter
