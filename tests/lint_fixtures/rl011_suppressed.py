"""RL011 suppressed fixture: acknowledged seed drops."""


def sample(values, rng=None):
    if rng is None:
        raise ValueError("pass an explicit rng")
    return rng.choice(values)


def smoke(values, rng):
    # Smoke path: determinism deliberately not required here.
    return sample(values)  # repro-lint: disable=RL011
