"""RL007 good fixture: async code hops to an executor for blocking work."""

import asyncio
import time

from repro.engine import BatchEngine


def crunch(batch):
    time.sleep(0.01)  # blocking is fine off the loop
    return batch


def build_engine():
    return BatchEngine()


def drain(lock):
    lock.acquire()  # sync context: no event loop to stall
    try:
        return True
    finally:
        lock.release()


async def handler(batch):
    await asyncio.sleep(0.5)  # cooperative sleep
    loop = asyncio.get_running_loop()
    # blocking helpers are handed over by reference, never called here
    return await loop.run_in_executor(None, crunch, batch)


async def heavy(profiles):
    loop = asyncio.get_running_loop()
    engine = await loop.run_in_executor(None, build_engine)
    return engine, profiles
