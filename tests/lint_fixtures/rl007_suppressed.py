"""RL007 suppressed fixture: acknowledged blocking calls in async code."""

import time


async def startup_probe():
    # One-shot startup path, runs before the loop serves traffic.
    time.sleep(0.01)  # repro-lint: disable=RL007
    return True
