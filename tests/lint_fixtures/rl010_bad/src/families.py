"""Zero-init hooks for two metric families."""


def init_alpha_metrics(registry):
    registry.set_gauge("repro_engine_queue_depth", 0.0)


def init_beta_metrics(registry):
    registry.set_gauge("repro_engine_pool_depth", 0.0)
