"""Boot path that zero-initialises one family but forgets the other."""

from families import init_alpha_metrics


def boot(registry):
    init_alpha_metrics(registry)
    return registry
