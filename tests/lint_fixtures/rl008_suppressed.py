"""RL008 suppressed fixture: acknowledged lock-free fast paths."""

import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def peek_racy(self):
        # Monitoring-only read; a stale int is acceptable here.
        return self.hits  # repro-lint: disable=RL008
