"""RL008 good fixture: every guarded attribute stays behind its lock."""

import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.log = []

    def record(self, item):
        with self._lock:
            self.hits += 1
            self.log.append(item)
            self._trim()

    def peek(self):
        with self._lock:
            return self.hits

    def drain(self):
        with self._lock:
            items, self.log = self.log, []
        return items

    def _summary_locked(self):
        # ``_locked`` suffix: callers are contractually lock holders.
        return {"hits": self.hits, "pending": len(self.log)}

    def _trim(self):
        # Only ever called under ``record``'s lock: the held-lock
        # fixpoint proves every call site holds ``self._lock``.
        del self.log[:-16]
