"""RL005 fixture: typed handlers that act, re-raise, or translate."""

from repro.core.errors import ConfigurationError


def narrow(path):
    try:
        return open(path).read()
    except FileNotFoundError:
        return None


def translate(payload):
    try:
        return int(payload["epsilon"])
    except (KeyError, ValueError) as error:
        raise ConfigurationError(f"bad epsilon in {payload!r}") from error


def broad_but_acting(worker, log):
    try:
        worker.run()
    except Exception as error:
        log.warning("worker failed: %s", error)
        raise
