"""RL006 fixture package: every exported symbol appears in docs/api.md."""

__all__ = ["documented_thing", "other_documented_thing"]


def documented_thing():
    return 1


def other_documented_thing():
    return 2
