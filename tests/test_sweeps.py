"""Tests for the parameter sweeps (repro.analysis.sweeps)."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import epsilon_sweep, render_sweep, scale_sweep
from repro.core.errors import ConfigurationError
from repro.core.types import Community
from repro.datasets import PAPER_COUPLES, VKGenerator
from tests.conftest import random_couple


@pytest.fixture
def couple():
    vectors_b, vectors_a = random_couple(31)
    return Community("B", vectors_b), Community("A", vectors_a)


class TestEpsilonSweep:
    def test_similarity_monotone_in_epsilon(self, couple):
        points = epsilon_sweep(*couple, epsilons=[0, 1, 2, 4, 8])
        similarities = [point.similarity_percent for point in points]
        assert similarities == sorted(similarities)

    def test_saturates_at_full_similarity(self, couple):
        community_b, community_a = couple
        huge = int(
            max(community_b.vectors.max(), community_a.vectors.max())
        )
        points = epsilon_sweep(community_b, community_a, epsilons=[huge])
        assert points[0].similarity_percent == pytest.approx(100.0)

    def test_point_fields(self, couple):
        (point,) = epsilon_sweep(*couple, epsilons=[1])
        assert point.parameter == 1.0
        assert point.n_matched >= 0
        assert point.elapsed_seconds >= 0.0

    def test_requires_ascending_epsilons(self, couple):
        with pytest.raises(ConfigurationError, match="ascending"):
            epsilon_sweep(*couple, epsilons=[2, 1])

    def test_requires_nonempty(self, couple):
        with pytest.raises(ConfigurationError):
            epsilon_sweep(*couple, epsilons=[])


class TestScaleSweep:
    def test_sizes_and_times_grow(self):
        points = scale_sweep(
            PAPER_COUPLES[0],
            VKGenerator(seed=7),
            scales=[1 / 1024, 1 / 256],
            epsilon=1,
        )
        assert points[0].parameter < points[1].parameter
        assert points[0].similarity_percent > 0

    def test_requires_nonempty(self):
        with pytest.raises(ConfigurationError):
            scale_sweep(PAPER_COUPLES[0], VKGenerator(seed=7), scales=[], epsilon=1)


class TestRenderSweep:
    def test_render_contains_bars(self, couple):
        points = epsilon_sweep(*couple, epsilons=[0, 2])
        rendered = render_sweep(points, parameter_name="epsilon")
        assert "epsilon" in rendered
        assert "#" in rendered

    def test_render_empty(self):
        assert "empty" in render_sweep([], parameter_name="x")
